"""Shared benchmark helpers.

Every bench regenerates one of the paper's tables or figures. Benches run
the underlying experiment exactly once (``benchmark.pedantic`` with one
round) because each is a full simulation; the interesting output is the
printed table/series, not the wall-clock time distribution.

Set ``DEBUGLET_FULL=1`` to run the §II experiments at the paper's original
scale (86 400 one-per-second probes — minutes of wall time); the default
is scaled down while preserving the measurement window structure.
"""

import os

import pytest

from repro.perf import benchstore

FULL_SCALE = os.environ.get("DEBUGLET_FULL", "") == "1"


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner


def record_bench(name: str, seconds: float, **extra) -> None:
    """Append a wall-clock measurement to ``BENCH_table1.json``.

    The file maps git SHA -> list of entries, so numbers from successive
    commits accumulate instead of overwriting each other.
    """
    benchstore.append_rows(
        "table1", [{"name": name, "seconds": round(seconds, 4), **extra}]
    )
