"""Shared benchmark helpers.

Every bench regenerates one of the paper's tables or figures. Benches run
the underlying experiment exactly once (``benchmark.pedantic`` with one
round) because each is a full simulation; the interesting output is the
printed table/series, not the wall-clock time distribution.

Set ``DEBUGLET_FULL=1`` to run the §II experiments at the paper's original
scale (86 400 one-per-second probes — minutes of wall time); the default
is scaled down while preserving the measurement window structure.
"""

import json
import os
import subprocess
import time

import pytest

FULL_SCALE = os.environ.get("DEBUGLET_FULL", "") == "1"

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH_FILE = os.path.join(_REPO_ROOT, "BENCH_table1.json")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def record_bench(name: str, seconds: float, **extra) -> None:
    """Append a wall-clock measurement to ``BENCH_table1.json``.

    The file maps git SHA -> list of entries, so numbers from successive
    commits accumulate instead of overwriting each other.
    """
    data: dict = {}
    if os.path.exists(_BENCH_FILE):
        try:
            with open(_BENCH_FILE) as fh:
                data = json.load(fh)
        except (json.JSONDecodeError, OSError):
            data = {}
    entry = {
        "name": name,
        "seconds": round(seconds, 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        **extra,
    }
    data.setdefault(_git_sha(), []).append(entry)
    with open(_BENCH_FILE, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
