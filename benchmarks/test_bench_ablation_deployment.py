"""§VI-B ablation: incremental deployment.

Quantifies the paper's argument that partial deployment already enables
useful localization and that a poorly-performing AS "will be increasingly
exposed over time": expected suspect-set size and exact-isolation rate as
a function of the fraction of transit ASes hosting executors.
"""

from repro.core.deployment import analyze_deployment, sweep_deployment_fraction

N_ASES = 20
FRACTIONS = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]


def _run_sweep():
    return sweep_deployment_fraction(N_ASES, FRACTIONS, trials=60, seed=45)


def test_bench_deployment_ablation(once):
    rows = once(_run_sweep)

    print(f"\n=== §VI-B: localization power vs deployment ({N_ASES}-AS paths) ===")
    print("  deployed fraction   mean suspect set   exactly isolated")
    for row in rows:
        print(
            f"  {row['fraction']:17.0%}   {row['mean_suspect_set']:16.2f}   "
            f"{row['exact_isolation_rate']:15.0%}"
        )

    suspect = [row["mean_suspect_set"] for row in rows]
    exact = [row["exact_isolation_rate"] for row in rows]
    # Monotone improvement with deployment.
    assert all(a >= b for a, b in zip(suspect, suspect[1:]))
    assert all(a <= b for a, b in zip(exact, exact[1:]))
    # Full deployment isolates every fault exactly.
    assert exact[-1] == 1.0
    assert suspect[-1] == 1.0
    # Even 25% deployment cuts the suspect set by more than half.
    assert suspect[2] < suspect[0] / 2

    # A single deploying neighbor already isolates the link beside it —
    # the paper's "prove their innocence" incentive.
    report = analyze_deployment(N_ASES, {1})
    from repro.core.deployment import Element

    assert report.group_sizes[Element("link", 0)] == 1
