"""§VI-E ablation: an ISP that prioritizes executor traffic, and its
detection by cross-validation.

The cheating AS gives packets to/from known executor addresses priority
treatment on its congested link. Debuglet-to-Debuglet measurements then
look healthy while real end-host traffic still suffers — exactly the gap
the cross-validator flags.
"""

import numpy as np

from repro.core.antigaming import CrossValidator, enable_prioritization
from repro.core.executor import executor_data_address
from repro.core.probing import ExecutorFleet, SegmentProber
from repro.netsim import CongestionConfig, CongestionProcess, InterfaceId, Protocol
from repro.netsim.traffic import ProbeTrain
from repro.workloads.scenarios import build_chain


def _scenario(cheating: bool):
    scenario = build_chain(2, seed=46)
    config = CongestionConfig(
        base_utilization=0.85, diurnal_amplitude=0.0, burst_rate=0.0,
        queue_service_time=2e-3, drop_threshold=0.99,
    )
    channels = [
        scenario.topology.channel_between(InterfaceId(1, 2), InterfaceId(2, 1)),
        scenario.topology.channel_between(InterfaceId(2, 1), InterfaceId(1, 2)),
    ]
    for index, channel in enumerate(channels):
        channel.congestion = CongestionProcess(config, seed=50 + index)
    fleet = ExecutorFleet(scenario.network, seed=47)
    fleet.deploy_full()
    if cheating:
        enable_prioritization(
            channels,
            [executor_data_address(1, 2), executor_data_address(2, 1)],
        )
    return scenario, fleet


def _measure(scenario, fleet):
    prober = SegmentProber(fleet, probes=80, interval_us=5000)
    path = scenario.registry.shortest(1, 2)
    d2d = prober.measure_sync((1, 2), (2, 1), path)
    client = scenario.network.make_host(1, "user")
    server = scenario.network.make_host(2, "site", echo_protocols=(Protocol.UDP,))
    train = ProbeTrain(client, server.address, Protocol.UDP,
                       count=80, interval=0.01, src_port=3999)
    scenario.simulator.run_until_idle()
    endhost = train.finalize()
    return d2d, endhost


def _validate(d2d, endhost):
    validator = CrossValidator(rtt_tolerance_ms=5.0)
    return validator.compare(
        executor_rtts_ms=np.array(sorted(d2d.echo.rtts_us.values())) / 1e3,
        executor_loss=d2d.loss_rate(),
        endhost_rtts_ms=endhost.rtts_ms(),
        endhost_loss=endhost.loss_rate(),
    )


def _run_study():
    results = {}
    for label, cheating in (("honest", False), ("cheating", True)):
        scenario, fleet = _scenario(cheating)
        d2d, endhost = _measure(scenario, fleet)
        results[label] = _validate(d2d, endhost)
    return results


def test_bench_fault_hiding(once):
    results = once(_run_study)

    print("\n=== §VI-E: executor-traffic prioritization and its detection ===")
    for label, report in results.items():
        print(
            f"  {label:<9} D2D={report.executor_mean_rtt_ms:7.2f} ms  "
            f"end-host={report.endhost_mean_rtt_ms:7.2f} ms  "
            f"gap={report.rtt_gap_ms:+6.2f} ms  "
            f"suspected={report.gaming_suspected}"
        )

    assert not results["honest"].gaming_suspected
    assert results["cheating"].gaming_suspected
    # The cheater's hidden congestion is substantial.
    assert results["cheating"].rtt_gap_ms > 5.0
