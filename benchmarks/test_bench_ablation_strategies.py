"""§VI-D ablation: measurement-selection strategies.

The paper's example: a path over 10 consecutive ASes with the fault on
the *last* inter-domain link — the worst case for a linear scan and the
motivating case for binary search. The bench compares measurements used,
time-to-locate, and (slot-price) cost across the three strategies.
"""

from repro.core.localization import FaultLocalizer
from repro.core.probing import ExecutorFleet, SegmentProber
from repro.netsim import FaultInjector, InterfaceId
from repro.workloads.scenarios import build_chain

N_ASES = 10
SLOT_PRICE_SUI = 0.05  # per executor per measurement


def _run_strategies():
    results = {}
    for strategy in ("binary", "linear", "exhaustive", "guided"):
        scenario = build_chain(N_ASES, seed=43)
        fleet = ExecutorFleet(scenario.network, seed=44)
        fleet.deploy_full()
        injector = FaultInjector(scenario.topology)
        fault = injector.link_delay(
            InterfaceId(N_ASES - 1, 2), InterfaceId(N_ASES, 1),
            extra_delay=20e-3, start=0.0, end=1e12,
        )
        prober = SegmentProber(fleet, probes=15, interval_us=5000)
        localizer = FaultLocalizer(prober)
        # The guided strategy gets a historical hint (e.g. from the §VI-F
        # archive): this link has failed before.
        hint = fault.location if strategy == "guided" else None
        report = localizer.localize(
            scenario.registry.shortest(1, N_ASES), strategy=strategy, hint=hint
        )
        results[strategy] = (fault, report)
    return results


def test_bench_strategy_ablation(once):
    results = once(_run_strategies)

    print(f"\n=== §VI-D: localization strategies, {N_ASES}-AS path, "
          "fault on the last link ===")
    print("  strategy    measurements  time-to-locate  est. cost (SUI)  found")
    for strategy, (fault, report) in results.items():
        cost = report.measurements_used * 2 * SLOT_PRICE_SUI
        print(
            f"  {strategy:<10}  {report.measurements_used:12d}  "
            f"{report.time_to_locate:13.2f}s  {cost:14.2f}  "
            f"{report.found(fault.location)}"
        )

    for strategy, (fault, report) in results.items():
        assert report.found(fault.location), strategy

    binary = results["binary"][1]
    linear = results["linear"][1]
    exhaustive = results["exhaustive"][1]
    guided = results["guided"][1]
    # Binary search beats both on measurement count for a single deep
    # fault (the §VI-D argument).
    assert binary.measurements_used < linear.measurements_used
    assert binary.measurements_used < exhaustive.measurements_used
    # Exhaustive measures every link (n-1) plus every interior triple.
    assert exhaustive.measurements_used == (N_ASES - 1) + (N_ASES - 2)
    # A good historical hint collapses the search to one measurement.
    assert guided.measurements_used == 1
