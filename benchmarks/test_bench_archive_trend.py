"""§VI-F: age of information — archived history pinpoints fault onset.

Periodic Debuglet measurements of one segment are retained off-chain with
on-chain hash anchors. A delay fault is injected midway through the
observation period; the trend analysis over the (verified) archive finds
the onset time.
"""

from repro.core.archive import (
    ArchiveContract,
    ArchivedMeasurement,
    ResultArchive,
    degradation_onset,
)
from repro.core.probing import ExecutorFleet, SegmentProber
from repro.chain import KeyPair, Ledger, Wallet, sui_to_mist
from repro.netsim import FaultInjector, InterfaceId
from repro.workloads.scenarios import build_chain

ROUNDS = 10
PERIOD = 30.0  # one archived measurement every 30 s
FAULT_ROUND = 6


def _run_trend_study():
    scenario = build_chain(3, seed=101)
    fleet = ExecutorFleet(scenario.network, seed=102)
    fleet.deploy_full()
    prober = SegmentProber(fleet, probes=10, interval_us=5000)
    path = scenario.registry.shortest(1, 3)

    ledger = Ledger(clock=lambda: scenario.simulator.now)
    contract = ledger.register_contract(ArchiveContract())
    keypair = KeyPair.deterministic("archivist")
    ledger.create_account(keypair, balance=sui_to_mist(100))
    archive = ResultArchive(ledger, contract, Wallet(ledger, keypair))

    injector = FaultInjector(scenario.topology)
    fault_time = FAULT_ROUND * PERIOD
    injector.link_delay(
        InterfaceId(2, 2), InterfaceId(3, 1),
        extra_delay=15e-3, start=fault_time, end=1e12,
    )

    segment_key = "1:2|3:1"
    for round_index in range(ROUNDS):
        start = round_index * PERIOD
        measurement = prober.measure_sync(
            (1, 2), (3, 1), path, start_at=max(start, scenario.simulator.now)
        )
        archive.archive(
            ArchivedMeasurement(
                segment_key=segment_key,
                measured_at=measurement.started_at,
                mean_rtt_ms=measurement.mean_rtt_ms(),
                loss_rate=measurement.loss_rate(),
                result=measurement.client_record.result,
            )
        )
    history = archive.history(segment_key)  # verified against anchors
    report = degradation_onset(history, rtt_slack_ms=5.0)
    return history, report, fault_time, ledger


def test_bench_archive_trend(once):
    history, report, fault_time, ledger = once(_run_trend_study)

    print("\n=== §VI-F: archived measurement history (one segment) ===")
    for entry in history:
        marker = " <- degraded" if entry.mean_rtt_ms > report.baseline_rtt_ms + 5 else ""
        print(
            f"  t={entry.measured_at:7.1f}s  rtt={entry.mean_rtt_ms:6.2f} ms"
            f"{marker}"
        )
    print(
        f"  fault injected at t={fault_time:.0f}s; onset detected at "
        f"t={report.onset_at:.1f}s (baseline {report.baseline_rtt_ms:.2f} ms)"
    )

    assert len(history) == ROUNDS
    assert report.degradation_detected
    # Onset within one archival period of the true fault time.
    assert abs(report.onset_at - fault_time) <= PERIOD + 1.0
    ledger.verify_chain()
