"""§I/§II ablation: today's tools vs Debuglet on a protocol-selective fault.

A link degrades *only UDP data traffic*. Ping (ICMP) reports a healthy
path; traceroute's hops go partly silent (disabled/rate-limited routers)
and its slow-path RTTs do not reflect data-plane latency; a Debuglet
measurement using UDP data packets over the pinned path sees the
degradation and localizes it to the right link.
"""

from repro.baselines import ping_sync, traceroute_sync
from repro.core.localization import FaultLocalizer
from repro.core.probing import ExecutorFleet, SegmentProber
from repro.netsim import InterfaceId, Protocol
from repro.netsim.conduit import FaultOverlay
from repro.workloads.scenarios import build_chain


def _run_comparison():
    scenario = build_chain(4, seed=48)
    fleet = ExecutorFleet(scenario.network, seed=49)
    fleet.deploy_full()
    # UDP-only degradation on the 2-3 link (e.g. fine-grained balancing
    # onto a broken member link that only UDP traffic is sprayed across).
    overlay = FaultOverlay(
        start=0.0, end=1e12, extra_delay=25e-3,
        protocols=frozenset({Protocol.UDP}),
    )
    a, b = InterfaceId(2, 2), InterfaceId(3, 1)
    scenario.topology.channel_between(a, b).add_overlay(overlay)
    scenario.topology.channel_between(b, a).add_overlay(overlay)
    # One router never answers TTL expiry, as §II describes.
    scenario.topology.autonomous_system(2).router(1).ttl_exceeded_enabled = False

    client = scenario.network.make_host(1, "user")
    server = scenario.network.make_host(
        4, "site", echo_protocols=(Protocol.UDP, Protocol.ICMP),
    )

    ping_trace = ping_sync(client, server.address, count=20, interval=0.05)
    traceroute_result = traceroute_sync(
        client, server.address, max_ttl=8, probe_gap=0.3
    )
    udp_prober = SegmentProber(fleet, probes=20, interval_us=5000)
    localizer = FaultLocalizer(udp_prober, protocol=Protocol.UDP)
    report = localizer.localize(
        scenario.registry.shortest(1, 4), strategy="binary"
    )
    return ping_trace, traceroute_result, report


def test_bench_baseline_comparison(once):
    ping_trace, traceroute_result, report = once(_run_comparison)

    print("\n=== Baselines vs Debuglet on a UDP-only fault ===")
    print(
        f"  ping (ICMP):    mean={ping_trace.mean_rtt_ms():6.2f} ms "
        f"loss={ping_trace.loss_per_mille():.1f} per-mille -> path looks healthy"
    )
    print(
        f"  traceroute:     {traceroute_result.responding_hops} hops answered, "
        f"{traceroute_result.silent_hops} silent"
    )
    print(
        f"  Debuglet (UDP): suspects={[str(s) for s in report.suspects]} "
        f"in {report.measurements_used} measurements"
    )

    # Ping misses the fault entirely: ICMP is not degraded (the clean
    # 4-AS path is ~34 ms; the UDP fault would add 50 ms round trip).
    assert ping_trace.mean_rtt_ms() < 40.0
    assert ping_trace.loss_per_mille() == 0.0
    # Traceroute output has silent hops.
    assert traceroute_result.silent_hops > 0
    # Debuglet localizes the UDP-only fault to the right link.
    assert len(report.suspects) == 1
    suspect = report.suspects[0]
    assert suspect.link is not None
    assert {(i.asn, i.interface) for i in suspect.link} == {(2, 2), (3, 1)}
