"""§V-B: delay-to-measurement.

The paper decomposes delay-to-measurement into (1) blockchain operation
latency (two critical-path transactions, sub-second finality), (2) wait
until the scheduled slot, and (3) sandbox setup (~10 ms), concluding the
stack allows *sub-second* reaction to a fault. The bench measures each
component over the real stack.
"""

from repro.core.application import DebugletApplication
from repro.core.executor import executor_data_address
from repro.netsim.packet import Protocol
from repro.sandbox.programs import echo_client, echo_server
from repro.workloads.scenarios import MarketplaceTestbed

COUNT = 5


def _run_delay_study():
    testbed = MarketplaceTestbed.build(2, seed=41, finality_latency=0.4)
    path = testbed.chain.registry.shortest(1, 2)
    server_app = DebugletApplication.from_stock(
        "srv",
        echo_server(Protocol.UDP, max_echoes=COUNT, idle_timeout_us=2_000_000),
        listen_port=8600, path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "cli",
        echo_client(Protocol.UDP, executor_data_address(2, 1),
                    count=COUNT, interval_us=20_000, dst_port=8600),
        path=path.as_list(),
    )
    request_time = testbed.chain.simulator.now
    session = testbed.initiator.request_measurement(
        client_app, server_app, (1, 2), (2, 1), duration=20.0
    )
    testbed.initiator.run_until_done(session, testbed.chain.simulator)

    client_agent = testbed.agents[(1, 2)]
    record = client_agent.executor.executions[-1]
    return {
        "finality_latency": testbed.ledger.finality_latency,
        "chain_ops": 2 * testbed.ledger.finality_latency,
        "slot_wait": session.window_start - request_time,
        "first_instruction": record.started_at - request_time,
        "setup": record.started_at - session.window_start,
    }


def test_bench_delay_to_measurement(once):
    delays = once(_run_delay_study)

    print("\n=== §V-B: delay-to-measurement breakdown ===")
    print(f"  (1) blockchain ops (2 tx x {delays['finality_latency']:.1f} s finality): "
          f"{delays['chain_ops']:.2f} s")
    print(f"  (2) wait until purchased slot:            {delays['slot_wait']:.2f} s")
    print(f"  (3) sandbox setup:                        {delays['setup'] * 1e3:.1f} ms")
    print(f"  request -> first measurement instruction: "
          f"{delays['first_instruction']:.3f} s")

    # The headline claim: sub-second reaction to an experienced fault.
    assert delays["first_instruction"] < 1.0
    assert 0.005 < delays["setup"] < 0.02
