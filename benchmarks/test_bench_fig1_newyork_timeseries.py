"""Fig 1: New York - London RTT over 4 hours.

The paper's figure shows (a) UDP and TCP consistently *below* ICMP and raw
IP, and (b) sudden ~5 ms steps visible across protocols, attributed to
route changes. The bench regenerates the four series over a 4-hour window
and prints per-protocol summaries plus the detected step instants.
"""

import numpy as np

from benchmarks.conftest import FULL_SCALE
from repro.analysis import step_changes
from repro.netsim.packet import Protocol
from repro.netsim.traffic import MultiProtocolProber
from repro.workloads.wan import WanScenario

WINDOW = 4 * 3600.0
INTERVAL = 1.0 if FULL_SCALE else 4.0


def _run_fig1():
    scenario = WanScenario.build(seed=7, cities=["newyork"])
    prober = MultiProtocolProber(
        scenario.city_hosts["newyork"],
        scenario.london.address,
        count=int(WINDOW / INTERVAL),
        interval=INTERVAL,
    )
    scenario.simulator.run_until_idle()
    return prober.finalize()


def test_bench_fig1(once):
    traces = once(_run_fig1)
    from repro.analysis import maybe_export_timeseries

    maybe_export_timeseries("fig1_newyork", traces)

    print("\n=== Fig 1: New York - London RTT, 4-hour window ===")
    steps_by_protocol = {}
    for protocol, trace in traces.items():
        times, rtts = trace.time_series()
        steps = step_changes(times, rtts, window=60, threshold=2.5)
        steps_by_protocol[protocol] = steps
        print(
            f"  {protocol.name:<7} mean={trace.mean_rtt_ms():7.2f} ms "
            f"p5={trace.percentile_ms(5):7.2f} p95={trace.percentile_ms(95):7.2f} "
            f"steps at {['%.0f s' % s for s in steps]}"
        )

    udp, tcp = traces[Protocol.UDP], traces[Protocol.TCP]
    icmp, raw = traces[Protocol.ICMP], traces[Protocol.RAW_IP]
    # UDP and TCP consistently below ICMP and raw IP.
    assert udp.mean_rtt_ms() < icmp.mean_rtt_ms()
    assert udp.mean_rtt_ms() < raw.mean_rtt_ms()
    assert tcp.mean_rtt_ms() < icmp.mean_rtt_ms()
    assert tcp.mean_rtt_ms() < raw.mean_rtt_ms()
    # Route-change steps appear in the window for at least one protocol
    # (NY's churn process shifts all protocols together, Fig 1's feature).
    assert any(steps for steps in steps_by_protocol.values())
