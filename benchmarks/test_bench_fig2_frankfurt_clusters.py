"""Fig 2: Frankfurt - London RTT over 24 hours.

Two features of the paper's figure are checked: (a) UDP RTTs form four
clearly visible clusters — four parallel routes sprayed per packet — and
(b) for several hours UDP and raw IP show a correlated increase that ICMP
and TCP do not.
"""

import numpy as np

from benchmarks.conftest import FULL_SCALE
from repro.analysis import detect_clusters
from repro.netsim.packet import Protocol
from repro.netsim.traffic import MultiProtocolProber
from repro.workloads.wan import WanScenario

WINDOW = 24 * 3600.0
INTERVAL = 1.0 if FULL_SCALE else 21.6  # 4000 probes spanning the day


def _run_fig2():
    scenario = WanScenario.build(seed=7, cities=["frankfurt"])
    prober = MultiProtocolProber(
        scenario.city_hosts["frankfurt"],
        scenario.london.address,
        count=int(WINDOW / INTERVAL),
        interval=INTERVAL,
    )
    scenario.simulator.run_until_idle()
    return prober.finalize()


def _mean_in(trace, t0, t1):
    times, rtts = trace.time_series()
    mask = (times >= t0) & (times < t1)
    return float(np.mean(rtts[mask]))


def test_bench_fig2(once):
    traces = once(_run_fig2)
    from repro.analysis import maybe_export_timeseries

    maybe_export_timeseries("fig2_frankfurt", traces)

    udp = traces[Protocol.UDP]
    # Cluster on the hours outside the scripted route shift: the four
    # parallel-route modes are the persistent structure (the shift slides
    # them up for a few hours, which would register as extra modes).
    times, rtts = udp.time_series()
    quiet = rtts[(times < 8 * 3600.0) | (times >= 14 * 3600.0)]
    clusters = detect_clusters(quiet, bandwidth_ms=0.3, min_weight=0.05)

    print("\n=== Fig 2: Frankfurt - London RTT, 24 hours ===")
    for protocol, trace in traces.items():
        print(
            f"  {protocol.name:<7} mean={trace.mean_rtt_ms():6.2f} ms "
            f"std={trace.std_rtt_ms():5.2f}"
        )
    print(
        "  UDP clusters:",
        [f"{c.center_ms:.2f} ms ({c.weight:.0%})" for c in clusters],
    )

    # (a) Four clearly visible UDP clusters.
    assert len(clusters) == 4, [c.center_ms for c in clusters]

    # (b) The scripted 8h-14h shift hits UDP and raw IP, not ICMP/TCP.
    shift_window = (9 * 3600.0, 13 * 3600.0)
    quiet_window = (1 * 3600.0, 7 * 3600.0)
    for protocol, expected_shift in (
        (Protocol.UDP, True),
        (Protocol.RAW_IP, True),
        (Protocol.ICMP, False),
        (Protocol.TCP, False),
    ):
        delta = _mean_in(traces[protocol], *shift_window) - _mean_in(
            traces[protocol], *quiet_window
        )
        print(f"  {protocol.name:<7} shift-window delta: {delta:+.2f} ms")
        if expected_shift:
            assert delta > 1.0, protocol
        else:
            assert abs(delta) < 1.0, protocol
