"""Fig 3: Bangalore - London RTT over 24 hours.

The paper: "UDP's RTT between Bangalore and London is distributed over a
30 ms range, almost randomly", while the other protocols are consistent
for stretches but shift several times a day.
"""

from benchmarks.conftest import FULL_SCALE
from repro.analysis import detect_clusters, spread_ms
from repro.netsim.packet import Protocol
from repro.netsim.traffic import MultiProtocolProber
from repro.workloads.wan import WanScenario

WINDOW = 24 * 3600.0
INTERVAL = 1.0 if FULL_SCALE else 21.6


def _run_fig3():
    scenario = WanScenario.build(seed=7, cities=["bangalore"])
    prober = MultiProtocolProber(
        scenario.city_hosts["bangalore"],
        scenario.london.address,
        count=int(WINDOW / INTERVAL),
        interval=INTERVAL,
    )
    scenario.simulator.run_until_idle()
    return prober.finalize()


def test_bench_fig3(once):
    traces = once(_run_fig3)
    from repro.analysis import maybe_export_timeseries

    maybe_export_timeseries("fig3_bangalore", traces)

    print("\n=== Fig 3: Bangalore - London RTT, 24 hours ===")
    for protocol, trace in traces.items():
        print(
            f"  {protocol.name:<7} mean={trace.mean_rtt_ms():7.2f} ms "
            f"std={trace.std_rtt_ms():5.2f} "
            f"spread(p1-p99)={spread_ms(trace.rtts_ms()):5.1f} ms"
        )

    udp_spread = spread_ms(traces[Protocol.UDP].rtts_ms())
    # UDP spread over roughly a 30 ms range...
    assert 20.0 < udp_spread < 40.0, udp_spread
    # ... wider than every other protocol's, and far wider than the
    # priority-queued ICMP / raw IP series.
    assert udp_spread > spread_ms(traces[Protocol.TCP].rtts_ms())
    for protocol in (Protocol.ICMP, Protocol.RAW_IP):
        assert udp_spread > 1.4 * spread_ms(traces[protocol].rtts_ms()), protocol
    # "Almost randomly": many routes, so no small set of crisp modes.
    clusters = detect_clusters(
        traces[Protocol.UDP].rtts_ms(), bandwidth_ms=0.3, min_weight=0.04
    )
    assert len(clusters) >= 5
