"""Fig 6: inter-domain-link-granularity fault localization.

Regenerates the paper's worked example: executors A-D around AS #2
validate the three hypotheses (link 1-2 faulty / AS 2 interior faulty /
link 2-3 faulty) with three D2D measurements plus a decomposition. The
bench runs all three ground-truth cases and prints the verdicts.
"""

from repro.core.localization import FaultLocalizer
from repro.core.probing import SegmentProber
from repro.netsim import FaultInjector, InterfaceId
from repro.workloads.scenarios import Fig6Scenario


def _localize_case(case: str):
    scenario = Fig6Scenario.build(seed=21)
    injector = FaultInjector(scenario.chain.topology)
    if case == "link12":
        fault = injector.link_delay(
            InterfaceId(1, 2), InterfaceId(2, 1),
            extra_delay=20e-3, start=0.0, end=1e12,
        )
    elif case == "interior2":
        fault = injector.as_internal_delay(
            2, extra_delay=20e-3, start=0.0, end=1e12
        )
    else:
        fault = injector.link_delay(
            InterfaceId(2, 2), InterfaceId(3, 1),
            extra_delay=20e-3, start=0.0, end=1e12,
        )
    prober = SegmentProber(scenario.fleet, probes=20, interval_us=5000)
    localizer = FaultLocalizer(prober)
    report = localizer.localize(
        scenario.chain.registry.shortest(1, 3), strategy="exhaustive"
    )
    return fault, report


def test_bench_fig6(once):
    def run_all():
        return {case: _localize_case(case) for case in ("link12", "interior2", "link23")}

    results = once(run_all)

    print("\n=== Fig 6: fault localization around AS #2 (executors A-D) ===")
    for case, (fault, report) in results.items():
        print(
            f"  truth={str(fault.location):<22} verdict="
            f"{[str(s) for s in report.suspects]}  "
            f"measurements={report.measurements_used} "
            f"time={report.time_to_locate:.2f}s"
        )

    for case, (fault, report) in results.items():
        assert report.found(fault.location), case
        assert len(report.suspects) == 1, case
