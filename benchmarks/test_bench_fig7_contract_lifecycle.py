"""Fig 7: the smart-contract execution model, end to end.

Walks the three panels of the paper's figure — (a) executors register and
offer slots, (b) the initiator looks up and purchases with embedded
tokens, (c) executors run and report, collecting payment — over the real
ledger, and prints the gas spent and token movement at each step.
"""

from repro.chain.gas import mist_to_sui
from repro.core.application import DebugletApplication
from repro.core.executor import executor_data_address
from repro.core.results import EchoMeasurement
from repro.core.verification import ChainVerifier
from repro.netsim.packet import Protocol
from repro.sandbox.programs import echo_client, echo_server
from repro.workloads.scenarios import MarketplaceTestbed

COUNT = 15


def _run_lifecycle():
    testbed = MarketplaceTestbed.build(3, seed=23)
    path = testbed.chain.registry.shortest(1, 3)
    server_app = DebugletApplication.from_stock(
        "srv",
        echo_server(Protocol.UDP, max_echoes=COUNT, idle_timeout_us=3_000_000),
        listen_port=8650, path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "cli",
        echo_client(Protocol.UDP, executor_data_address(3, 1),
                    count=COUNT, interval_us=50_000, dst_port=8650),
        path=path.as_list(),
    )
    exec_balance_before = testbed.ledger.balance_of(
        testbed.agents[(1, 2)].wallet.address
    )
    session = testbed.initiator.request_measurement(
        client_app, server_app, (1, 2), (3, 1), duration=30.0
    )
    testbed.initiator.run_until_done(session, testbed.chain.simulator)
    return testbed, session, exec_balance_before


def test_bench_fig7(once):
    testbed, session, exec_before = once(_run_lifecycle)

    ledger = testbed.ledger
    receipts = ledger.receipts
    print("\n=== Fig 7: marketplace lifecycle on the ledger ===")
    step_names = {
        "register_executor": "(a) RegisterExecutor",
        "register_time_slot": "(a) RegisterTimeSlot",
        "lookup_slot": "(b) LookupSlot",
        "purchase_slot": "(b) PurchaseSlot",
        "result_ready": "(c) ResultReady",
        "lookup_result": "(c) LookupResult",
    }
    by_function: dict[str, list] = {}
    for tx, receipt in zip(ledger.transactions, receipts):
        by_function.setdefault(tx.function, []).append(receipt)
    for function, label in step_names.items():
        rs = by_function.get(function, [])
        if not rs:
            continue
        gas = sum(r.gas.total for r in rs) / len(rs)
        print(f"  {label:<24} calls={len(rs):2d} avg gas={mist_to_sui(gas):.5f} SUI")

    print(f"  escrowed & paid out: {mist_to_sui(session.total_price):.3f} SUI")
    print(f"  events: {[e.name for e in ledger.events.history]}")

    # Both sides completed and the payment moved through escrow.
    assert session.done
    assert ledger.contract_balances["debuglet_market"] == 0
    echo = EchoMeasurement.from_result(session.client_outcome.result, probes_sent=COUNT)
    assert echo.received == COUNT
    # Any third party can verify the published results and the chain.
    verifier = ChainVerifier(ledger, testbed.market)
    verifier.verify_result(session.client_application)
    verifier.verify_result(session.server_application)
    ledger.verify_chain()
