"""Fig 8: the impact of running WA (the sandbox) on measurement accuracy.

Paper setup: four simultaneous one-day experiments London<->New York, one
packet per second — D2D, A2D, D2A, A2A — showing D2D ~300 us above A2A
with D2A and A2D in between, and near-identical loss. Here the four
combinations run over the same simulated link (scaled probe count) and
the bench prints the same four means/losses.
"""

from benchmarks.conftest import FULL_SCALE
from repro.core.application import DebugletApplication
from repro.core.executor import Executor
from repro.core.results import EchoMeasurement
from repro.netsim import Link, Network, Protocol, Simulator, Topology
from repro.sandbox.programs import echo_client, echo_server
from repro.sandbox.programs_native import native_echo_client, native_echo_server

COUNT = 86_400 if FULL_SCALE else 500
INTERVAL_US = 1_000_000 if FULL_SCALE else 200_000
#: One-way London-NY propagation so that A2A lands near the paper's 74.81 ms.
ONE_WAY = 36.4e-3


def _build():
    sim = Simulator()
    topo = Topology()
    topo.make_as(1, seed=1, internal_delay=0.2e-3, internal_jitter=0.05e-3)
    topo.make_as(2, seed=2, internal_delay=0.2e-3, internal_jitter=0.05e-3)
    # ~1.5 % round-trip loss, matching the paper's 1.38-1.71 %.
    from repro.netsim import ProtocolTreatment, TreatmentProfile

    treatment = TreatmentProfile.uniform(ProtocolTreatment(base_drop=0.008))
    link = Link.symmetric(
        "lon-ny", base_delay=ONE_WAY, seed=31, jitter_std=0.4e-3,
        treatment=treatment,
    )
    topo.connect(1, 1, 2, 1, link)
    net = Network(topo, sim, seed=32)
    return sim, net


def _apps(sandboxed_client: bool, sandboxed_server: bool, port: int, server_addr):
    client_stock = echo_client(
        Protocol.UDP, server_addr, count=COUNT, interval_us=INTERVAL_US,
        dst_port=port,
    )
    server_stock = echo_server(
        Protocol.UDP, max_echoes=COUNT, idle_timeout_us=4_000_000
    )
    if sandboxed_client:
        client = DebugletApplication.from_stock("cli", client_stock)
    else:
        client = DebugletApplication(
            "cli-native", client_stock.manifest,
            native_factory=lambda: native_echo_client(
                Protocol.UDP, count=COUNT, interval_us=INTERVAL_US, dst_port=port
            ),
        )
    if sandboxed_server:
        server = DebugletApplication.from_stock(
            "srv", server_stock, listen_port=port
        )
    else:
        server = DebugletApplication(
            "srv-native", server_stock.manifest,
            native_factory=lambda: native_echo_server(
                Protocol.UDP, max_echoes=COUNT, idle_timeout_us=4_000_000
            ),
            listen_port=port,
        )
    return client, server


def _run_fig8():
    sim, net = _build()
    ex_london = Executor(net, 1, 1, seed=33)
    ex_newyork = Executor(net, 2, 1, seed=34)
    combos = {
        "D2D": (True, True),
        "A2D": (False, True),
        "D2A": (True, False),
        "A2A": (False, False),
    }
    records = {}
    # All four experiments run simultaneously, like the paper's.
    for index, (name, (sc, ss)) in enumerate(combos.items()):
        port = 8500 + index
        client_app, server_app = _apps(sc, ss, port, ex_newyork.data_address)
        ex_newyork.submit(
            server_app, start_at=0.5,
            on_complete=lambda r, name=name: records.__setitem__((name, "s"), r),
        )
        ex_london.submit(
            client_app, start_at=0.6,
            on_complete=lambda r, name=name: records.__setitem__((name, "c"), r),
        )
    sim.run_until_idle()
    return {
        name: EchoMeasurement.from_result(records[(name, "c")].result, probes_sent=COUNT)
        for name in combos
    }


def test_bench_fig8(once):
    measurements = once(_run_fig8)

    print("\n=== Fig 8: sandbox impact on measurement accuracy ===")
    print(f"    probes per combination: {COUNT} (paper: 86400)")
    for name, echo in measurements.items():
        print(
            f"  {name}: mean={echo.mean_rtt_ms():8.3f} ms "
            f"std={echo.std_rtt_ms():6.3f} loss={echo.loss_rate():.2%}"
        )
    overhead_us = (
        measurements["D2D"].mean_rtt_ms() - measurements["A2A"].mean_rtt_ms()
    ) * 1e3
    print(f"  D2D - A2A: {overhead_us:.0f} us (paper: ~310 us)")

    # The paper's ordering: A2A < A2D < D2A < D2D.
    means = {name: m.mean_rtt_ms() for name, m in measurements.items()}
    assert means["A2A"] < means["A2D"] < means["D2A"] < means["D2D"]
    # ... with a ~300 us D2D overhead, constant enough to offset.
    assert 200 < overhead_us < 400
    # Loss is small and indistinguishable across combinations
    # (paper: 1.38-1.71 %).
    losses = [m.loss_rate() for m in measurements.values()]
    assert all(loss < 0.05 for loss in losses)
    assert max(losses) - min(losses) < 0.02
