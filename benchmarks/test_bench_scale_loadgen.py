"""Fleet-scale control-plane bench: batched+sharded ledger vs serial.

Runs the ``repro loadgen`` fleet (DESIGN.md §11) in both ledger modes and
records sessions/sec into ``BENCH_scale.json``. The default scale keeps CI
fast; ``DEBUGLET_FULL=1`` runs the paper-scale 12 000-session fleet, where
per-transaction signature checks and per-transaction shard-root folds
dominate the serial baseline and the batched ledger must clear >=5x
sessions/sec.

The two modes must agree on every deterministic observable (state digest,
session outcomes, latencies) — only wall-clock and checkpoint grouping may
differ. Runs are strictly sequential: concurrent fleets would contend for
CPU and corrupt both wall-clock numbers.
"""

from benchmarks.conftest import FULL_SCALE, run_once

from repro.perf import benchstore
from repro.workloads import LoadgenConfig, build_loadgen, run_loadgen

SESSIONS = 12_000 if FULL_SCALE else 1_200
EXECUTORS = 64 if FULL_SCALE else 32
INITIATORS = 64 if FULL_SCALE else 32
RAMP = 30.0 if FULL_SCALE else 8.0
MIN_SPEEDUP = 5.0 if FULL_SCALE else 1.5


def _run(mode: str) -> dict:
    config = LoadgenConfig(
        sessions=SESSIONS,
        executors=EXECUTORS,
        initiators=INITIATORS,
        ledger_mode=mode,
        ramp=RAMP,
        seed=0,
    )
    return run_loadgen(build_loadgen(config))


def test_bench_scale_loadgen(benchmark):
    def runner():
        serial = _run("serial")
        batched = _run("batched")
        return serial, batched

    serial, batched = run_once(benchmark, runner)

    det_b, det_s = batched["deterministic"], serial["deterministic"]
    assert det_b["state_digest"] == det_s["state_digest"]
    assert det_b["certified"] == det_s["certified"] == SESSIONS
    assert det_b["peak_active_sessions"] == SESSIONS

    speedup = batched["sessions_per_sec"] / serial["sessions_per_sec"]
    tier = "full" if FULL_SCALE else "reduced"
    benchstore.append_rows("scale", [
        {
            "mode": row["mode"],
            "wall_seconds": round(row["wall_seconds"], 2),
            "sessions_per_sec": round(row["sessions_per_sec"], 2),
            "ledger_txs_per_sec": round(row["ledger_txs_per_sec"], 2),
            "sessions": SESSIONS,
            "tier": tier,
        }
        for row in (serial, batched)
    ])

    print(
        f"\nscale bench ({tier}, {SESSIONS} sessions): "
        f"serial {serial['wall_seconds']:.1f}s "
        f"({serial['sessions_per_sec']:.1f}/s), "
        f"batched {batched['wall_seconds']:.1f}s "
        f"({batched['sessions_per_sec']:.1f}/s) — x{speedup:.2f}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched ledger only x{speedup:.2f} over serial at "
        f"{SESSIONS} sessions (floor x{MIN_SPEEDUP})"
    )
