"""§V-B: WA execution-environment setup time.

The paper observes "an almost constant setup time of around 10 ms across
all executions". The bench instantiates Debuglet bytecodes of very
different sizes and measures submission-to-first-instruction latency.
"""

import numpy as np

from repro.core.application import DebugletApplication
from repro.core.executor import Executor, executor_data_address
from repro.netsim import Link, Network, Protocol, Simulator, Topology
from repro.sandbox.programs import echo_client, echo_server, oneway_receiver


def _run_setup_study():
    sim = Simulator()
    topo = Topology()
    topo.make_as(1, seed=1)
    topo.make_as(2, seed=2)
    topo.connect(1, 1, 2, 1, Link.symmetric("x", base_delay=1e-3, seed=3))
    net = Network(topo, sim, seed=4)
    executor = Executor(net, 1, 1, seed=5)

    applications = [
        DebugletApplication.from_stock(
            "tiny", echo_server(Protocol.UDP, max_echoes=1, idle_timeout_us=1000),
            listen_port=9001,
        ),
        DebugletApplication.from_stock(
            "small",
            echo_client(
                Protocol.UDP, executor_data_address(2, 1), count=5,
                interval_us=1000, timeout_us=100, drain_us=100,
            ),
        ),
        DebugletApplication.from_stock(
            "large",
            echo_client(
                Protocol.UDP, executor_data_address(2, 1), count=4000,
                interval_us=100, timeout_us=100, drain_us=100,
            ),
        ),
        DebugletApplication.from_stock(
            "receiver",
            oneway_receiver(Protocol.UDP, max_probes=1, idle_timeout_us=1000),
            listen_port=9002,
        ),
    ]
    setups = {}
    t = 1.0
    for app in applications:
        record = executor.submit(app, start_at=t)
        setups[app.name] = (app.size_bytes, record, t)
        t += 20.0
    sim.run_until_idle()
    return {
        name: (size, record.started_at - submitted)
        for name, (size, record, submitted) in setups.items()
    }


def test_bench_setup_time(once):
    setups = once(_run_setup_study)

    print("\n=== §V-B: sandbox setup time vs bytecode size ===")
    for name, (size, setup) in setups.items():
        print(f"  {name:<9} {size:6d} B  setup = {setup * 1e3:6.2f} ms")

    values = [setup for _, setup in setups.values()]
    # ~10 ms, nearly constant across bytecode sizes.
    assert all(8e-3 < v < 13e-3 for v in values), values
    assert max(values) - min(values) < 2e-3
