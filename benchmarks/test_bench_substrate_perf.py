"""Substrate micro-benchmarks: how fast the building blocks run.

Not a paper figure — these measure the reproduction's own machinery
(pytest-benchmark's bread and butter): VM instruction throughput,
signature operations, simulator event throughput, and channel transit
rate. Useful for spotting performance regressions when extending the
library.
"""

from repro.chain.crypto import KeyPair, verify_signature
from repro.netsim.conduit import DirectedChannel
from repro.netsim.congestion import calm_congestion
from repro.netsim.engine import Simulator
from repro.netsim.packet import Address, Packet, Protocol
from repro.sandbox.assembler import assemble
from repro.sandbox.vm import VM

_LOOP_SOURCE = """
.memory 4096
.func run_debuglet 1 1
loop:
    local_get 0
    eqz
    jnz done
    local_get 0
    push 1
    sub
    local_set 0
    local_get 1
    push 3
    add
    local_set 1
    jmp loop
done:
    local_get 1
    ret
.end
"""

_ITERATIONS = 2_000


def test_bench_vm_throughput(benchmark):
    """~11 instructions per loop iteration; reports loop time."""
    module = assemble(_LOOP_SOURCE)

    def run():
        vm = VM(module, fuel_limit=10**9)
        return vm.start([_ITERATIONS])

    result = benchmark(run)
    assert result.value == 3 * _ITERATIONS


def test_bench_ed25519_sign(benchmark):
    keypair = KeyPair.deterministic("bench")
    signature = benchmark(lambda: keypair.sign(b"benchmark message"))
    assert verify_signature(keypair.public, b"benchmark message", signature)


def test_bench_ed25519_verify(benchmark):
    keypair = KeyPair.deterministic("bench")
    signature = keypair.sign(b"benchmark message")
    ok = benchmark(
        lambda: verify_signature(keypair.public, b"benchmark message", signature)
    )
    assert ok


def test_bench_simulator_events(benchmark):
    def run():
        sim = Simulator()
        for i in range(5_000):
            sim.schedule_at(float(i % 97), lambda: None)
        sim.run_until_idle()
        return sim.events_processed

    assert benchmark(run) == 5_000


def test_bench_channel_transit(benchmark):
    channel = DirectedChannel(
        "bench", base_delay=1e-3, jitter_std=0.1e-3,
        congestion=calm_congestion(1, "bench"), seed=2,
    )
    packet = Packet(
        src=Address(1, "a"), dst=Address(2, "b"), protocol=Protocol.UDP,
        src_port=1, dst_port=2,
    )

    def run():
        outcome = None
        for i in range(1_000):
            outcome = channel.transit(packet, float(i))
        return outcome

    assert benchmark(run).delivered
