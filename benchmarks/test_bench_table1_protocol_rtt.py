"""Table I: RTT and drop rate per protocol, London <-> six cities.

Paper setup: 86 400 probes per (city, protocol), one per second for a day,
identical layer-3 lengths. Here: scaled probe counts by default
(``DEBUGLET_FULL=1`` for the original scale). The harness prints the same
rows the paper tabulates — mean/std RTT in ms per protocol, loss in ‰ —
and asserts the qualitative structure the paper reports.
"""

from benchmarks.conftest import FULL_SCALE
from repro.analysis import format_table1_row, table_row
from repro.netsim.packet import Protocol
from repro.workloads.wan import CITY_SPECS, WanScenario

PROBES = 86_400 if FULL_SCALE else 3_000
INTERVAL = 1.0 if FULL_SCALE else 1.0


def _run_table1():
    scenario = WanScenario.build(seed=7)
    traces = scenario.run_protocol_study(
        probes_per_protocol=PROBES, interval=INTERVAL
    )
    return {
        city: {proto: trace for proto, trace in by_proto.items()}
        for city, by_proto in traces.items()
    }


def test_bench_table1(once):
    traces = once(_run_table1)
    from repro.analysis import maybe_export_summary

    maybe_export_summary("table1", traces)

    print("\n=== Table I: RTT (ms) and loss (per-mille), vs London ===")
    print(f"    probes per cell: {PROBES} (paper: 86400)")
    for city, by_proto in traces.items():
        print(format_table1_row(city, table_row(by_proto)))

    for city, by_proto in traces.items():
        spec = CITY_SPECS[city]
        for protocol, trace in by_proto.items():
            target = spec.protocols[protocol].mean_ms
            measured = trace.mean_rtt_ms()
            # Means should land near the paper's numbers (the simulator is
            # calibrated; 5% covers churn-episode luck).
            assert abs(measured - target) / target < 0.05, (
                city, protocol.name, measured, target,
            )

    # Paper's qualitative claims:
    # 1. TCP experiences the highest loss at (almost) every location.
    tcp_wins = sum(
        1
        for by_proto in traces.values()
        if by_proto[Protocol.TCP].loss_per_mille()
        >= max(
            by_proto[p].loss_per_mille()
            for p in (Protocol.UDP, Protocol.ICMP)
        )
    )
    assert tcp_wins >= 4, "TCP should be the lossiest protocol at most sites"

    # 2. UDP shows the highest RTT variation (route spraying).
    udp_most_variable = sum(
        1
        for by_proto in traces.values()
        if by_proto[Protocol.UDP].std_rtt_ms()
        >= max(
            by_proto[p].std_rtt_ms()
            for p in (Protocol.ICMP, Protocol.RAW_IP)
        )
    )
    assert udp_most_variable >= 4

    # 3. New York: UDP/TCP ride faster routes than ICMP/raw.
    newyork = traces["newyork"]
    assert newyork[Protocol.UDP].mean_rtt_ms() < newyork[Protocol.ICMP].mean_rtt_ms()
    assert newyork[Protocol.TCP].mean_rtt_ms() < newyork[Protocol.RAW_IP].mean_rtt_ms()
    # ... and suffers by far the worst TCP loss in the table.
    assert newyork[Protocol.TCP].loss_per_mille() == max(
        by_proto[Protocol.TCP].loss_per_mille() for by_proto in traces.values()
    )
