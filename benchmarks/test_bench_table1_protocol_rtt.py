"""Table I: RTT and drop rate per protocol, London <-> six cities.

Paper setup: 86 400 probes per (city, protocol), one per second for a day,
identical layer-3 lengths. Here: scaled probe counts by default
(``DEBUGLET_FULL=1`` for the original scale). The harness prints the same
rows the paper tabulates — mean/std RTT in ms per protocol, loss in ‰ —
and asserts the qualitative structure the paper reports.

Both simulation paths run: the event-driven reference and the vectorized
fast path (``fast=True``), which must reproduce the same qualitative
structure at least 5x faster. Wall-clock numbers for each are appended to
``BENCH_table1.json`` keyed by git SHA.
"""

import time

import pytest

from benchmarks.conftest import FULL_SCALE, record_bench
from repro.analysis import format_table1_row, table_row
from repro.netsim.packet import Protocol
from repro.workloads.wan import CITY_SPECS, WanScenario

PROBES = 86_400 if FULL_SCALE else 3_000
INTERVAL = 1.0 if FULL_SCALE else 1.0

# The event-driven run's wall-clock, shared with the fast-path test below
# so the study is simulated (expensively) only once per session.
_TIMINGS: dict[str, float] = {}


def _run_table1(*, fast: bool = False):
    scenario = WanScenario.build(seed=7)
    started = time.perf_counter()
    traces = scenario.run_protocol_study(
        probes_per_protocol=PROBES, interval=INTERVAL, fast=fast
    )
    elapsed = time.perf_counter() - started
    key = "fast" if fast else "event"
    _TIMINGS[key] = elapsed
    record_bench(
        f"table1-{key}", elapsed, probes_per_cell=PROBES, cells=len(traces) * 4
    )
    return traces


def _print_table(traces, *, path: str) -> None:
    print(f"\n=== Table I: RTT (ms) and loss (per-mille), vs London [{path}] ===")
    print(f"    probes per cell: {PROBES} (paper: 86400)")
    for city, by_proto in traces.items():
        print(format_table1_row(city, table_row(by_proto)))


def _assert_table1_shape(traces) -> None:
    """The paper's quantitative calibration and qualitative claims."""
    for city, by_proto in traces.items():
        spec = CITY_SPECS[city]
        for protocol, trace in by_proto.items():
            target = spec.protocols[protocol].mean_ms
            measured = trace.mean_rtt_ms()
            # Means should land near the paper's numbers (the simulator is
            # calibrated; 5% covers churn-episode luck).
            assert abs(measured - target) / target < 0.05, (
                city, protocol.name, measured, target,
            )

    # Paper's qualitative claims:
    # 1. TCP experiences the highest loss at (almost) every location.
    tcp_wins = sum(
        1
        for by_proto in traces.values()
        if by_proto[Protocol.TCP].loss_per_mille()
        >= max(
            by_proto[p].loss_per_mille()
            for p in (Protocol.UDP, Protocol.ICMP)
        )
    )
    assert tcp_wins >= 4, "TCP should be the lossiest protocol at most sites"

    # 2. UDP shows the highest RTT variation (route spraying).
    udp_most_variable = sum(
        1
        for by_proto in traces.values()
        if by_proto[Protocol.UDP].std_rtt_ms()
        >= max(
            by_proto[p].std_rtt_ms()
            for p in (Protocol.ICMP, Protocol.RAW_IP)
        )
    )
    assert udp_most_variable >= 4

    # 3. New York: UDP/TCP ride faster routes than ICMP/raw.
    newyork = traces["newyork"]
    assert newyork[Protocol.UDP].mean_rtt_ms() < newyork[Protocol.ICMP].mean_rtt_ms()
    assert newyork[Protocol.TCP].mean_rtt_ms() < newyork[Protocol.RAW_IP].mean_rtt_ms()
    # ... and suffers by far the worst TCP loss in the table.
    assert newyork[Protocol.TCP].loss_per_mille() == max(
        by_proto[Protocol.TCP].loss_per_mille() for by_proto in traces.values()
    )


def test_bench_table1(once):
    traces = once(_run_table1)
    from repro.analysis import maybe_export_summary

    maybe_export_summary("table1", traces)
    _print_table(traces, path="event-driven")
    _assert_table1_shape(traces)


@pytest.mark.perf_smoke
def test_bench_table1_fast(once):
    traces = once(lambda: _run_table1(fast=True))
    _print_table(traces, path="fast")
    # The fast path must satisfy the exact same shape assertions...
    _assert_table1_shape(traces)
    # ...and deliver the speedup that justifies its existence.
    event_seconds = _TIMINGS.get("event")
    if event_seconds is None:  # fast test ran alone: time the reference now
        _run_table1(fast=False)
        event_seconds = _TIMINGS["event"]
    fast_seconds = _TIMINGS["fast"]
    speedup = event_seconds / fast_seconds
    print(
        f"\nevent-driven {event_seconds:.3f}s vs fast {fast_seconds:.3f}s "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"fast path only {speedup:.1f}x faster "
        f"({fast_seconds:.3f}s vs {event_seconds:.3f}s)"
    )
