"""Table II: cost of submitting a Debuglet application to the chain.

The paper prices applications of 0 B to 10 kB on the Sui main net. The
bench stores blobs of the same sizes through the real ledger (a minimal
storage contract, so exactly one object per transaction like the paper's
application object) and prints total cost and storage rebate in SUI.
"""

import pytest

from repro.chain import Contract, ExecutionContext, KeyPair, Ledger, Wallet, entry
from repro.chain.gas import mist_to_sui, sui_to_mist

#: size bytes -> (paper total SUI, paper rebate SUI)
TABLE_II = [
    (0, 0.01369, 0.00430),
    (100, 0.01585, 0.00632),
    (1000, 0.03527, 0.02456),
    (5000, 0.12160, 0.10562),
    (10000, 0.22953, 0.20696),
]


class _Store(Contract):
    """Stores one application blob per call (the paper's object model)."""

    name = "store"

    @entry
    def submit_application(self, ctx: ExecutionContext, blob: bytes) -> str:
        return ctx.create_object("application", {"bytecode": blob}).hex()


def _run_table2():
    ledger = Ledger()
    ledger.register_contract(_Store())
    keypair = KeyPair.deterministic("initiator")
    ledger.create_account(keypair, balance=sui_to_mist(100))
    wallet = Wallet(ledger, keypair)
    rows = []
    for size, paper_total, paper_rebate in TABLE_II:
        receipt = wallet.must_call("store", "submit_application", b"\x00" * size)
        rows.append(
            {
                "size": size,
                "total_sui": receipt.gas.total_sui(),
                "rebate_sui": receipt.gas.rebate_sui(),
                "paper_total": paper_total,
                "paper_rebate": paper_rebate,
            }
        )
    ledger.verify_chain()
    return rows


def test_bench_table2(once):
    rows = once(_run_table2)

    print("\n=== Table II: application submission cost (SUI) ===")
    print("  size      total (paper)        rebate (paper)")
    for row in rows:
        print(
            f"  {row['size']:6d} B  {row['total_sui']:.5f} ({row['paper_total']:.5f})"
            f"   {row['rebate_sui']:.5f} ({row['paper_rebate']:.5f})"
        )

    for row in rows:
        # The object store adds a few bytes of key/structure overhead on
        # top of the raw blob, so allow a small absolute tolerance.
        assert row["total_sui"] == pytest.approx(row["paper_total"], abs=1e-3)
        assert row["rebate_sui"] == pytest.approx(row["paper_rebate"], abs=1e-3)

    # Costs grow linearly with size; rebate recovers most of storage.
    totals = [row["total_sui"] for row in rows]
    assert totals == sorted(totals)
