"""A continent-scale fault-localization campaign, end to end.

Generates a 5 000-AS power-law Internet with Gao-Rexford routing and
background traffic, injects one fault per episode (delay, loss, or
blackhole — each confined to its episode's time window), and localizes
all of them with the vectorized campaign engine — serially, then
region-sharded over a process pool, checking the two runs are
bit-identical. Also runs a small event-driven slice to show the
engines agree measurement-for-measurement.

Run:  python examples/continent_campaign.py [n_ases] [episodes]
"""

import sys
from dataclasses import replace

from repro.workloads.wanbench import (
    WanbenchConfig,
    build_continent,
    run_campaign,
    run_event_baseline,
)

N_ASES = 5000
EPISODES = 24


def main() -> None:
    n_ases = int(sys.argv[1]) if len(sys.argv) > 1 else N_ASES
    episodes = int(sys.argv[2]) if len(sys.argv) > 2 else EPISODES
    config = WanbenchConfig(
        n_ases=n_ases, episodes=episodes, regions=5, strategy="mixed"
    )

    scenario = build_continent(config)
    degrees = sorted(
        (scenario.topology.degree(a) for a in scenario.topology.ases),
        reverse=True,
    )
    print(
        f"generated {n_ases}-AS Internet: top degrees {degrees[:3]}, "
        f"median {degrees[len(degrees) // 2]}, "
        f"{scenario.congested_channels} channels carrying background traffic"
    )
    print(
        f"{episodes} episodes on policy paths of "
        f"{min(e.path.length for e in scenario.episodes)}-"
        f"{max(e.path.length for e in scenario.episodes)} hops, "
        "one windowed fault each\n"
    )

    serial = run_campaign(scenario, workers=0)
    print(
        f"serial fast path:  {serial.wall_seconds:6.2f}s  "
        f"accuracy {serial.accuracy:.0%}  "
        f"{serial.measurements} measurements ({serial.probes_sent} probes)"
    )

    sharded = run_campaign(build_continent(config), workers=2)
    print(
        f"region-sharded:    {sharded.wall_seconds:6.2f}s  "
        f"accuracy {sharded.accuracy:.0%}  "
        f"pool of {sharded.workers}"
    )
    match = serial.digest == sharded.digest
    print(f"digest equality:   {'BIT-IDENTICAL' if match else 'MISMATCH'} "
          f"({serial.digest[:16]})\n")
    if not match:
        raise SystemExit(1)

    # Event-driven slice: same plans, same verdicts, a fraction of the
    # episodes (VM probing at full scale would take minutes).
    slice_config = replace(config, episodes=min(4, episodes))
    event = run_event_baseline(build_continent(slice_config))
    fast_slice = run_campaign(build_continent(slice_config), workers=0)
    agree = event.measurements == fast_slice.measurements
    print(
        f"event-driven slice ({slice_config.episodes} episodes): "
        f"{event.wall_seconds:.2f}s vs fast {fast_slice.wall_seconds:.2f}s "
        f"— speedup {event.wall_seconds / fast_slice.wall_seconds:.0f}x"
    )
    print(
        "engines agree on every measurement: "
        f"{agree} ({event.measurements} == {fast_slice.measurements})"
    )

    by_strategy: dict[str, list] = {}
    for row in serial.rows:
        by_strategy.setdefault(row["strategy"], []).append(row)
    print("\nper-strategy curves (accuracy / probe cost / convergence):")
    for strategy in sorted(by_strategy):
        rows = by_strategy[strategy]
        found = sum(1 for r in rows if r["found"])
        probes = sum(r["measurements"] for r in rows) / len(rows)
        conv = sum(r["convergence_time"] for r in rows) / len(rows)
        print(
            f"  {strategy:<11} accuracy {found}/{len(rows)}  "
            f"mean {probes:4.1f} measurements  "
            f"mean convergence {conv:5.1f}s"
        )


if __name__ == "__main__":
    main()
