"""Writing a custom Debuglet: a jitter burst-prober in Debuglet assembly.

Debuglets are programmable (§IV-B): this one is not in the stock library.
It sends a back-to-back burst of UDP probes every second (instead of a
steady train), records each probe's RTT, and additionally reports the
max-min RTT spread *within each burst* — a jitter microscope that a
fixed-function measurement service could not provide.

Run:  python examples/custom_debuglet.py
"""

from repro.common.errors import ManifestError
from repro.core import DebugletApplication, EchoMeasurement
from repro.core.executor import Executor
from repro.netsim import Link, Network, Protocol, Simulator, Topology
from repro.sandbox import Manifest, assemble, decode_result_pairs, echo_server

BURSTS = 5
PER_BURST = 4
PORT = 7901

# Results: (seq, rtt_us) pairs for every probe, then one (1000+burst,
# spread_us) pair per burst. Locals: 0=burst, 1=i, 2=t0, 3=min, 4=max, 5=ret
CUSTOM_SOURCE = f"""
.memory 65536
.buffer udp_send_buffer 0 64
.buffer udp_recv_buffer 64 128

.func run_debuglet 0 7        ; 6=start time
    host now_us
    local_set 6
burst_loop:
    local_get 0
    push {BURSTS}
    ges
    jnz done
    push 0x7fffffffffffffff
    local_set 3               ; min = +inf
    push 0
    local_set 4               ; max = 0
    push 0
    local_set 1
probe_loop:
    local_get 1
    push {PER_BURST}
    ges
    jnz burst_done
    host now_us
    local_set 2
    push 17
    push 0
    push {PORT}
    local_get 0
    push {PER_BURST}
    mul
    local_get 1
    add                       ; seq = burst*PER_BURST + i
    push 64
    host net_send
    drop
    push 17
    push 500000
    host net_recv
    local_set 5
    local_get 5
    push 0
    lts
    jnz next_probe            ; timeout: skip stats
    ; rtt = now - t0
    host now_us
    local_get 2
    sub
    local_set 5
    ; record (seq from header, rtt)
    push 80                   ; recv header seq at 64+16
    load64
    host result_i64
    drop
    local_get 5
    host result_i64
    drop
    ; min/max update
    local_get 5
    local_get 3
    lts
    jz check_max
    local_get 5
    local_set 3
check_max:
    local_get 5
    local_get 4
    gts
    jz next_probe
    local_get 5
    local_set 4
next_probe:
    local_get 1
    push 1
    add
    local_set 1
    jmp probe_loop
burst_done:
    ; report (1000 + burst, spread = max - min) if any probe returned
    local_get 4
    push 0
    gts
    jz no_spread
    push 1000
    local_get 0
    add
    host result_i64
    drop
    local_get 4
    local_get 3
    sub
    host result_i64
    drop
no_spread:
    ; sleep until start + (burst+1) seconds
    local_get 0
    push 1
    add
    push 1000000
    mul
    local_get 6
    add
    host sleep_until_us
    drop
    local_get 0
    push 1
    add
    local_set 0
    jmp burst_loop
done:
    push 0
    ret
.end
"""


def main() -> None:
    sim = Simulator()
    topo = Topology()
    topo.make_as(1, seed=1)
    topo.make_as(2, seed=2)
    topo.connect(
        1, 1, 2, 1,
        Link.symmetric("1-2", base_delay=8e-3, seed=7, jitter_std=0.8e-3),
    )
    net = Network(topo, sim, seed=3)
    ex_a = Executor(net, 1, 1, seed=10)
    ex_b = Executor(net, 2, 1, seed=11)

    module = assemble(CUSTOM_SOURCE)
    total_probes = BURSTS * PER_BURST
    manifest = Manifest(
        max_instructions=5000 * total_probes + 100_000,
        max_duration=BURSTS + 5.0,
        max_memory_bytes=module.memory_size,
        max_packets_sent=total_probes,
        max_packets_received=total_probes,
        contacts=(ex_b.data_address,),
        capabilities=("udp",),
        max_result_bytes=16 * (total_probes + BURSTS) + 64,
    )
    manifest.validate_module(module)
    client_app = DebugletApplication("jitter-burst", manifest, module=module)
    server_app = DebugletApplication.from_stock(
        "echo",
        echo_server(Protocol.UDP, max_echoes=total_probes, idle_timeout_us=3_000_000),
        listen_port=PORT,
    )

    records = {}
    ex_b.submit(server_app, start_at=0.5,
                on_complete=lambda r: records.__setitem__("server", r))
    ex_a.submit(client_app, start_at=0.6,
                on_complete=lambda r: records.__setitem__("client", r))
    sim.run_until_idle()

    record = records["client"]
    print(f"execution: {record.status}, fuel used: {record.fuel_used}")
    pairs = decode_result_pairs(record.result)
    rtts = {seq: rtt for seq, rtt in pairs if seq < 1000}
    spreads = {seq - 1000: rtt for seq, rtt in pairs if seq >= 1000}
    echo = EchoMeasurement(probes_sent=total_probes, rtts_us=rtts)
    print(
        f"per-probe: mean RTT {echo.mean_rtt_ms():.3f} ms over "
        f"{echo.received}/{total_probes} probes"
    )
    for burst, spread_us in sorted(spreads.items()):
        print(f"  burst {burst}: intra-burst RTT spread {spread_us / 1e3:.3f} ms")


if __name__ == "__main__":
    main()
