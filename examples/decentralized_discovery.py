"""Decentralized executor discovery (§VI-A): no marketplace, no chain.

ASes advertise their executors as route metadata; an initiator learns
about them through path discovery, negotiates price and window
bilaterally, ships the application directly, and gets the certificate-
signed result back directly. Faster and with no single point of failure —
but the result is not *publicly* verifiable.

Run:  python examples/decentralized_discovery.py
"""

from repro.chain.crypto import verify_signature
from repro.core import (
    DebugletApplication,
    DecentralizedDirectory,
    EchoMeasurement,
    ExecutorFleet,
)
from repro.core.executor import executor_data_address
from repro.netsim import Protocol
from repro.sandbox import echo_client, echo_server
from repro.workloads import build_chain

PROBES = 20
PORT = 7870


def main() -> None:
    scenario = build_chain(4, seed=55)
    fleet = ExecutorFleet(scenario.network, seed=56)
    fleet.deploy_full()

    # ASes announce executors in their routing messages.
    directory = DecentralizedDirectory(scenario.registry)
    for vantage in fleet.vantages():
        directory.advertise(fleet.get(*vantage), price=2_000_000)

    path = scenario.registry.shortest(1, 4)
    on_path = directory.executors_on_path(path)
    print(f"path {path}")
    print(
        "executors learned from route metadata: "
        + ", ".join(f"AS{a.asn}#{a.interface}" for a in on_path)
    )

    # Bilateral negotiation with the two endpoints of the path.
    client_ad = next(a for a in on_path if (a.asn, a.interface) == (1, 2))
    server_ad = next(a for a in on_path if (a.asn, a.interface) == (4, 1))
    server_deal = directory.negotiate(
        server_ad, offer=server_ad.price, window_start=1.0, window_end=30.0
    )
    client_deal = directory.negotiate(
        client_ad, offer=client_ad.price, window_start=1.2, window_end=30.0
    )
    print(
        f"negotiated both executions for "
        f"{(server_deal.price + client_deal.price) / 1e9:.3f} SUI total"
    )

    server_app = DebugletApplication.from_stock(
        "srv", echo_server(Protocol.UDP, max_echoes=PROBES, idle_timeout_us=3_000_000),
        listen_port=PORT, path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "cli",
        echo_client(Protocol.UDP, executor_data_address(4, 1),
                    count=PROBES, interval_us=50_000, dst_port=PORT),
        path=path.as_list(),
    )
    records = {}
    directory.execute(server_deal, server_app,
                      on_complete=lambda r: records.__setitem__("server", r))
    directory.execute(client_deal, client_app,
                      on_complete=lambda r: records.__setitem__("client", r))
    scenario.simulator.run_until_idle()

    record = records["client"]
    echo = EchoMeasurement.from_result(record.result, probes_sent=PROBES)
    print(f"direct result: mean RTT {echo.mean_rtt_ms():.2f} ms, loss {echo.loss_rate():.0%}")

    # Not publicly verifiable, but the certificate still binds the result
    # to the executor's key for anyone who knows it out of band.
    certificate = record.certificate
    assert certificate is not None
    ok = verify_signature(
        certificate.executor_public_key,
        certificate.signing_payload(),
        certificate.signature,
    )
    print(f"certificate signature checks out (bilateral trust): {ok}")


if __name__ == "__main__":
    main()
