"""Fault localization on a ten-AS path (the §VI-D scenario).

Injects a delay fault on the last inter-domain link of a 10-AS chain —
the paper's worked example — and compares the three measurement-selection
strategies, plus what today's tools (ping, traceroute) would have told
you.

Run:  python examples/fault_localization.py
"""

from repro.baselines import ping_sync, traceroute_sync
from repro.core import ExecutorFleet, FaultLocalizer, SegmentProber
from repro.netsim import FaultInjector, InterfaceId, Protocol
from repro.workloads import build_chain

N_ASES = 10


def main() -> None:
    scenario = build_chain(N_ASES, seed=42)
    fleet = ExecutorFleet(scenario.network, seed=43)
    fleet.deploy_full()
    print(f"deployed {len(fleet)} executors (one per border router)")

    injector = FaultInjector(scenario.topology)
    fault = injector.link_delay(
        InterfaceId(N_ASES - 1, 2), InterfaceId(N_ASES, 1),
        extra_delay=20e-3, start=0.0, end=1e12,
    )
    print(f"injected ground truth: +20 ms on {fault.location}\n")

    # What the old tools see.
    client = scenario.network.make_host(1, "user")
    server = scenario.network.make_host(
        N_ASES, "site", echo_protocols=(Protocol.ICMP, Protocol.UDP)
    )
    ping = ping_sync(client, server.address, count=10, interval=0.2)
    print(
        f"ping:        RTT {ping.mean_rtt_ms():.1f} ms end-to-end — something "
        "is slow, but where?"
    )
    tracer = traceroute_sync(client, server.address, max_ttl=20, probe_gap=0.4)
    print(
        f"traceroute:  {tracer.responding_hops} hops answered "
        f"({tracer.silent_hops} silent), slow-path RTTs unusable for timing\n"
    )

    # Debuglet: three strategies over executor vantage points.
    prober = SegmentProber(fleet, probes=20, interval_us=5000)
    localizer = FaultLocalizer(prober)
    path = scenario.registry.shortest(1, N_ASES)
    print(f"{'strategy':<12} {'measurements':>12} {'sim time':>9}  verdict")
    for strategy in ("binary", "linear", "exhaustive"):
        report = localizer.localize(path, strategy=strategy)
        verdict = ", ".join(str(s) for s in report.suspects) or "no fault"
        hit = "correct" if report.found(fault.location) else "WRONG"
        print(
            f"{strategy:<12} {report.measurements_used:>12} "
            f"{report.time_to_locate:>8.1f}s  {verdict}  [{hit}]"
        )


if __name__ == "__main__":
    main()
