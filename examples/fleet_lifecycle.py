"""Executor fleet management end to end (DESIGN.md §14).

A FleetManager runs the lifecycle of a real 3-AS marketplace fleet:
capability-scoped admission (the verifier-backed "Runners v1" allowlist),
sim-clock heartbeats, a graceful drain that deregisters on-chain, a crash
that leads to liveness eviction and later re-registration, and a
heartbeat-loss eviction of a perfectly healthy executor. The closer plans
vantage placement for a localization campaign over the same path.

Run:  python examples/fleet_lifecycle.py
"""

from repro.chaos import ChaosInjector
from repro.core import DebugletApplication
from repro.core.executor import executor_data_address
from repro.core.fleetmgr import CapabilityRecord
from repro.core.placement import evaluate_strategies, synthetic_candidates
from repro.netsim import Protocol
from repro.sandbox import echo_client, echo_server
from repro.workloads import MarketplaceTestbed

PROBES = 20
HB = 5.0  # heartbeat interval, simulated seconds


def main() -> None:
    testbed = MarketplaceTestbed.build(n_ases=3, seed=11)
    simulator = testbed.chain.simulator
    manager = testbed.make_fleet_manager(heartbeat_interval=HB)
    injector = ChaosInjector(simulator, testbed.ledger, seed=11)
    print(f"fleet registered: {manager.counts()}")

    path = testbed.chain.registry.shortest(1, 3)
    server_app = DebugletApplication.from_stock(
        "srv",
        echo_server(Protocol.UDP, max_echoes=PROBES, idle_timeout_us=3_000_000),
        listen_port=7801, path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "cli",
        echo_client(Protocol.UDP, executor_data_address(3, 1),
                    count=PROBES, interval_us=50_000, dst_port=7801),
        path=path.as_list(),
    )

    # Capability-scoped admission: the same program, two records. The
    # verdict comes from verifier-inferred facts (host ops, fuel), not
    # from what the manifest claims.
    member = manager.get((1, 2))
    print(f"admission under the policy-derived record: "
          f"{manager.preflight((1, 2), client_app)}")
    member.capabilities = CapabilityRecord.read_only()
    print(f"admission under a read-only record:        "
          f"{manager.preflight((1, 2), client_app)}")
    print(f"  denial reason: {member.admission_log[-1].reason}")
    member.capabilities = CapabilityRecord.from_policy(member.executor.policy)

    # One marketplace session through the managed (all-active) fleet.
    session = testbed.initiator.request_measurement(
        client_app, server_app, (1, 2), (3, 1), duration=30.0
    )
    testbed.initiator.run_until_done(session, simulator)
    print(f"session through the managed fleet: {session.state.value}")

    # Graceful drain: stop selling, finish work, deregister on-chain.
    manager.drain((2, 1))
    manager.run_until(simulator.now + 3 * HB)
    print(f"drained 2:1 -> {manager.state_of((2, 1)).value} "
          f"(on-chain address: {testbed.market.executor_address(2, 1)})")

    # Crash -> missed heartbeats -> eviction -> restart -> re-register.
    crash_at = simulator.now + HB
    restart_at = crash_at + (manager.evict_beats + 1.5) * HB
    injector.crash_executor(
        testbed.agents[(2, 2)].executor, at=crash_at, restart_at=restart_at
    )
    manager.run_until(restart_at + 0.5 * HB)
    print(f"crashed 2:2 -> {manager.state_of((2, 2)).value}")
    manager.reregister((2, 2))
    print(f"re-registered 2:2 -> {manager.state_of((2, 2)).value} "
          f"(stake untouched: eviction is not slashing)")

    # Heartbeat loss: healthy executor, severed control channel.
    injector.lose_heartbeats(manager.get((3, 1)), start=simulator.now)
    manager.run_until(simulator.now + (manager.evict_beats + 2) * HB)
    lost = manager.get((3, 1))
    print(f"heartbeat loss 3:1 -> {lost.state.value} "
          f"(executor still healthy: {not lost.executor.crashed})")
    manager.stop()
    print(f"final fleet states: {manager.counts()}")

    # Placement: where should a localization campaign buy vantage points?
    pool = synthetic_candidates(8)
    plans = evaluate_strategies(8, pool, budget=300, seed=11)
    for strategy in ("border", "in_as", "random"):
        plan = plans[strategy]
        print(f"placement {strategy:<7}: {len(plan.chosen)} vantages, "
              f"cost {plan.cost}, mean suspect set "
              f"{plan.mean_suspect_set:.2f}")
    assert (plans["border"].mean_suspect_set
            <= plans["random"].mean_suspect_set)
    print("border co-location beats the random baseline")


if __name__ == "__main__":
    main()
