"""Age of information (§VI-F): when did this path start degrading?

Runs periodic Debuglet measurements of one inter-domain segment, retains
each result off-chain with an on-chain hash anchor, injects a fault
midway, and then answers the paper's motivating question from the
*verified* archive: the time at which the degradation began.

Run:  python examples/historical_trend.py
"""

from repro.chain import KeyPair, Ledger, Wallet, sui_to_mist
from repro.core import (
    ArchiveContract,
    ArchivedMeasurement,
    ExecutorFleet,
    ResultArchive,
    SegmentProber,
    degradation_onset,
)
from repro.netsim import FaultInjector, InterfaceId
from repro.workloads import build_chain

PERIOD = 60.0
ROUNDS = 12
FAULT_ROUND = 8


def main() -> None:
    scenario = build_chain(3, seed=33)
    fleet = ExecutorFleet(scenario.network, seed=34)
    fleet.deploy_full()
    prober = SegmentProber(fleet, probes=10, interval_us=5000)
    path = scenario.registry.shortest(1, 3)

    ledger = Ledger(clock=lambda: scenario.simulator.now)
    contract = ledger.register_contract(ArchiveContract())
    keypair = KeyPair.deterministic("monitoring-site")
    ledger.create_account(keypair, balance=sui_to_mist(100))
    archive = ResultArchive(ledger, contract, Wallet(ledger, keypair))

    injector = FaultInjector(scenario.topology)
    injector.link_delay(
        InterfaceId(2, 2), InterfaceId(3, 1),
        extra_delay=12e-3, start=FAULT_ROUND * PERIOD, end=1e12,
    )

    print(f"archiving one segment measurement every {PERIOD:.0f}s...")
    for round_index in range(ROUNDS):
        start = max(round_index * PERIOD, scenario.simulator.now)
        measurement = prober.measure_sync((1, 2), (3, 1), path, start_at=start)
        anchor = archive.archive(
            ArchivedMeasurement(
                segment_key="as1-as3-via-as2",
                measured_at=measurement.started_at,
                mean_rtt_ms=measurement.mean_rtt_ms(),
                loss_rate=measurement.loss_rate(),
                result=measurement.client_record.result,
            )
        )
        print(
            f"  t={measurement.started_at:7.1f}s  rtt="
            f"{measurement.mean_rtt_ms():6.2f} ms  anchored as {anchor[:8]}…"
        )

    history = archive.history("as1-as3-via-as2")  # each entry re-verified
    report = degradation_onset(history, rtt_slack_ms=5.0)
    print(
        f"\ntrend analysis over the verified archive: degradation began at "
        f"t={report.onset_at:.0f}s "
        f"(baseline {report.baseline_rtt_ms:.2f} ms -> "
        f"{report.degraded_rtt_ms:.2f} ms)"
    )
    print(f"(ground truth: fault injected at t={FAULT_ROUND * PERIOD:.0f}s)")


if __name__ == "__main__":
    main()
