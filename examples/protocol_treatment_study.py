"""The §II motivation study: protocols experience the network differently.

Rebuilds the paper's 7-city experiment on the simulated WAN: concurrent
UDP/TCP/ICMP/raw-IP probe trains from six cities toward London, identical
packet sizes, then prints the Table I rows and the route-cluster analysis
behind Figs 2 and 3.

Run:  python examples/protocol_treatment_study.py [probes_per_protocol]
"""

import sys

from repro.analysis import detect_clusters, format_table1_row, spread_ms, table_row
from repro.netsim import Protocol
from repro.workloads import WanScenario


def main(probes: int = 1500) -> None:
    print(f"building the 7-city WAN; {probes} probes per (city, protocol)...")
    scenario = WanScenario.build(seed=7)
    traces = scenario.run_protocol_study(probes_per_protocol=probes, interval=1.0)

    print("\nTable I (reproduced): RTT mean±std (ms) and loss (per-mille)")
    for city, by_protocol in traces.items():
        print(format_table1_row(city, table_row(by_protocol)))

    print("\nWhy probes must look like data packets:")
    frankfurt_udp = traces["frankfurt"][Protocol.UDP]
    clusters = detect_clusters(frankfurt_udp.rtts_ms(), bandwidth_ms=0.3)
    print(
        "  Frankfurt UDP forms "
        f"{len(clusters)} RTT clusters (parallel routes, Fig 2): "
        + ", ".join(f"{c.center_ms:.1f} ms" for c in clusters)
    )
    bangalore_udp = traces["bangalore"][Protocol.UDP]
    print(
        f"  Bangalore UDP is spread over {spread_ms(bangalore_udp.rtts_ms()):.0f} ms "
        "(Fig 3) while ICMP sits at "
        f"±{traces['bangalore'][Protocol.ICMP].std_rtt_ms():.1f} ms"
    )
    newyork = traces["newyork"]
    print(
        f"  New York TCP loses {newyork[Protocol.TCP].loss_per_mille():.1f}‰ of "
        f"packets vs {newyork[Protocol.ICMP].loss_per_mille():.1f}‰ for ICMP — "
        "a ping would miss the problem entirely"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
