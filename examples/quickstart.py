"""Quickstart: one verifiable Debuglet measurement, end to end.

Builds a three-AS topology with executors at every border router, a local
Sui-like ledger running the marketplace contract, then walks the paper's
five-step flow (§IV-A): generate Debuglets, look up and purchase slots,
let the executor agents run them, fetch the certified results, and verify
everything as a third party.

Run:  python examples/quickstart.py
"""

from repro.chain.gas import mist_to_sui
from repro.core import ChainVerifier, DebugletApplication, EchoMeasurement
from repro.core.executor import executor_data_address
from repro.netsim import Protocol
from repro.sandbox import echo_client, echo_server
from repro.workloads import MarketplaceTestbed

PROBES = 30


def main() -> None:
    # 1. The world: AS1 - AS2 - AS3 with executors, a ledger, a funded
    #    initiator, and executor agents already registered on-chain.
    testbed = MarketplaceTestbed.build(n_ases=3, seed=1)
    path = testbed.chain.registry.shortest(1, 3)
    print(f"measurement path: {path}")

    # 2. Generate the Debuglet pair: a UDP echo server at AS3's ingress
    #    and a client at AS1's egress, both pinned to the path.
    server_app = DebugletApplication.from_stock(
        "quickstart-server",
        echo_server(Protocol.UDP, max_echoes=PROBES, idle_timeout_us=3_000_000),
        listen_port=7801,
        path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "quickstart-client",
        echo_client(
            Protocol.UDP,
            executor_data_address(3, 1),
            count=PROBES,
            interval_us=50_000,
            dst_port=7801,
        ),
        path=path.as_list(),
    )

    # 3. Look up and purchase slots (tokens escrowed with the bytecode).
    session = testbed.initiator.request_measurement(
        client_app, server_app, client_vantage=(1, 2), server_vantage=(3, 1),
        duration=30.0,
    )
    print(
        f"purchased window [{session.window_start:.2f}, {session.window_end:.2f}] "
        f"for {mist_to_sui(session.total_price):.3f} SUI"
    )

    # 4. Run the world until both executors have published results.
    testbed.initiator.run_until_done(session, testbed.chain.simulator)
    print(f"delay-to-measurement: {session.delay_to_measurement:.2f} s")

    # 5. Decode and verify.
    echo = EchoMeasurement.from_result(
        session.client_outcome.result, probes_sent=PROBES
    )
    print(
        f"measured: mean RTT {echo.mean_rtt_ms():.3f} ms, "
        f"std {echo.std_rtt_ms():.3f} ms, loss {echo.loss_rate():.1%}"
    )

    verifier = ChainVerifier(testbed.ledger, testbed.market)
    for label, app_id in (
        ("client", session.client_application),
        ("server", session.server_application),
    ):
        verified = verifier.verify_result(app_id)
        print(
            f"third-party verification of the {label} result: OK "
            f"(vantage {verified.vantage}, checkpoint {verified.checkpoint_index})"
        )
    testbed.ledger.verify_chain()
    print("full chain verification: OK")


if __name__ == "__main__":
    main()
