"""SLA enforcement with verifiable measurements (§VI-B use case).

A customer suspects its ISP (AS2) violates a latency SLA. The customer
buys Debuglet measurements bracketing the ISP, publishes them on-chain,
and a third party (e.g. an arbiter) verifies the results without trusting
either side. A second scenario shows a *cheating* ISP that prioritizes
executor traffic being caught by cross-validation (§VI-E).

Run:  python examples/verifiable_sla.py
"""

import numpy as np

from repro.core import (
    ChainVerifier,
    CrossValidator,
    DebugletApplication,
    EchoMeasurement,
    enable_prioritization,
)
from repro.core.executor import executor_data_address
from repro.netsim import (
    CongestionConfig,
    CongestionProcess,
    FaultInjector,
    InterfaceId,
    Protocol,
)
from repro.netsim.traffic import ProbeTrain
from repro.sandbox import echo_client, echo_server
from repro.workloads import MarketplaceTestbed

PROBES = 25
SLA_RTT_MS = 15.0  # what AS2 promised for the bracketed segment


def measure_segment(testbed, client_vantage, server_vantage, path, port):
    server_app = DebugletApplication.from_stock(
        "sla-server",
        echo_server(Protocol.UDP, max_echoes=PROBES, idle_timeout_us=3_000_000),
        listen_port=port,
        path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "sla-client",
        echo_client(
            Protocol.UDP, executor_data_address(*server_vantage),
            count=PROBES, interval_us=50_000, dst_port=port,
        ),
        path=path.as_list(),
    )
    session = testbed.initiator.request_measurement(
        client_app, server_app, client_vantage, server_vantage, duration=30.0
    )
    testbed.initiator.run_until_done(session, testbed.chain.simulator)
    echo = EchoMeasurement.from_result(
        session.client_outcome.result, probes_sent=PROBES
    )
    return session, echo


def main() -> None:
    testbed = MarketplaceTestbed.build(n_ases=3, seed=77)
    # AS2 is congested inside: it violates its SLA.
    injector = FaultInjector(testbed.chain.topology)
    injector.as_internal_delay(2, extra_delay=12e-3, start=0.0, end=1e12)

    path = testbed.chain.registry.shortest(1, 3)
    session, echo = measure_segment(testbed, (1, 2), (3, 1), path, port=7851)
    print(
        f"bracketing measurement across AS2: {echo.mean_rtt_ms():.2f} ms "
        f"(SLA: {SLA_RTT_MS:.0f} ms) -> "
        + ("VIOLATION" if echo.mean_rtt_ms() > SLA_RTT_MS else "ok")
    )

    # The arbiter verifies the published evidence independently.
    verifier = ChainVerifier(testbed.ledger, testbed.market)
    verified = verifier.verify_result(session.client_application)
    replay = EchoMeasurement.from_result(verified.result, probes_sent=PROBES)
    print(
        f"arbiter re-derives {replay.mean_rtt_ms():.2f} ms from the on-chain, "
        f"executor-certified result (vantage {verified.vantage}): evidence holds"
    )

    # --- Scenario 2: a cheating ISP tries to hide the congestion (§VI-E).
    print("\ncheating scenario: AS2 prioritizes executor traffic")
    channels = [
        testbed.chain.topology.channel_between(InterfaceId(1, 2), InterfaceId(2, 1)),
        testbed.chain.topology.channel_between(InterfaceId(2, 1), InterfaceId(1, 2)),
    ]
    config = CongestionConfig(
        base_utilization=0.85, diurnal_amplitude=0.0, burst_rate=0.0,
        queue_service_time=2e-3, drop_threshold=0.99,
    )
    for index, channel in enumerate(channels):
        channel.congestion = CongestionProcess(config, seed=80 + index)
    enable_prioritization(
        channels, [executor_data_address(1, 2), executor_data_address(2, 1)]
    )

    _, gamed_echo = measure_segment(
        testbed, (1, 2), (2, 1), path.subsegment(1, 2), port=7852
    )
    user = testbed.chain.network.make_host(1, "user")
    site = testbed.chain.network.make_host(2, "site", echo_protocols=(Protocol.UDP,))
    train = ProbeTrain(user, site.address, Protocol.UDP,
                       count=60, interval=0.01, src_port=3998)
    testbed.chain.simulator.run_until_idle()
    endhost = train.finalize()

    report = CrossValidator(rtt_tolerance_ms=5.0).compare(
        executor_rtts_ms=np.array(sorted(gamed_echo.rtts_us.values())) / 1e3,
        executor_loss=gamed_echo.loss_rate(),
        endhost_rtts_ms=endhost.rtts_ms(),
        endhost_loss=endhost.loss_rate(),
    )
    print(
        f"executor-measured {report.executor_mean_rtt_ms:.2f} ms vs end-host "
        f"{report.endhost_mean_rtt_ms:.2f} ms -> gaming suspected: "
        f"{report.gaming_suspected} ({'; '.join(report.reasons)})"
    )


if __name__ == "__main__":
    main()
