"""Debuglet: programmable and verifiable inter-domain network telemetry.

A full Python reproduction of the ICDCS 2024 paper, including every
substrate it runs on:

- :mod:`repro.netsim` — packet-level inter-domain simulator with
  protocol-differential forwarding (the §II motivation study's testbed);
- :mod:`repro.pathaware` — SCION-like path discovery and selection;
- :mod:`repro.sandbox` — a WebAssembly-analogue metered VM, assembler,
  manifests, and stock measurement programs;
- :mod:`repro.chain` — a Sui-like ledger with contracts, events, and
  Table II-calibrated gas pricing;
- :mod:`repro.contracts` — the Debuglet marketplace smart contract;
- :mod:`repro.core` — executors, the measurement workflow, fault
  localization, verification, and the §VI extensions;
- :mod:`repro.baselines` — ping and traceroute comparators;
- :mod:`repro.analysis` — statistics and cluster detection for traces;
- :mod:`repro.workloads` — the 7-city WAN and fault scenarios behind
  every table and figure.
"""

__version__ = "1.0.0"
