"""Analysis helpers: trace statistics and RTT cluster detection."""

from repro.analysis.export import (
    maybe_export_summary,
    maybe_export_timeseries,
    write_summary_csv,
    write_timeseries_csv,
)
from repro.analysis.clustering import Cluster, cluster_count, detect_clusters, spread_ms
from repro.analysis.stats import (
    CellStats,
    coefficient_of_variation,
    format_table1_row,
    step_changes,
    table_row,
)

__all__ = [
    "CellStats",
    "Cluster",
    "cluster_count",
    "coefficient_of_variation",
    "detect_clusters",
    "format_table1_row",
    "spread_ms",
    "step_changes",
    "maybe_export_summary",
    "maybe_export_timeseries",
    "table_row",
    "write_summary_csv",
    "write_timeseries_csv",
]
