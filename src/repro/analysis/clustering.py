"""RTT cluster detection.

Figure 2 of the paper shows UDP RTTs forming four clearly visible
clusters, which the authors attribute to four parallel routes. This
module finds such clusters with a kernel-density peak search —
deliberately simple, deterministic, and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Cluster:
    """A density mode: its center (ms) and the fraction of samples near it."""

    center_ms: float
    weight: float


def detect_clusters(
    rtts_ms: np.ndarray,
    *,
    bandwidth_ms: float = 0.25,
    min_weight: float = 0.04,
    grid_points: int = 512,
) -> list[Cluster]:
    """Find RTT density modes.

    Builds a Gaussian KDE on a fixed grid and reports local maxima whose
    assigned sample mass exceeds ``min_weight``. Returns clusters sorted
    by center.
    """
    values = np.asarray(rtts_ms, dtype=float)
    if values.size == 0:
        return []
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-9:
        return [Cluster(center_ms=lo, weight=1.0)]
    pad = 3 * bandwidth_ms
    grid = np.linspace(lo - pad, hi + pad, grid_points)
    # KDE via broadcasting in manageable chunks.
    density = np.zeros_like(grid)
    chunk = 20000
    for start in range(0, values.size, chunk):
        part = values[start : start + chunk]
        density += np.exp(
            -0.5 * ((grid[:, None] - part[None, :]) / bandwidth_ms) ** 2
        ).sum(axis=1)
    density /= values.size * bandwidth_ms * np.sqrt(2 * np.pi)

    peaks = [
        i
        for i in range(1, grid_points - 1)
        if density[i] >= density[i - 1] and density[i] > density[i + 1]
    ]
    if not peaks:
        return [Cluster(center_ms=float(np.median(values)), weight=1.0)]

    centers = grid[peaks]
    # Assign each sample to its nearest peak and weigh the clusters.
    assignment = np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
    clusters = []
    for index, center in enumerate(centers):
        weight = float(np.mean(assignment == index))
        if weight >= min_weight:
            members = values[assignment == index]
            clusters.append(
                Cluster(center_ms=float(np.mean(members)), weight=weight)
            )
    clusters.sort(key=lambda cluster: cluster.center_ms)
    return clusters


def cluster_count(rtts_ms: np.ndarray, **kwargs) -> int:
    """Number of significant RTT modes (Fig 2's ‘four clusters’ check)."""
    return len(detect_clusters(rtts_ms, **kwargs))


def spread_ms(rtts_ms: np.ndarray, *, lower_q: float = 1.0, upper_q: float = 99.0) -> float:
    """Robust spread of an RTT distribution (Fig 3's ‘30 ms range’)."""
    values = np.asarray(rtts_ms, dtype=float)
    if values.size == 0:
        return float("nan")
    return float(np.percentile(values, upper_q) - np.percentile(values, lower_q))
