"""Exporting measurement data for external plotting.

The benches print the paper's tables; these helpers additionally dump the
underlying series as CSV so figures can be re-plotted with any tool. Set
``DEBUGLET_EXPORT=<dir>`` when running the benches to get one CSV per
figure.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from repro.netsim.packet import Protocol
from repro.netsim.trace import MeasurementTrace


def export_directory() -> Path | None:
    """The export target from ``DEBUGLET_EXPORT``, or ``None`` if unset."""
    value = os.environ.get("DEBUGLET_EXPORT", "")
    if not value:
        return None
    path = Path(value)
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_timeseries_csv(
    path: Path, traces: dict[Protocol, MeasurementTrace]
) -> Path:
    """One row per received probe: protocol, send time (s), RTT (ms)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["protocol", "send_time_s", "rtt_ms"])
        for protocol, trace in traces.items():
            times, rtts = trace.time_series()
            for t, rtt in zip(times, rtts):
                writer.writerow([protocol.name, f"{t:.3f}", f"{rtt:.4f}"])
    return path


def write_summary_csv(
    path: Path, rows: dict[str, dict[Protocol, MeasurementTrace]]
) -> Path:
    """One row per (location, protocol): the Table I summary values."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["location", "protocol", "sent", "received", "mean_ms", "std_ms",
             "loss_per_mille"]
        )
        for location, traces in rows.items():
            for protocol, trace in traces.items():
                writer.writerow(
                    [
                        location,
                        protocol.name,
                        trace.sent,
                        trace.received,
                        f"{trace.mean_rtt_ms():.4f}",
                        f"{trace.std_rtt_ms():.4f}",
                        f"{trace.loss_per_mille():.3f}",
                    ]
                )
    return path


def maybe_export_timeseries(
    name: str, traces: dict[Protocol, MeasurementTrace]
) -> Path | None:
    """Write a time-series CSV if ``DEBUGLET_EXPORT`` is set."""
    directory = export_directory()
    if directory is None:
        return None
    return write_timeseries_csv(directory / f"{name}.csv", traces)


def maybe_export_summary(
    name: str, rows: dict[str, dict[Protocol, MeasurementTrace]]
) -> Path | None:
    """Write a summary CSV if ``DEBUGLET_EXPORT`` is set."""
    directory = export_directory()
    if directory is None:
        return None
    return write_summary_csv(directory / f"{name}.csv", rows)
