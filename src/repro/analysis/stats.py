"""Statistics over measurement traces: the numbers the paper tabulates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.packet import Protocol
from repro.netsim.trace import MeasurementTrace


@dataclass(frozen=True)
class CellStats:
    """One Table I cell: RTT mean/std (ms) and loss (per-mille)."""

    protocol: Protocol
    mean_ms: float
    std_ms: float
    loss_per_mille: float
    samples: int

    @classmethod
    def from_trace(cls, trace: MeasurementTrace) -> "CellStats":
        return cls(
            protocol=trace.protocol,
            mean_ms=trace.mean_rtt_ms(),
            std_ms=trace.std_rtt_ms(),
            loss_per_mille=trace.loss_per_mille(),
            samples=trace.received,
        )


def table_row(traces: dict[Protocol, MeasurementTrace]) -> dict[str, CellStats]:
    """Stats per protocol for one city (one Table I row)."""
    return {
        protocol.name: CellStats.from_trace(trace)
        for protocol, trace in traces.items()
    }


def format_table1_row(location: str, row: dict[str, CellStats]) -> str:
    """Render one row in the paper's layout: mean/std per protocol, then
    loss per-mille underneath."""
    order = ["UDP", "TCP", "ICMP", "RAW_IP"]
    means = "  ".join(
        f"{name}: {row[name].mean_ms:7.2f}±{row[name].std_ms:5.2f}ms"
        for name in order
        if name in row
    )
    losses = "  ".join(
        f"{name}: {row[name].loss_per_mille:5.2f}‰" for name in order if name in row
    )
    return f"{location:<14} {means}\n{'':<14} loss  {losses}"


def coefficient_of_variation(values: np.ndarray) -> float:
    """std / mean; the stability metric used to compare protocols."""
    if len(values) == 0:
        return float("nan")
    mean = float(np.mean(values))
    if mean == 0:
        return float("nan")
    return float(np.std(values, ddof=1)) / mean if len(values) > 1 else 0.0


def step_changes(
    times: np.ndarray, values: np.ndarray, *, window: int = 60, threshold: float = 3.0
) -> list[float]:
    """Detect sudden level shifts in an RTT time series (Fig 1's ~5 ms
    route-change steps): times where the rolling-window mean jumps by more
    than ``threshold`` (ms) between adjacent windows."""
    if len(values) < 2 * window:
        return []
    changes = []
    previous_mean = float(np.mean(values[:window]))
    for start in range(window, len(values) - window, window):
        current_mean = float(np.mean(values[start : start + window]))
        if abs(current_mean - previous_mean) > threshold:
            changes.append(float(times[start]))
        previous_mean = current_mean
    return changes
