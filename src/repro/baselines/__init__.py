"""Today's debugging tools, as comparators (§I, §II, §VII)."""

from repro.baselines.ping import Ping, ping_sync
from repro.baselines.traceroute import (
    Traceroute,
    TracerouteHop,
    TracerouteResult,
    traceroute_sync,
)

__all__ = [
    "Ping",
    "Traceroute",
    "TracerouteHop",
    "TracerouteResult",
    "ping_sync",
    "traceroute_sync",
]
