"""The ping baseline: ICMP echo measurement.

The tool the paper argues is *insufficient*: it measures how the network
treats ICMP, which §II shows can differ substantially from the treatment
of the UDP/TCP data traffic being debugged. Provided as a comparator for
the motivation experiments and the baseline benches.
"""

from __future__ import annotations

from repro.netsim.endhost import Host
from repro.netsim.packet import Address, Protocol
from repro.netsim.topology import PathHop
from repro.netsim.trace import MeasurementTrace
from repro.netsim.traffic import ProbeTrain


class Ping:
    """Classic ping: ICMP echo requests at a fixed interval."""

    def __init__(
        self,
        client: Host,
        target: Address,
        *,
        count: int = 10,
        interval: float = 1.0,
        size: int = 64,
        start: float = 0.0,
        timeout: float = 5.0,
        path: list[PathHop] | None = None,
    ) -> None:
        self._train = ProbeTrain(
            client,
            target,
            Protocol.ICMP,
            count=count,
            interval=interval,
            size=size,
            start=start,
            timeout=timeout,
            path=path,
            label=f"ping {target}",
        )

    def finalize(self) -> MeasurementTrace:
        """Call after the simulator has drained the probe schedule."""
        return self._train.finalize()


def ping_sync(
    client: Host,
    target: Address,
    **kwargs,
) -> MeasurementTrace:
    """Run a ping to completion (pumps the simulator) and return the trace."""
    ping = Ping(client, target, **kwargs)
    client.network.simulator.run_until_idle()
    return ping.finalize()
