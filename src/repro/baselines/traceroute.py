"""The traceroute baseline: TTL-sweep path discovery.

Reproduces the two §II limitations the paper calls out:

1. routers may have TTL-exceeded generation *disabled or rate-limited*,
   leaving ``* * *`` holes in the output;
2. routers answer on the *slow path* (control-plane punt), so the RTT a
   traceroute hop reports does not reflect what data packets experience.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.endhost import Host
from repro.netsim.packet import Address, IcmpType, Packet
from repro.netsim.topology import PathHop


@dataclass
class TracerouteHop:
    """One TTL's outcome. ``responder`` is ``None`` on timeout (``*``)."""

    ttl: int
    responder: Address | None
    rtt: float | None
    reached_destination: bool = False


@dataclass
class TracerouteResult:
    hops: list[TracerouteHop] = field(default_factory=list)

    @property
    def responding_hops(self) -> int:
        return sum(1 for hop in self.hops if hop.responder is not None)

    @property
    def silent_hops(self) -> int:
        return sum(1 for hop in self.hops if hop.responder is None)

    def destination_reached(self) -> bool:
        return any(hop.reached_destination for hop in self.hops)


class Traceroute:
    """ICMP-probe traceroute over the simulator.

    Sends ``probes_per_hop`` echo requests per TTL, spaced ``probe_gap``
    apart; routers answer with (rate-limited, slow-path) time-exceeded
    messages, the destination with an echo reply.
    """

    def __init__(
        self,
        client: Host,
        target: Address,
        *,
        max_ttl: int = 16,
        probes_per_hop: int = 1,
        probe_gap: float = 0.2,
        timeout: float = 2.0,
        path: list[PathHop] | None = None,
    ) -> None:
        self.client = client
        self.target = target
        self.max_ttl = max_ttl
        self.probes_per_hop = probes_per_hop
        self.probe_gap = probe_gap
        self.timeout = timeout
        self.path = path
        self.result = TracerouteResult()
        self._socket = client.open_icmp()
        self._socket.on_receive = self._on_reply
        self._sent: dict[int, tuple[int, float]] = {}  # seq -> (ttl, sent_at)
        self._answered: set[int] = set()
        self._seq = 0
        self._schedule_probes()

    def _schedule_probes(self) -> None:
        sim = self.client.network.simulator
        t = sim.now
        for ttl in range(1, self.max_ttl + 1):
            for _ in range(self.probes_per_hop):
                self._seq += 1
                seq = self._seq
                sim.schedule_at(t, self._send_probe, ttl, seq)
                t += self.probe_gap
        sim.schedule_at(t + self.timeout, self._finalize)

    def _send_probe(self, ttl: int, seq: int) -> None:
        self._sent[seq] = (ttl, self.client.network.simulator.now)
        self._socket.send(
            self.target,
            size=64,
            seq=seq,
            ttl=ttl,
            path=self.path,
            icmp_type=IcmpType.ECHO_REQUEST,
        )

    def _on_reply(self, packet: Packet, t: float) -> None:
        if packet.icmp_type not in (IcmpType.TIME_EXCEEDED, IcmpType.ECHO_REPLY):
            return
        seq = packet.seq
        if packet.icmp_type is IcmpType.TIME_EXCEEDED and isinstance(packet.payload, dict):
            seq = packet.payload.get("original_seq", seq)
        sent = self._sent.get(seq)
        if sent is None or seq in self._answered:
            return
        ttl, sent_at = sent
        if t - sent_at > self.timeout:
            return
        self._answered.add(seq)
        self.result.hops.append(
            TracerouteHop(
                ttl=ttl,
                responder=packet.src,
                rtt=t - sent_at,
                reached_destination=packet.icmp_type is IcmpType.ECHO_REPLY,
            )
        )

    def _finalize(self) -> None:
        for seq, (ttl, _) in sorted(self._sent.items()):
            if seq not in self._answered:
                self.result.hops.append(TracerouteHop(ttl=ttl, responder=None, rtt=None))
        self.result.hops.sort(key=lambda hop: hop.ttl)
        self._socket.close()


def traceroute_sync(client: Host, target: Address, **kwargs) -> TracerouteResult:
    """Run a traceroute to completion and return its result."""
    tracer = Traceroute(client, target, **kwargs)
    client.network.simulator.run_until_idle()
    return tracer.result
