"""A compact, verifiable blockchain substrate (Sui-like).

Provides what Debuglet's control plane needs from a blockchain (§IV-C):
signed and replayable transaction history, contract-escrowed payments,
events, sub-second finality, and Table II-calibrated storage pricing.
"""

from repro.chain.batch import BlockBuilder, PendingBlock
from repro.chain.contract import Contract, ExecutionContext, entry
from repro.chain.crypto import KeyPair, ed25519_batch_verify, sha256, verify_signature
from repro.chain.events import Event, EventBus
from repro.chain.gas import MIST_PER_SUI, GasCost, GasSchedule, mist_to_sui, sui_to_mist
from repro.chain.ledger import Account, Checkpoint, Ledger, Wallet
from repro.chain.merkle import MerkleProof, MerkleTree, verify_inclusion
from repro.chain.objects import DEFAULT_NUM_SHARDS, ObjectStore, StoredObject, shard_of
from repro.chain.transaction import Transaction, TransactionReceipt

__all__ = [
    "Account",
    "BlockBuilder",
    "Checkpoint",
    "DEFAULT_NUM_SHARDS",
    "Contract",
    "Event",
    "EventBus",
    "ExecutionContext",
    "GasCost",
    "GasSchedule",
    "KeyPair",
    "Ledger",
    "MerkleProof",
    "MerkleTree",
    "MIST_PER_SUI",
    "ObjectStore",
    "PendingBlock",
    "StoredObject",
    "Transaction",
    "TransactionReceipt",
    "Wallet",
    "ed25519_batch_verify",
    "entry",
    "mist_to_sui",
    "sha256",
    "shard_of",
    "sui_to_mist",
    "verify_inclusion",
    "verify_signature",
]
