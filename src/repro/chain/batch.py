"""Batched transaction application: the block builder (DESIGN.md §11).

Serial ledgers seal one checkpoint — and recompute the folded shard state
root — per transaction. At fleet scale that interleaved root recomputation
dominates: every purchase dirties two or three object shards and pays a
full shard-tree rebuild before the next transaction runs.

:class:`BlockBuilder` groups submissions into blocks per finality window
instead. Transactions still *execute* at submission time (optimistic
application: receipts are synchronous, events are delivered on the normal
finality schedule, cheap authentication — address binding, nonce, balance
— stays eager), but two expensive steps are deferred to the block seal:

- **signature verification** — the curve checks for every transaction in
  the block run through :func:`~repro.chain.crypto.ed25519_batch_verify`,
  which deduplicates signer keys so a block of transactions from a
  bounded wallet fleet pays one full-width scalar multiply per *unique*
  signer rather than per transaction;
- **checkpoint sealing** — one checkpoint with one Merkle root and one
  folded shard state root commits the whole block, so shard-disjoint
  transactions in the same window never trigger interleaved root
  recomputation.

Failure semantics are fail-stop: a forged signature surfaces as a
:class:`~repro.common.errors.VerificationError` at the seal (naming the
offending transactions), not at submission. Everything the marketplace
observes — receipts, escrow accounting, event order and timing — is
bit-identical to serial application; the property suite in
``tests/properties/test_prop_batch_equivalence.py`` pins that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chain.crypto import ed25519_batch_verify
from repro.common.errors import ChainError, VerificationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.ledger import Checkpoint, Ledger
    from repro.chain.transaction import Transaction


@dataclass
class PendingBlock:
    """Digests and deferred signature checks of one open block."""

    opened_at: float
    index: int
    digests: list[bytes] = field(default_factory=list)
    verify_items: list[tuple[bytes, bytes, bytes]] = field(default_factory=list)
    functions: list[str] = field(default_factory=list)


class BlockBuilder:
    """Owns a ledger's pending-block lifecycle.

    With ``window`` set and a scheduler available, the first submission
    after a seal opens a new block and schedules its flush one window
    later; the ledger routes every submission in between into the block.
    Without a window, :meth:`open` / :meth:`flush` drive block boundaries
    explicitly (how the equivalence property test batches arbitrarily).
    """

    def __init__(self, ledger: "Ledger") -> None:
        self.ledger = ledger
        self.block: PendingBlock | None = None
        self.blocks_sealed = 0

    @property
    def active(self) -> bool:
        return self.block is not None

    @property
    def pending(self) -> int:
        return len(self.block.digests) if self.block is not None else 0

    def open(self) -> PendingBlock:
        if self.block is not None:
            raise ChainError("a block is already open")
        self.block = PendingBlock(
            opened_at=self.ledger.now, index=len(self.ledger.checkpoints)
        )
        return self.block

    def note(self, tx: "Transaction", digest: bytes) -> None:
        """Record an executed transaction into the open block."""
        block = self.block
        if block is None:
            block = self.open()
            window = self.ledger.block_window
            if window is not None:
                self.ledger._scheduler(window, self._scheduled_flush)
        block.digests.append(digest)
        block.functions.append(tx.function)
        if self.ledger.require_signatures:
            block.verify_items.append(
                (tx.public_key, tx.signing_payload(), tx.signature)
            )

    def _scheduled_flush(self) -> None:
        if self.block is not None:
            self.flush()

    def flush(self, timestamp: float | None = None) -> "Checkpoint | None":
        """Seal the open block: batch-verify signatures, one checkpoint.

        Returns the sealed checkpoint, or None when no block is open.
        Raises :class:`VerificationError` (fail-stop) when any deferred
        signature check fails — the optimistic state mutations of the
        forged transaction have already been applied, so the run must not
        continue from them.
        """
        block = self.block
        if block is None:
            return None
        self.block = None
        ledger = self.ledger
        if block.verify_items:
            failed = ed25519_batch_verify(block.verify_items)
            if failed:
                culprits = ", ".join(
                    f"{block.functions[i]}#{block.index}+{i}" for i in failed
                )
                raise VerificationError(
                    f"block {block.index} contains forged signatures: {culprits}"
                )
        if timestamp is None:
            timestamp = ledger.now + ledger.finality_latency
        checkpoint = ledger._seal_checkpoint(block.digests, timestamp)
        self.blocks_sealed += 1
        obs = ledger.obs
        if obs is not None:
            obs.metrics.counter("ledger_blocks_total").inc()
            obs.metrics.histogram("ledger_batch_size").observe(len(block.digests))
            # Deterministic by construction: simulated time from the first
            # submission of the block to its seal (never wall clock), so
            # same-seed runs export identical histograms.
            obs.metrics.histogram("ledger_apply_seconds").observe(
                max(ledger.now - block.opened_at, 0.0)
            )
        return checkpoint
