"""Smart-contract runtime.

A contract is a Python class with a ``state`` dict and entry functions
registered via the :func:`entry` decorator. Entry functions receive an
:class:`ExecutionContext` that mediates everything with on-chain effects —
object creation, token transfers, event emission — so the ledger can
meter storage, roll back on revert, and keep execution deterministic.

``ctx.abort(reason)`` (or raising :class:`ContractRevert`) undoes every
state change of the call, like Move's ``abort``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import ChainError, ContractRevert
from repro.common.ids import ObjectId, new_object_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.ledger import Ledger
    from repro.chain.objects import ObjectStore


def entry(function: Callable) -> Callable:
    """Mark a contract method as an externally callable entry function."""
    function.__contract_entry__ = True
    return function


class ExecutionContext:
    """Per-call capabilities handed to an entry function."""

    def __init__(
        self,
        *,
        ledger: "Ledger",
        contract: "Contract",
        sender: str,
        value: int,
        time: float,
        tx_digest: bytes,
    ) -> None:
        self.ledger = ledger
        self.contract = contract
        self.sender = sender
        self.value = value  # tokens attached to the call, already escrowed
        self.time = time
        self.tx_digest = tx_digest
        self.stored_bytes = 0
        self.stored_objects = 0
        self.created_objects: list[ObjectId] = []
        self.pending_events: list[tuple[str, dict[str, Any]]] = []
        self._object_counter = 0

    # -------------------------------------------------------------- state

    @property
    def objects(self) -> "ObjectStore":
        return self.ledger.objects

    def new_object_id(self) -> ObjectId:
        self._object_counter += 1
        return new_object_id(self.tx_digest, self._object_counter)

    def create_object(self, kind: str, data: dict, *, owner: str | None = None) -> ObjectId:
        """Create an on-chain object; storage is charged to this tx."""
        object_id = self.new_object_id()
        obj = self.ledger.objects.create(
            object_id, kind, owner or self.sender, data, self.tx_digest
        )
        self.stored_bytes += obj.size_bytes
        self.stored_objects += 1
        self.created_objects.append(object_id)
        return object_id

    def update_object(self, object_id: ObjectId, data: dict) -> None:
        """Rewrite an object; growth is charged, shrinkage is not refunded
        until the object is freed."""
        old_size, new_size = self.ledger.objects.update(object_id, data)
        if new_size > old_size:
            self.stored_bytes += new_size - old_size

    def free_object(self, object_id: ObjectId) -> None:
        """Free an object; the storage rebate is paid to the sender from
        the ledger's storage fund."""
        obj = self.ledger.objects.free(object_id)
        rebate = self.ledger.gas_schedule.rebate_object_overhead
        rebate += obj.size_bytes * self.ledger.gas_schedule.rebate_per_byte
        self.ledger.pay_rebate(self.sender, rebate)

    # ------------------------------------------------------------- tokens

    def transfer_from_contract(self, to_address: str, amount: int) -> None:
        """Pay out of the contract's escrow balance (e.g. to an executor)."""
        self.ledger.contract_pay_out(self.contract.name, to_address, amount)

    def burn_from_contract(self, amount: int) -> None:
        """Destroy tokens held by the contract (slashing, DESIGN.md §13).

        Burned tokens move into the ledger's ``tokens_slashed`` sink — no
        account is credited, so slashing cannot be farmed by a malicious
        auditor."""
        self.ledger.contract_burn(self.contract.name, amount)

    # ------------------------------------------------------------- events

    def emit(self, name: str, **attributes: Any) -> None:
        """Queue an event; delivered only if the call succeeds."""
        self.pending_events.append((name, attributes))

    # -------------------------------------------------------------- abort

    def abort(self, reason: str) -> None:
        raise ContractRevert(reason)

    def require(self, condition: bool, reason: str) -> None:
        if not condition:
            raise ContractRevert(reason)


class Contract:
    """Base class for contracts. Subclasses set ``name`` and ``state``."""

    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            raise ChainError("contract must define a name")
        self.state: dict[str, Any] = {}

    def entry_functions(self) -> dict[str, Callable]:
        # dir()+getattr per dispatch is measurable at fleet scale; the
        # entry set is fixed per instance, so scan once and cache.
        cached = self.__dict__.get("_entry_cache")
        if cached is not None:
            return cached
        functions = {}
        for attr_name in dir(self):
            attr = getattr(self, attr_name)
            if callable(attr) and getattr(attr, "__contract_entry__", False):
                functions[attr_name] = attr
        self._entry_cache = functions
        return functions

    def call(self, ctx: ExecutionContext, function: str, args: tuple) -> Any:
        functions = self.entry_functions()
        if function not in functions:
            raise ContractRevert(f"no entry function {function!r}")
        return functions[function](ctx, *args)

    def snapshot(self) -> dict:
        return copy.deepcopy(self.state)

    def restore(self, snapshot: dict) -> None:
        self.state = snapshot

    # Journal protocol (DESIGN.md §11): a contract that tracks its own
    # undo log — recording (map, key, old value) per mutation instead of
    # deep-copying its whole state around every call — opts in by
    # returning True from :meth:`journal_begin`. The ledger then skips the
    # O(state) snapshot and calls :meth:`journal_rollback` on revert or
    # :meth:`journal_commit` on success. Contracts that mutate nested
    # structures in place must NOT opt in; the snapshot fallback remains
    # the default and the correctness oracle.

    def journal_begin(self) -> bool:
        """Start a per-call undo log; return False to use snapshots."""
        return False

    def journal_rollback(self) -> None:  # pragma: no cover - opt-in only
        raise ChainError(f"contract {self.name!r} has no journal to roll back")

    def journal_commit(self) -> None:  # pragma: no cover - opt-in only
        raise ChainError(f"contract {self.name!r} has no journal to commit")

    def state_payload(self) -> Any:
        """Deterministic, canonically encodable view of the state."""
        return self.state
