"""Cryptographic primitives for the ledger.

Implements Ed25519 (RFC 8032) in pure Python with extended homogeneous
coordinates — no inversions on the hot path — plus a windowed base-point
table, making sign/verify fast enough for simulation workloads while being
real public-key cryptography: executors certify results with keys whose
public halves live on-chain, and any third party can check them.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.common.errors import VerificationError

# ---------------------------------------------------------------- ed25519

_Q = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _Q - 2, _Q)) % _Q
_I = pow(2, (_Q - 1) // 4, _Q)

Point = tuple[int, int, int, int]  # extended homogeneous (X, Y, Z, T)

_IDENTITY: Point = (0, 1, 1, 0)


def _point_add(p: Point, q: Point) -> Point:
    # add-2008-hwcd-3 for twisted Edwards curves with a = -1.
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = ((y1 - x1) * (y2 - x2)) % _Q
    b = ((y1 + x1) * (y2 + x2)) % _Q
    c = (2 * t1 * t2 * _D) % _Q
    d = (2 * z1 * z2) % _Q
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return ((e * f) % _Q, (g * h) % _Q, (f * g) % _Q, (e * h) % _Q)


def _point_double(p: Point) -> Point:
    x1, y1, z1, _ = p
    a = (x1 * x1) % _Q
    b = (y1 * y1) % _Q
    c = (2 * z1 * z1) % _Q
    h = (a + b) % _Q
    e = (h - (x1 + y1) * (x1 + y1)) % _Q
    g = (a - b) % _Q
    f = (c + g) % _Q
    return ((e * f) % _Q, (g * h) % _Q, (f * g) % _Q, (e * h) % _Q)


def _scalar_mult(p: Point, e: int) -> Point:
    result = _IDENTITY
    addend = p
    while e:
        if e & 1:
            result = _point_add(result, addend)
        addend = _point_double(addend)
        e >>= 1
    return result


# Precomputed points in "Niels" form: (y-x, y+x, 2*d*x*y) of the *affine*
# point. A mixed addition against such an entry (madd-2008-hwcd-3 with
# Z2 = 1) costs 7 field multiplications instead of the 9 a generic
# extended-extended addition pays — a ~20% saving that applies to every
# table-lookup addition in the comb and signer tables below.
Niels = tuple[int, int, int]


def _mixed_add(p: Point, n: Niels) -> Point:
    x1, y1, z1, t1 = p
    ymx, ypx, td2 = n
    a = ((y1 - x1) * ymx) % _Q
    b = ((y1 + x1) * ypx) % _Q
    c = (t1 * td2) % _Q
    d = 2 * z1
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return ((e * f) % _Q, (g * h) % _Q, (f * g) % _Q, (e * h) % _Q)


def _batch_invert(values: list[int]) -> list[int]:
    """Montgomery's trick: n inversions for one exponentiation."""
    prefix: list[int] = []
    acc = 1
    for value in values:
        acc = acc * value % _Q
        prefix.append(acc)
    inverse = pow(acc, -1, _Q)
    out = [0] * len(values)
    for index in range(len(values) - 1, 0, -1):
        out[index] = prefix[index - 1] * inverse % _Q
        inverse = inverse * values[index] % _Q
    out[0] = inverse
    return out


def _to_niels(points: list[Point]) -> list[Niels]:
    """Convert extended points to Niels form with one shared inversion."""
    inverses = _batch_invert([p[2] for p in points])
    out: list[Niels] = []
    for (x, y, _z, _t), zinv in zip(points, inverses):
        ax = x * zinv % _Q
        ay = y * zinv % _Q
        out.append(((ay - ax) % _Q, (ay + ax) % _Q, 2 * _D * ax * ay % _Q))
    return out


def _inv(value: int) -> int:
    """Modular inverse via C-level extended GCD — ~18x the Fermat pow."""
    try:
        return pow(value, -1, _Q)
    except ValueError:
        raise VerificationError("field element is not invertible") from None


def _recover_x(y: int, sign: int) -> int:
    xx = (y * y - 1) * _inv(_D * y * y + 1) % _Q
    x = pow(xx, (_Q + 3) // 8, _Q)
    if (x * x - xx) % _Q != 0:
        x = (x * _I) % _Q
    if (x * x - xx) % _Q != 0:
        raise VerificationError("invalid point encoding")
    if x & 1 != sign:
        x = _Q - x
    return x


_BY = (4 * pow(5, _Q - 2, _Q)) % _Q
_BX = _recover_x(_BY, 0)
_BASE: Point = (_BX, _BY, 1, (_BX * _BY) % _Q)

# Windowed table: _BASE_TABLE[i] = 2^i * B, for fast base-point multiplies.
_BASE_TABLE: list[Point] = []
_pt = _BASE
for _ in range(256):
    _BASE_TABLE.append(_pt)
    _pt = _point_double(_pt)

# Fixed-base comb: _BASE_COMB[i][d] = d * 2^(8i) * B for d in 1..255, so a
# base-point multiply is ~31 additions (one table lookup per radix-256
# digit) instead of ~127 — the base multiply sits on every sign AND every
# verify, so this one table speeds the whole chain. Entries are stored in
# Niels form so each lookup addition is a 7-mult mixed add. Built lazily:
# ~8k point additions plus one batched inversion (~100 ms) on the first
# signature, then amortized across the millions of multiplies a fleet run
# performs.
_BASE_COMB: list[list[Niels]] = []

#: Niels identity — never looked up (zero digits are skipped), placeholder
#: keeps table indices aligned with digit values.
_N_IDENTITY: Niels = (1, 1, 0)


def _build_base_comb() -> None:
    for i in range(32):
        window: list[Point] = []
        step = _BASE_TABLE[8 * i]
        accumulator = step
        for _ in range(255):
            window.append(accumulator)
            accumulator = _point_add(accumulator, step)
        _BASE_COMB.append([_N_IDENTITY] + _to_niels(window))


def _base_mult(e: int) -> Point:
    if not _BASE_COMB:
        _build_base_comb()
    result = _IDENTITY
    index = 0
    while e:
        digit = e & 255
        if digit:
            result = _mixed_add(result, _BASE_COMB[index][digit])
        e >>= 8
        index += 1
    return result


def _encode_point(p: Point) -> bytes:
    x, y, z, _ = p
    zinv = _inv(z)
    x = (x * zinv) % _Q
    y = (y * zinv) % _Q
    return ((y | ((x & 1) << 255))).to_bytes(32, "little")


def _decode_point(data: bytes) -> Point:
    if len(data) != 32:
        raise VerificationError("point encoding must be 32 bytes")
    value = int.from_bytes(data, "little")
    y = value & ((1 << 255) - 1)
    sign = value >> 255
    if y >= _Q:
        raise VerificationError("point y out of range")
    x = _recover_x(y, sign)
    return (x, y, 1, (x * y) % _Q)


def _sha512_int(*parts: bytes) -> int:
    hasher = hashlib.sha512()
    for part in parts:
        hasher.update(part)
    return int.from_bytes(hasher.digest(), "little")


def _clamp(scalar_bytes: bytes) -> int:
    a = int.from_bytes(scalar_bytes, "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a


# Expanded-key cache: sha512(seed) expansion and the derived public key
# are fixed per seed, yet the textbook sign path recomputes them — one
# extra sha512 plus a full base-point multiply per signature. Simulation
# fleets sign with a bounded set of keys, so a keyed cache amortizes the
# expansion to once per key. Bounded to stay safe under key churn.
_EXPANDED_KEYS: dict[bytes, tuple[int, bytes, bytes]] = {}
_EXPANDED_KEYS_MAX = 8192


def _expand_seed(seed: bytes) -> tuple[int, bytes, bytes]:
    expanded = _EXPANDED_KEYS.get(seed)
    if expanded is None:
        digest = hashlib.sha512(seed).digest()
        a = _clamp(digest[:32])
        prefix = digest[32:]
        public = _encode_point(_base_mult(a))
        if len(_EXPANDED_KEYS) >= _EXPANDED_KEYS_MAX:
            _EXPANDED_KEYS.clear()
        _EXPANDED_KEYS[seed] = expanded = (a, prefix, public)
    return expanded


# Decoded public keys: point decoding costs a field exponentiation, and
# verify paths see the same handful of signer keys over and over.
_DECODED_PUBLIC: dict[bytes, Point] = {}
_DECODED_PUBLIC_MAX = 8192


#: wNAF window widths: items (per-signature R points, 64-bit coefficients)
#: get small throwaway tables; signers (full-width scalars, cached tables)
#: get wide ones. Odd-multiple table size is 2**(width - 2) entries.
_ITEM_WNAF_WIDTH = 4
_SIGNER_WNAF_WIDTH = 7


def _odd_table(point: Point, count: int) -> list[Point]:
    """``[P, 3P, 5P, ...]`` — the first ``count`` odd multiples."""
    double = _point_double(point)
    table = [point]
    for _ in range(count - 1):
        table.append(_point_add(table[-1], double))
    return table


def _wnaf(scalar: int, width: int) -> list[int]:
    """Signed digits of ``scalar``, LSB first: each is zero or odd with
    ``|digit| < 2**(width-1)``, and any ``width`` consecutive digits hold
    at most one nonzero — fewer table additions than fixed windows, and
    negative digits are free because point negation is."""
    digits = []
    full = 1 << width
    half = full >> 1
    mask = full - 1
    while scalar:
        if scalar & 1:
            digit = scalar & mask
            if digit >= half:
                digit -= full
            scalar -= digit
            digits.append(digit)
        else:
            digits.append(0)
        scalar >>= 1
    return digits


# Odd-multiple wNAF tables per signer key, in Niels form: fleets verify
# thousands of signatures from a bounded wallet set, so the 32-addition
# table build (plus one batched inversion) amortizes to nothing while
# every multi-scalar digit becomes one 7-mult mixed addition.
_SIGNER_TABLES: dict[bytes, list[Niels]] = {}
_SIGNER_TABLES_MAX = 8192


def _signer_table(public: bytes) -> list[Niels]:
    table = _SIGNER_TABLES.get(public)
    if table is None:
        extended = _odd_table(
            _decode_public(public), 1 << (_SIGNER_WNAF_WIDTH - 2)
        )
        table = _to_niels(extended)
        if len(_SIGNER_TABLES) >= _SIGNER_TABLES_MAX:
            _SIGNER_TABLES.clear()
        _SIGNER_TABLES[public] = table
    return table


def _multi_scalar_mult(
    pairs: list[tuple[int, list[Point]]],
    niels_pairs: list[tuple[int, list[Niels]]] = (),
) -> Point:
    """``sum scalar_i * P_i`` with one shared doubling chain.

    Interleaved wNAF: every scalar is recoded into signed odd digits, the
    nonzero digits are bucketed by bit position, and one accumulator walks
    the positions top-down — a single doubling per bit (paid once for the
    whole sum) plus one table addition per nonzero digit. ``pairs`` holds
    (scalar, odd-multiple table) in extended coordinates (ephemeral
    tables, e.g. per-signature R points, where an affine conversion would
    cost more than it saves) using width-4 digits (~1 addition per 5
    bits); ``niels_pairs`` holds cached Niels-form signer tables using
    width-7 digits (~1 mixed addition per 8 bits of a full-width scalar).
    Negative digits cost nothing extra: negating an Edwards point just
    negates x and t (or swaps the Niels sums).
    """
    ext_at: dict[int, list[Point]] = {}
    niels_at: dict[int, list[Niels]] = {}
    top = -1
    for scalar, table in pairs:
        for pos, digit in enumerate(_wnaf(scalar, _ITEM_WNAF_WIDTH)):
            if digit:
                if digit > 0:
                    entry = table[digit >> 1]
                else:
                    x, y, z, t = table[(-digit) >> 1]
                    entry = (_Q - x, y, z, _Q - t)
                ext_at.setdefault(pos, []).append(entry)
                if pos > top:
                    top = pos
    for scalar, table in niels_pairs:
        for pos, digit in enumerate(_wnaf(scalar, _SIGNER_WNAF_WIDTH)):
            if digit:
                if digit > 0:
                    nentry = table[digit >> 1]
                else:
                    ymx, ypx, td2 = table[(-digit) >> 1]
                    nentry = (ypx, ymx, _Q - td2)
                niels_at.setdefault(pos, []).append(nentry)
                if pos > top:
                    top = pos
    result = _IDENTITY
    for pos in range(top, -1, -1):
        if result is not _IDENTITY:
            result = _point_double(result)
        entries = ext_at.get(pos)
        if entries:
            for entry in entries:
                result = _point_add(result, entry)
        nentries = niels_at.get(pos)
        if nentries:
            for nentry in nentries:
                result = _mixed_add(result, nentry)
    return result


def _decode_public(public: bytes) -> Point:
    point = _DECODED_PUBLIC.get(public)
    if point is None:
        point = _decode_point(public)
        if len(_DECODED_PUBLIC) >= _DECODED_PUBLIC_MAX:
            _DECODED_PUBLIC.clear()
        _DECODED_PUBLIC[public] = point
    return point


def ed25519_public_key(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte seed."""
    if len(seed) != 32:
        raise VerificationError("seed must be 32 bytes")
    return _expand_seed(seed)[2]


def ed25519_sign(seed: bytes, message: bytes) -> bytes:
    """Produce a 64-byte RFC 8032 signature."""
    a, prefix, public = _expand_seed(seed)
    r = _sha512_int(prefix, message) % _L
    r_point = _encode_point(_base_mult(r))
    k = _sha512_int(r_point, public, message) % _L
    s = (r + k * a) % _L
    return r_point + s.to_bytes(32, "little")


def ed25519_verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check a signature; returns False rather than raising on mismatch."""
    if len(signature) != 64 or len(public) != 32:
        return False
    try:
        a_point = _decode_public(public)
        r_point = _decode_point(signature[:32])
    except VerificationError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = _sha512_int(signature[:32], public, message) % _L
    left = _base_mult(s)
    right = _point_add(r_point, _scalar_mult(a_point, k))
    # Compare projective points: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
    x1, y1, z1, _ = left
    x2, y2, z2, _ = right
    return (x1 * z2 - x2 * z1) % _Q == 0 and (y1 * z2 - y2 * z1) % _Q == 0


def ed25519_batch_verify(
    items: list[tuple[bytes, bytes, bytes]],
) -> list[int]:
    """Verify many ``(public, message, signature)`` triples at once.

    Returns the indices of invalid items (empty list = all valid).

    Uses the standard random-linear-combination check: with per-item
    64-bit coefficients ``z_i`` derived deterministically from the batch,

        [sum z_i * s_i] B  ==  sum z_i * R_i  +  sum_j [sum z_i * k_i] A_j

    where the right-hand inner sums are grouped per distinct signer key
    ``A_j``. The whole right-hand side is evaluated as one multi-scalar
    multiplication with a shared doubling chain (:func:`_multi_scalar_mult`)
    over cached per-signer window tables, so the cost per item collapses to
    a handful of point additions (the 64-bit ``z_i`` digits) plus one
    full-width digit walk per *unique* signer and a single comb-table
    base-point multiply per batch — the amortization that makes
    block-level signature checking cheap when many transactions share
    wallets. Falls back to individual verification to identify the
    culprits when the combined equation fails.
    """
    if not items:
        return []
    if len(items) == 1:
        public, message, signature = items[0]
        return [] if ed25519_verify(public, message, signature) else [0]

    decoded: list[tuple[Point, Point, int, int] | None] = []
    failed: list[int] = []
    hasher = hashlib.sha512()
    for index, (public, message, signature) in enumerate(items):
        hasher.update(public)
        hasher.update(hashlib.sha256(message).digest())
        hasher.update(signature)
        if len(signature) != 64 or len(public) != 32:
            decoded.append(None)
            continue
        s = int.from_bytes(signature[32:], "little")
        if s >= _L:
            decoded.append(None)
            continue
        try:
            a_point = _decode_public(public)
            r_point = _decode_point(signature[:32])
        except VerificationError:
            decoded.append(None)
            continue
        k = _sha512_int(signature[:32], public, message) % _L
        decoded.append((a_point, r_point, s, k))
    seed = hasher.digest()

    coefficients: list[int] = []
    for index in range(len(items)):
        z_bytes = hashlib.sha512(seed + index.to_bytes(8, "big")).digest()
        coefficients.append(1 + (int.from_bytes(z_bytes[:8], "little") & (2**63 - 1)))

    s_total = 0
    per_signer: dict[bytes, int] = {}
    pairs: list[tuple[int, list[Point]]] = []
    usable = []
    for index, entry in enumerate(decoded):
        if entry is None:
            failed.append(index)
            continue
        usable.append(index)
        _a_point, r_point, s, k = entry
        z = coefficients[index]
        s_total = (s_total + z * s) % _L
        pairs.append((z, _odd_table(r_point, 1 << (_ITEM_WNAF_WIDTH - 2))))
        public = items[index][0]
        per_signer[public] = (per_signer.get(public, 0) + z * k) % _L
    if not usable:
        return failed
    niels_pairs = [
        (scalar, _signer_table(public))
        for public, scalar in per_signer.items()
    ]
    right = _multi_scalar_mult(pairs, niels_pairs)
    left = _base_mult(s_total)
    x1, y1, z1, _ = left
    x2, y2, z2, _ = right
    if (x1 * z2 - x2 * z1) % _Q == 0 and (y1 * z2 - y2 * z1) % _Q == 0:
        return failed

    # The combined equation failed: at least one usable item is forged.
    for index in usable:
        public, message, signature = items[index]
        if not ed25519_verify(public, message, signature):
            failed.append(index)
    return sorted(failed)


# ------------------------------------------------------------- key pairs


@dataclass(frozen=True)
class KeyPair:
    """An Ed25519 key pair. ``address`` is sha256(public)[:16] hex."""

    seed: bytes
    public: bytes

    @classmethod
    def generate(cls) -> "KeyPair":
        seed = secrets.token_bytes(32)
        return cls(seed, ed25519_public_key(seed))

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        return cls(seed, ed25519_public_key(seed))

    @classmethod
    def deterministic(cls, label: str) -> "KeyPair":
        """A reproducible key pair for simulations (NOT for secrets)."""
        return cls.from_seed(hashlib.sha256(label.encode("utf-8")).digest())

    @property
    def address(self) -> str:
        return hashlib.sha256(self.public).hexdigest()[:32]

    def sign(self, message: bytes) -> bytes:
        return ed25519_sign(self.seed, message)

    def verify_own(self, message: bytes, signature: bytes) -> bool:
        return ed25519_verify(self.public, message, signature)


def verify_signature(public: bytes, message: bytes, signature: bytes) -> bool:
    """Module-level verify, for callers that only hold the public key."""
    return ed25519_verify(public, message, signature)


def sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()
