"""Cryptographic primitives for the ledger.

Implements Ed25519 (RFC 8032) in pure Python with extended homogeneous
coordinates — no inversions on the hot path — plus a windowed base-point
table, making sign/verify fast enough for simulation workloads while being
real public-key cryptography: executors certify results with keys whose
public halves live on-chain, and any third party can check them.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.common.errors import VerificationError

# ---------------------------------------------------------------- ed25519

_Q = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _Q - 2, _Q)) % _Q
_I = pow(2, (_Q - 1) // 4, _Q)

Point = tuple[int, int, int, int]  # extended homogeneous (X, Y, Z, T)

_IDENTITY: Point = (0, 1, 1, 0)


def _point_add(p: Point, q: Point) -> Point:
    # add-2008-hwcd-3 for twisted Edwards curves with a = -1.
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = ((y1 - x1) * (y2 - x2)) % _Q
    b = ((y1 + x1) * (y2 + x2)) % _Q
    c = (2 * t1 * t2 * _D) % _Q
    d = (2 * z1 * z2) % _Q
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return ((e * f) % _Q, (g * h) % _Q, (f * g) % _Q, (e * h) % _Q)


def _point_double(p: Point) -> Point:
    x1, y1, z1, _ = p
    a = (x1 * x1) % _Q
    b = (y1 * y1) % _Q
    c = (2 * z1 * z1) % _Q
    h = (a + b) % _Q
    e = (h - (x1 + y1) * (x1 + y1)) % _Q
    g = (a - b) % _Q
    f = (c + g) % _Q
    return ((e * f) % _Q, (g * h) % _Q, (f * g) % _Q, (e * h) % _Q)


def _scalar_mult(p: Point, e: int) -> Point:
    result = _IDENTITY
    addend = p
    while e:
        if e & 1:
            result = _point_add(result, addend)
        addend = _point_double(addend)
        e >>= 1
    return result


def _recover_x(y: int, sign: int) -> int:
    xx = (y * y - 1) * pow(_D * y * y + 1, _Q - 2, _Q) % _Q
    x = pow(xx, (_Q + 3) // 8, _Q)
    if (x * x - xx) % _Q != 0:
        x = (x * _I) % _Q
    if (x * x - xx) % _Q != 0:
        raise VerificationError("invalid point encoding")
    if x & 1 != sign:
        x = _Q - x
    return x


_BY = (4 * pow(5, _Q - 2, _Q)) % _Q
_BX = _recover_x(_BY, 0)
_BASE: Point = (_BX, _BY, 1, (_BX * _BY) % _Q)

# Windowed table: _BASE_TABLE[i] = 2^i * B, for fast base-point multiplies.
_BASE_TABLE: list[Point] = []
_pt = _BASE
for _ in range(256):
    _BASE_TABLE.append(_pt)
    _pt = _point_double(_pt)


def _base_mult(e: int) -> Point:
    result = _IDENTITY
    index = 0
    while e:
        if e & 1:
            result = _point_add(result, _BASE_TABLE[index])
        e >>= 1
        index += 1
    return result


def _encode_point(p: Point) -> bytes:
    x, y, z, _ = p
    zinv = pow(z, _Q - 2, _Q)
    x = (x * zinv) % _Q
    y = (y * zinv) % _Q
    return ((y | ((x & 1) << 255))).to_bytes(32, "little")


def _decode_point(data: bytes) -> Point:
    if len(data) != 32:
        raise VerificationError("point encoding must be 32 bytes")
    value = int.from_bytes(data, "little")
    y = value & ((1 << 255) - 1)
    sign = value >> 255
    if y >= _Q:
        raise VerificationError("point y out of range")
    x = _recover_x(y, sign)
    return (x, y, 1, (x * y) % _Q)


def _sha512_int(*parts: bytes) -> int:
    hasher = hashlib.sha512()
    for part in parts:
        hasher.update(part)
    return int.from_bytes(hasher.digest(), "little")


def _clamp(scalar_bytes: bytes) -> int:
    a = int.from_bytes(scalar_bytes, "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a


def ed25519_public_key(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte seed."""
    if len(seed) != 32:
        raise VerificationError("seed must be 32 bytes")
    digest = hashlib.sha512(seed).digest()
    a = _clamp(digest[:32])
    return _encode_point(_base_mult(a))


def ed25519_sign(seed: bytes, message: bytes) -> bytes:
    """Produce a 64-byte RFC 8032 signature."""
    digest = hashlib.sha512(seed).digest()
    a = _clamp(digest[:32])
    prefix = digest[32:]
    public = _encode_point(_base_mult(a))
    r = _sha512_int(prefix, message) % _L
    r_point = _encode_point(_base_mult(r))
    k = _sha512_int(r_point, public, message) % _L
    s = (r + k * a) % _L
    return r_point + s.to_bytes(32, "little")


def ed25519_verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check a signature; returns False rather than raising on mismatch."""
    if len(signature) != 64 or len(public) != 32:
        return False
    try:
        a_point = _decode_point(public)
        r_point = _decode_point(signature[:32])
    except VerificationError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = _sha512_int(signature[:32], public, message) % _L
    left = _base_mult(s)
    right = _point_add(r_point, _scalar_mult(a_point, k))
    # Compare projective points: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
    x1, y1, z1, _ = left
    x2, y2, z2, _ = right
    return (x1 * z2 - x2 * z1) % _Q == 0 and (y1 * z2 - y2 * z1) % _Q == 0


# ------------------------------------------------------------- key pairs


@dataclass(frozen=True)
class KeyPair:
    """An Ed25519 key pair. ``address`` is sha256(public)[:16] hex."""

    seed: bytes
    public: bytes

    @classmethod
    def generate(cls) -> "KeyPair":
        seed = secrets.token_bytes(32)
        return cls(seed, ed25519_public_key(seed))

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        return cls(seed, ed25519_public_key(seed))

    @classmethod
    def deterministic(cls, label: str) -> "KeyPair":
        """A reproducible key pair for simulations (NOT for secrets)."""
        return cls.from_seed(hashlib.sha256(label.encode("utf-8")).digest())

    @property
    def address(self) -> str:
        return hashlib.sha256(self.public).hexdigest()[:32]

    def sign(self, message: bytes) -> bytes:
        return ed25519_sign(self.seed, message)

    def verify_own(self, message: bytes, signature: bytes) -> bool:
        return ed25519_verify(self.public, message, signature)


def verify_signature(public: bytes, message: bytes, signature: bytes) -> bool:
    """Module-level verify, for callers that only hold the public key."""
    return ed25519_verify(public, message, signature)


def sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()
