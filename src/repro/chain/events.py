"""Contract events and subscriptions.

The marketplace notifies executors of purchased slots and initiators of
ready results through events (§IV-C). Subscribers filter on the event name
and on attribute equality — e.g. an executor subscribes to
``ApplicationSubmitted`` events whose ``(asn, interface)`` match its own.

Dispatch is indexed (DESIGN.md §11): each subscription is filed under its
most selective equality filter, so publishing costs the size of the few
matching buckets instead of a scan over every live subscription — the
difference between O(sessions) and O(1) per event once a load generator
holds tens of thousands of ``ResultReady`` subscriptions at once.
Candidates are dispatched in subscription order (a per-subscription
sequence number), so the indexed bus is observably identical to the old
linear scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Event:
    """One emitted event."""

    name: str
    attributes: tuple[tuple[str, Any], ...]
    tx_digest: bytes
    sequence: int
    emitted_at: float

    def get(self, key: str, default: Any = None) -> Any:
        for attr_key, value in self.attributes:
            if attr_key == key:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.attributes)


EventCallback = Callable[[Event], None]

#: Filter keys preferred as index keys, most selective first. Session
#: subscriptions filter on ``application_id`` (unique per purchase), which
#: beats vantage-point keys like ``asn`` shared by every session there.
_PREFERRED_INDEX_KEYS = ("application_id",)


@dataclass
class _Subscription:
    name: str
    filters: dict[str, Any]
    callback: EventCallback
    active: bool = True
    seq: int = 0
    index_key: tuple | None = field(default=None, repr=False)

    def matches(self, event: Event) -> bool:
        if not self.active or event.name != self.name:
            return False
        attributes = event.as_dict()
        return all(attributes.get(k) == v for k, v in self.filters.items())


class EventBus:
    """Dispatches events to matching subscribers; keeps full history."""

    def __init__(self) -> None:
        self._next_seq = 0
        # Subscriptions filed under (name, filter_key, filter_value) when
        # they carry an indexable equality filter, else under name alone.
        self._filtered: dict[tuple[str, str, Any], list[_Subscription]] = {}
        self._unfiltered: dict[str, list[_Subscription]] = {}
        self.history: list[Event] = []

    @staticmethod
    def _pick_index_field(filters: dict[str, Any]) -> tuple[str, Any] | None:
        """The most selective hashable, non-None equality filter, if any."""
        for key in _PREFERRED_INDEX_KEYS:
            value = filters.get(key)
            if value is not None:
                try:
                    hash(value)
                except TypeError:
                    continue
                return key, value
        for key in sorted(filters):
            value = filters[key]
            if value is None:
                continue
            try:
                hash(value)
            except TypeError:
                continue
            return key, value
        return None

    def subscribe(
        self, name: str, callback: EventCallback, **filters: Any
    ) -> _Subscription:
        subscription = _Subscription(name, filters, callback, seq=self._next_seq)
        self._next_seq += 1
        picked = self._pick_index_field(filters)
        if picked is None:
            subscription.index_key = (name,)
            self._unfiltered.setdefault(name, []).append(subscription)
        else:
            key, value = picked
            subscription.index_key = (name, key, value)
            self._filtered.setdefault((name, key, value), []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: _Subscription) -> None:
        subscription.active = False
        key = subscription.index_key
        if key is None:
            return
        subscription.index_key = None
        if len(key) == 1:
            bucket = self._unfiltered.get(key[0])
            registry, registry_key = self._unfiltered, key[0]
        else:
            bucket = self._filtered.get(key)
            registry, registry_key = self._filtered, key
        if bucket is not None:
            try:
                bucket.remove(subscription)
            except ValueError:
                pass
            if not bucket:
                del registry[registry_key]

    def publish(self, event: Event) -> int:
        """Record and dispatch; returns the number of subscribers hit."""
        self.history.append(event)
        candidates = list(self._unfiltered.get(event.name, ()))
        for attr_key, value in event.attributes:
            try:
                bucket = self._filtered.get((event.name, attr_key, value))
            except TypeError:  # unhashable attribute value
                continue
            if bucket:
                candidates.extend(bucket)
        # Buckets are disjoint (each subscription is filed once), so this
        # sort alone restores global subscription order — dispatch is
        # byte-for-byte the order the old linear scan produced.
        candidates.sort(key=lambda subscription: subscription.seq)
        hits = 0
        for subscription in candidates:
            if subscription.matches(event):
                subscription.callback(event)
                hits += 1
        return hits

    def subscription_count(self) -> int:
        """Live subscriptions (diagnostics for stall reports)."""
        return sum(len(b) for b in self._unfiltered.values()) + sum(
            len(b) for b in self._filtered.values()
        )

    def events_named(self, name: str) -> list[Event]:
        return [event for event in self.history if event.name == name]
