"""Contract events and subscriptions.

The marketplace notifies executors of purchased slots and initiators of
ready results through events (§IV-C). Subscribers filter on the event name
and on attribute equality — e.g. an executor subscribes to
``ApplicationSubmitted`` events whose ``(asn, interface)`` match its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Event:
    """One emitted event."""

    name: str
    attributes: tuple[tuple[str, Any], ...]
    tx_digest: bytes
    sequence: int
    emitted_at: float

    def get(self, key: str, default: Any = None) -> Any:
        for attr_key, value in self.attributes:
            if attr_key == key:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.attributes)


EventCallback = Callable[[Event], None]


@dataclass
class _Subscription:
    name: str
    filters: dict[str, Any]
    callback: EventCallback
    active: bool = True

    def matches(self, event: Event) -> bool:
        if not self.active or event.name != self.name:
            return False
        attributes = event.as_dict()
        return all(attributes.get(k) == v for k, v in self.filters.items())


class EventBus:
    """Dispatches events to matching subscribers; keeps full history."""

    def __init__(self) -> None:
        self._subscriptions: list[_Subscription] = []
        self.history: list[Event] = []

    def subscribe(
        self, name: str, callback: EventCallback, **filters: Any
    ) -> _Subscription:
        subscription = _Subscription(name, filters, callback)
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: _Subscription) -> None:
        subscription.active = False

    def publish(self, event: Event) -> int:
        """Record and dispatch; returns the number of subscribers hit."""
        self.history.append(event)
        hits = 0
        for subscription in list(self._subscriptions):
            if subscription.matches(event):
                subscription.callback(event)
                hits += 1
        return hits

    def events_named(self, name: str) -> list[Event]:
        return [event for event in self.history if event.name == name]
