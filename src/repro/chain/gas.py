"""Gas and storage pricing, calibrated to the paper's Table II.

The paper prices Debuglet application submission on the Sui main net:
a size-independent computation component plus a storage component linear
in the object's size, with most of the storage fee rebated when the object
is later freed. Fitting Table II (sizes in kB = 1000 bytes)::

    total(B)  = 0.01369 + 2.1584e-5 * B     [SUI]
    rebate(B) = 0.00430 + 2.0266e-5 * B     [SUI]

All amounts are integers in MIST (1 SUI = 1e9 MIST) to keep ledger
arithmetic exact.
"""

from __future__ import annotations

from dataclasses import dataclass

MIST_PER_SUI = 1_000_000_000


def sui_to_mist(sui: float) -> int:
    return round(sui * MIST_PER_SUI)


def mist_to_sui(mist: int) -> float:
    return mist / MIST_PER_SUI


@dataclass(frozen=True)
class GasCost:
    """Cost breakdown of one transaction, in MIST."""

    computation: int
    storage: int
    rebate: int  # refunded when the stored objects are freed

    @property
    def total(self) -> int:
        return self.computation + self.storage

    @property
    def net_after_rebate(self) -> int:
        return self.total - self.rebate

    def total_sui(self) -> float:
        return mist_to_sui(self.total)

    def rebate_sui(self) -> float:
        return mist_to_sui(self.rebate)


@dataclass(frozen=True)
class GasSchedule:
    """Pricing parameters (MIST). Defaults reproduce Table II."""

    computation_fee: int = 9_390_000  # 0.00939 SUI per transaction
    object_overhead_fee: int = 4_300_000  # 0.00430 SUI per stored object
    per_byte_fee: int = 21_584  # 2.1584e-5 SUI per stored byte
    rebate_object_overhead: int = 4_300_000  # fully rebated on free
    rebate_per_byte: int = 20_266  # 2.0266e-5 SUI per byte rebated

    def price(self, *, stored_bytes: int = 0, stored_objects: int = 1) -> GasCost:
        """Cost of a transaction storing ``stored_objects`` objects whose
        payloads total ``stored_bytes`` bytes."""
        if stored_bytes < 0 or stored_objects < 0:
            raise ValueError("storage amounts must be non-negative")
        storage = (
            stored_objects * self.object_overhead_fee
            + stored_bytes * self.per_byte_fee
        )
        rebate = (
            stored_objects * self.rebate_object_overhead
            + stored_bytes * self.rebate_per_byte
        )
        return GasCost(computation=self.computation_fee, storage=storage, rebate=rebate)

    def price_reference_only(self) -> GasCost:
        """Cost when only a hash/link is stored on-chain (§V-B's
        optimization: ~1 cent regardless of application size)."""
        return self.price(stored_bytes=32 + 64, stored_objects=1)
