"""The ledger: accounts, checkpoints, contract execution, verifiability.

A deliberately compact stand-in for the Sui blockchain with the properties
Debuglet's control plane relies on (§IV-C, §V-B):

- **signed, replayable history** — every transaction is Ed25519-signed;
  :meth:`Ledger.verify_chain` re-checks signatures and the checkpoint hash
  chain, and :meth:`Ledger.replay` re-executes the whole history into a
  fresh ledger and compares state digests;
- **escrowed payment** — tokens attached to a call move into the
  contract's escrow and are paid out by contract code, so payment and
  result logging are enforced by code rather than trust;
- **fast finality** — a configurable sub-second finality latency models
  Sui's; receipts carry submitted/finalized times for the
  delay-to-measurement evaluation;
- **storage pricing** — gas follows :class:`~repro.chain.gas.GasSchedule`
  (Table II calibration), with rebates on object free.

Fleet-scale additions (DESIGN.md §11): object state lives in a sharded
store whose folded Merkle root is committed in every checkpoint; rollback
on revert uses per-transaction undo journals instead of O(state) deep
copies; and an optional *block mode* (``block_window``) groups
transactions into batched checkpoints with deferred, deduplicated
signature verification — observably identical to serial application.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.chain.batch import BlockBuilder
from repro.chain.contract import Contract, ExecutionContext
from repro.chain.crypto import KeyPair, ed25519_batch_verify
from repro.chain.events import Event, EventBus
from repro.chain.gas import GasCost, GasSchedule
from repro.chain.merkle import MerkleTree
from repro.chain.objects import DEFAULT_NUM_SHARDS, ObjectStore
from repro.chain.transaction import Transaction, TransactionReceipt
from repro.common.errors import (
    ChainError,
    ConfigurationError,
    ContractRevert,
    InsufficientTokens,
    VerificationError,
)
from repro.common.serialize import stable_hash


@dataclass
class Account:
    address: str
    balance: int = 0
    nonce: int = 0
    label: str = ""


@dataclass(frozen=True)
class Checkpoint:
    """One sealed block: Merkle commitments chained to the predecessor.

    ``merkle_root`` commits the block's transactions; ``state_root`` commits
    the post-block object state (folded shard roots). Serial ledgers seal
    one checkpoint per transaction; block mode seals one per window.
    """

    index: int
    previous_hash: bytes
    merkle_root: bytes
    timestamp: float
    tx_digests: tuple[bytes, ...]
    state_root: bytes = b""

    def hash(self) -> bytes:
        return hashlib.sha256(
            self.index.to_bytes(8, "big")
            + self.previous_hash
            + self.merkle_root
            + self.state_root
        ).digest()


_GENESIS_HASH = hashlib.sha256(b"debuglet-genesis").digest()


@dataclass
class _TxJournal:
    """Undo log for the token side of one call: first-touch old values."""

    balances: dict[str, int] = field(default_factory=dict)
    escrows: dict[str, int] = field(default_factory=dict)
    storage_fund: int | None = None
    slashed: int | None = None


class Ledger:
    """A single-authority, deterministic ledger with real verification."""

    def __init__(
        self,
        *,
        gas_schedule: GasSchedule | None = None,
        clock: Callable[[], float] | None = None,
        finality_latency: float = 0.4,
        scheduler: Callable[[float, Callable[[], None]], None] | None = None,
        require_signatures: bool = True,
        num_shards: int = DEFAULT_NUM_SHARDS,
        block_window: float | None = None,
    ) -> None:
        self.gas_schedule = gas_schedule or GasSchedule()
        self._clock = clock or (lambda: float(len(self._receipts)))
        self.finality_latency = finality_latency
        self._scheduler = scheduler
        self.require_signatures = require_signatures
        if block_window is not None:
            if block_window <= 0:
                raise ConfigurationError("block window must be positive")
            if scheduler is None:
                raise ConfigurationError(
                    "block_window needs a scheduler to drive block flushes"
                )
        self.block_window = block_window
        # Chaos / availability hooks (see repro.chaos). ``submit_gate`` may
        # raise :class:`LedgerUnavailable` to reject a submission before it
        # touches any state; ``event_delay`` returns extra seconds of event
        # delivery latency (on top of ``finality_latency``). Both are None
        # in normal operation and are never part of the replayable history:
        # a gated submission simply never happened.
        self.submit_gate: Callable[[Transaction, float], None] | None = None
        self.event_delay: Callable[[float], float] | None = None
        # Observability (repro.obs): wired by the testbed builders. Like
        # the chaos hooks, recording is never part of replayable history.
        self.obs = None

        self.accounts: dict[str, Account] = {}
        self.contracts: dict[str, Contract] = {}
        self.contract_balances: dict[str, int] = {}
        self.objects = ObjectStore(num_shards=num_shards)
        self.events = EventBus()

        self._transactions: list[Transaction] = []
        self._receipts: list[TransactionReceipt] = []
        self._receipt_index: dict[bytes, TransactionReceipt] = {}
        self.checkpoints: list[Checkpoint] = []
        self._block = BlockBuilder(self)
        self._genesis_grants: list[tuple[str, int]] = []
        # Token sinks: computation fees are burned; storage fees fund the
        # rebates paid when objects are freed (Sui's storage-fund model);
        # slashed stakes are burned into their own sink so conservation
        # (balances + escrow + gas + storage fund + slashed == genesis)
        # stays checkable after convictions (DESIGN.md §13).
        self.gas_burned = 0
        self.storage_fund = 0
        self.tokens_slashed = 0
        self._tx_journal: _TxJournal | None = None

    # ------------------------------------------------------------ wiring

    @property
    def now(self) -> float:
        return self._clock()

    def register_contract(self, contract: Contract) -> Contract:
        if contract.name in self.contracts:
            raise ChainError(f"contract {contract.name!r} already registered")
        self.contracts[contract.name] = contract
        self.contract_balances.setdefault(contract.name, 0)
        return contract

    def create_account(
        self, keypair: KeyPair, *, balance: int = 0, label: str = ""
    ) -> Account:
        address = keypair.address
        if address in self.accounts:
            raise ChainError(f"account {address} already exists")
        account = Account(address=address, balance=balance, label=label)
        self.accounts[address] = account
        if balance:
            self._genesis_grants.append((address, balance))
        return account

    def faucet(self, address: str, amount: int) -> None:
        """Out-of-band token grant (recorded for replay)."""
        if amount < 0:
            raise ChainError("faucet amount must be non-negative")
        self._account(address).balance += amount
        self._genesis_grants.append((address, amount))

    def _account(self, address: str) -> Account:
        account = self.accounts.get(address)
        if account is None:
            account = Account(address=address)
            self.accounts[address] = account
        return account

    def balance_of(self, address: str) -> int:
        return self._account(address).balance

    def next_nonce(self, address: str) -> int:
        return self._account(address).nonce

    # --------------------------------------------------- token mutations
    #
    # Every token mutation funnels through these helpers so the per-call
    # undo journal can record the first-touch old value. Outside a call
    # (journal is None) they are plain mutations.

    def _journal_balance(self, address: str) -> Account:
        account = self._account(address)
        journal = self._tx_journal
        if journal is not None and address not in journal.balances:
            journal.balances[address] = account.balance
        return account

    def _journal_escrow(self, contract_name: str) -> None:
        journal = self._tx_journal
        if journal is not None and contract_name not in journal.escrows:
            journal.escrows[contract_name] = self.contract_balances.get(
                contract_name, 0
            )

    def _journal_fund(self) -> None:
        journal = self._tx_journal
        if journal is not None and journal.storage_fund is None:
            journal.storage_fund = self.storage_fund

    def _journal_slashed(self) -> None:
        journal = self._tx_journal
        if journal is not None and journal.slashed is None:
            journal.slashed = self.tokens_slashed

    def _rollback_tx_journal(self) -> None:
        journal = self._tx_journal
        if journal is None:
            raise ChainError("no transaction journal to roll back")
        self._tx_journal = None
        for address, balance in journal.balances.items():
            # Accounts first seen during the failed call roll back to their
            # recorded old balance — zero, for accounts the call created.
            self.accounts[address].balance = balance
        for name, balance in journal.escrows.items():
            self.contract_balances[name] = balance
        if journal.storage_fund is not None:
            self.storage_fund = journal.storage_fund
        if journal.slashed is not None:
            self.tokens_slashed = journal.slashed

    def credit(self, address: str, amount: int) -> None:
        """Credit tokens out of thin air (genesis-style; avoid in contracts)."""
        if amount < 0:
            raise ChainError("credit must be non-negative")
        self._journal_balance(address).balance += amount

    def pay_rebate(self, address: str, amount: int) -> int:
        """Pay a storage rebate from the storage fund.

        Clamped to the fund balance so token conservation always holds;
        returns the amount actually paid.
        """
        if amount < 0:
            raise ChainError("rebate must be non-negative")
        self._journal_fund()
        paid = min(amount, self.storage_fund)
        self.storage_fund -= paid
        self._journal_balance(address).balance += paid
        return paid

    def contract_pay_out(self, contract_name: str, to_address: str, amount: int) -> None:
        """Move tokens from a contract's escrow to an account."""
        if amount < 0:
            raise ContractRevert("negative payout")
        balance = self.contract_balances.get(contract_name, 0)
        if balance < amount:
            raise ContractRevert(
                f"contract escrow {balance} cannot cover payout {amount}"
            )
        self._journal_escrow(contract_name)
        self.contract_balances[contract_name] = balance - amount
        self._journal_balance(to_address).balance += amount

    def contract_burn(self, contract_name: str, amount: int) -> None:
        """Burn tokens out of a contract's escrow (slashing, §13).

        The tokens leave circulation into the ``tokens_slashed`` sink —
        they are destroyed, not paid to the auditor, so a conviction never
        creates an incentive to frame honest executors. Journaled like
        every other token move, so a reverted slash burns nothing.
        """
        if amount < 0:
            raise ContractRevert("negative burn")
        balance = self.contract_balances.get(contract_name, 0)
        if balance < amount:
            raise ContractRevert(
                f"contract escrow {balance} cannot cover burn {amount}"
            )
        self._journal_escrow(contract_name)
        self._journal_slashed()
        self.contract_balances[contract_name] = balance - amount
        self.tokens_slashed += amount

    # --------------------------------------------------------- execution

    def submit(self, tx: Transaction) -> TransactionReceipt:
        """Execute ``tx`` and commit it to the chain.

        Serial mode seals one checkpoint per transaction. In block mode
        (``block_window`` set, or an explicit :meth:`begin_block`), the
        transaction still executes now — receipt, escrow accounting, and
        event schedule are identical — but its curve-level signature check
        and checkpoint seal are deferred to the block flush.

        Authentication errors and malformed calls raise; contract-level
        aborts produce a *reverted* receipt with all state rolled back
        (the computation fee is still charged, as on real chains).
        """
        obs = self.obs
        if self.submit_gate is not None:
            try:
                self.submit_gate(tx, self.now)
            except ChainError as exc:
                if obs is not None:
                    obs.metrics.counter(
                        "ledger_tx_total", status="gated", function=tx.function
                    ).inc()
                    obs.tracer.event(
                        "chain.tx_gated", component="chain",
                        function=tx.function, reason=str(exc),
                    )
                raise
        batched = self.block_window is not None or self._block.active
        if self.require_signatures:
            if batched:
                # Cheap half now; the curve check is batch-verified at the
                # block seal (fail-stop on forgery).
                tx.verify_address()
            else:
                tx.verify()
        sender = self._account(tx.sender)
        if tx.nonce != sender.nonce:
            raise ChainError(f"bad nonce {tx.nonce}, expected {sender.nonce}")
        contract = self.contracts.get(tx.contract)
        if contract is None:
            raise ChainError(f"unknown contract {tx.contract!r}")
        if tx.value < 0 or tx.gas_budget < 0:
            raise ChainError("value and gas budget must be non-negative")
        if sender.balance < tx.value + tx.gas_budget:
            raise InsufficientTokens(
                f"balance {sender.balance} cannot cover value {tx.value} "
                f"+ gas budget {tx.gas_budget}"
            )

        sender.nonce += 1
        digest = tx.digest()
        now = self.now

        # Open the undo journals, then escrow the attached value for the
        # duration of the call (journaled like any other token move).
        self._tx_journal = _TxJournal()
        self.objects.begin_journal()
        contract_journaled = contract.journal_begin()
        contract_snapshot = None if contract_journaled else contract.snapshot()

        self._journal_balance(tx.sender)
        self._journal_escrow(tx.contract)
        sender.balance -= tx.value
        self.contract_balances[tx.contract] += tx.value

        ctx = ExecutionContext(
            ledger=self,
            contract=contract,
            sender=tx.sender,
            value=tx.value,
            time=now,
            tx_digest=digest,
        )
        try:
            return_value = contract.call(ctx, tx.function, tx.args)
            gas = self.gas_schedule.price(
                stored_bytes=ctx.stored_bytes, stored_objects=ctx.stored_objects
            )
            if gas.total > tx.gas_budget:
                raise ContractRevert(
                    f"gas {gas.total} exceeds budget {tx.gas_budget}"
                )
            self.objects.commit_journal()
            if contract_journaled:
                contract.journal_commit()
            self._tx_journal = None
            status = "success"
        except ContractRevert as revert:
            self._rollback_call(contract, contract_journaled, contract_snapshot)
            # The attached value returned with the rollback; nonce stays.
            gas = GasCost(
                computation=self.gas_schedule.computation_fee, storage=0, rebate=0
            )
            status = f"reverted: {revert.reason}"
            return_value = None
            ctx.created_objects = []
            ctx.pending_events = []
        except BaseException:
            # Non-revert failures (bugs, chain errors from inside the call)
            # must not leave half-applied state or an open journal behind.
            self._rollback_call(contract, contract_journaled, contract_snapshot)
            raise

        fee = min(gas.total, tx.gas_budget, sender.balance)
        sender.balance -= fee
        computation_part = min(fee, gas.computation)
        self.gas_burned += computation_part
        self.storage_fund += fee - computation_part

        receipt = TransactionReceipt(
            digest=digest,
            status=status,
            gas=gas,
            return_value=return_value,
            created_objects=list(ctx.created_objects),
            events_emitted=len(ctx.pending_events),
            submitted_at=now,
            finalized_at=now + self.finality_latency,
            checkpoint=len(self.checkpoints),
        )
        self._transactions.append(tx)
        self._receipts.append(receipt)
        self._receipt_index[digest] = receipt
        if batched:
            self._block.note(tx, digest)
        else:
            self._seal_checkpoint([digest], receipt.finalized_at)
        if obs is not None:
            outcome = "success" if status == "success" else "reverted"
            obs.metrics.counter(
                "ledger_tx_total", status=outcome, function=tx.function
            ).inc()
            obs.metrics.counter("ledger_gas_fees_total").inc(fee)
            obs.metrics.gauge("ledger_escrow_locked").set(
                sum(self.contract_balances.values())
            )
            obs.tracer.event(
                "chain.tx", component="chain",
                corr=f"tx:{digest.hex()[:12]}",
                function=tx.function, status=outcome, value=tx.value,
                events=len(ctx.pending_events),
            )
        self._publish_events(ctx.pending_events, digest, receipt.finalized_at)
        return receipt

    def _rollback_call(
        self,
        contract: Contract,
        contract_journaled: bool,
        contract_snapshot: dict | None,
    ) -> None:
        """Undo every effect of the current call via the open journals."""
        if contract_journaled:
            contract.journal_rollback()
        else:
            contract.restore(contract_snapshot)
        self.objects.rollback_journal()
        self._rollback_tx_journal()

    # ------------------------------------------------------------ blocks

    def begin_block(self) -> None:
        """Open an explicit block: submissions batch until :meth:`flush_block`."""
        self._block.open()

    def flush_block(self, timestamp: float | None = None) -> Checkpoint | None:
        """Seal the pending block, if any; returns the new checkpoint."""
        return self._block.flush(timestamp)

    @property
    def block_active(self) -> bool:
        return self._block.active

    @property
    def pending_block_size(self) -> int:
        return self._block.pending

    def _seal_checkpoint(self, digests: list[bytes], timestamp: float) -> Checkpoint:
        previous = self.checkpoints[-1].hash() if self.checkpoints else _GENESIS_HASH
        checkpoint = Checkpoint(
            index=len(self.checkpoints),
            previous_hash=previous,
            merkle_root=MerkleTree(digests).root,
            timestamp=timestamp,
            tx_digests=tuple(digests),
            state_root=self.objects.state_root(),
        )
        self.checkpoints.append(checkpoint)
        return checkpoint

    def _publish_events(
        self, pending: list[tuple[str, dict]], tx_digest: bytes, finalized_at: float
    ) -> None:
        events = [
            Event(
                name=name,
                attributes=tuple(sorted(attributes.items())),
                tx_digest=tx_digest,
                sequence=index,
                emitted_at=finalized_at,
            )
            for index, (name, attributes) in enumerate(pending)
        ]

        def deliver() -> None:
            for event in events:
                self.events.publish(event)

        if self._scheduler is not None and events:
            delay = self.finality_latency
            if self.event_delay is not None:
                delay += max(0.0, self.event_delay(self.now))
            self._scheduler(delay, deliver)
        else:
            deliver()

    # ------------------------------------------------------ verification

    @property
    def transactions(self) -> list[Transaction]:
        return list(self._transactions)

    @property
    def receipts(self) -> list[TransactionReceipt]:
        return list(self._receipts)

    def receipt_for(self, digest: bytes) -> TransactionReceipt:
        receipt = self._receipt_index.get(digest)
        if receipt is None:
            raise ChainError("no receipt with that digest")
        return receipt

    def verify_chain(self) -> None:
        """Check every signature and the checkpoint hash chain.

        Works for serial (one tx per checkpoint) and batched histories
        alike; an open block is flushed first so the chain is complete.
        Raises :class:`VerificationError` on the first inconsistency.
        """
        self._block.flush()
        total = sum(len(cp.tx_digests) for cp in self.checkpoints)
        if total != len(self._transactions):
            raise VerificationError("checkpoint/transaction count mismatch")
        if self.require_signatures:
            for tx in self._transactions:
                tx.verify_address()
            failed = ed25519_batch_verify(
                [
                    (tx.public_key, tx.signing_payload(), tx.signature)
                    for tx in self._transactions
                ]
            )
            if failed:
                raise VerificationError(
                    f"invalid transaction signature at positions {failed}"
                )
        previous = _GENESIS_HASH
        position = 0
        for checkpoint in self.checkpoints:
            if checkpoint.previous_hash != previous:
                raise VerificationError(
                    f"checkpoint {checkpoint.index} breaks the hash chain"
                )
            digests = [
                tx.digest()
                for tx in self._transactions[
                    position : position + len(checkpoint.tx_digests)
                ]
            ]
            if tuple(digests) != checkpoint.tx_digests:
                raise VerificationError(
                    f"checkpoint {checkpoint.index} digests do not match its txs"
                )
            if checkpoint.merkle_root != MerkleTree(digests).root:
                raise VerificationError(
                    f"checkpoint {checkpoint.index} root does not match its txs"
                )
            for digest in digests:
                if self._receipts[position].digest != digest:
                    raise VerificationError("receipt digest mismatch")
                position += 1
            previous = checkpoint.hash()

    def state_digest(self) -> bytes:
        """A deterministic hash of balances, objects, and contract states."""
        payload = {
            "balances": {
                address: account.balance
                for address, account in sorted(self.accounts.items())
            },
            "nonces": {
                address: account.nonce
                for address, account in sorted(self.accounts.items())
            },
            "escrow": dict(sorted(self.contract_balances.items())),
            "gas_burned": self.gas_burned,
            "storage_fund": self.storage_fund,
            "slashed": self.tokens_slashed,
            "objects": self.objects.state_payload(),
            "contracts": {
                name: contract.state_payload()
                for name, contract in sorted(self.contracts.items())
            },
        }
        return stable_hash(payload)

    def replay(self, contract_factories: dict[str, Callable[[], Contract]]) -> "Ledger":
        """Re-execute history into a fresh ledger; verify state equality.

        Third-party verification (§IV-C): anyone holding the transaction
        log can rebuild the state and confirm the published results were
        produced by the recorded, signed transactions. Replay runs in
        serial mode even for batched histories: the state digest commits
        final state, not checkpoint grouping, so equality holds regardless
        of how the original run batched its blocks.
        """
        times = iter([receipt.submitted_at for receipt in self._receipts])
        replica = Ledger(
            gas_schedule=self.gas_schedule,
            clock=lambda: next(times),
            finality_latency=self.finality_latency,
            require_signatures=self.require_signatures,
            num_shards=self.objects.num_shards,
        )
        for name in self.contracts:
            factory = contract_factories.get(name)
            if factory is None:
                raise VerificationError(f"no factory to replay contract {name!r}")
            replica.register_contract(factory())
        for address, amount in self._genesis_grants:
            replica._account(address).balance += amount
            replica._genesis_grants.append((address, amount))
        for tx in self._transactions:
            replica.submit(tx)
        if replica.state_digest() != self.state_digest():
            raise VerificationError("replayed state digest differs")
        return replica


class Wallet:
    """Convenience: build, sign, and submit transactions for one key."""

    DEFAULT_GAS_BUDGET = 1_000_000_000  # 1 SUI

    def __init__(self, ledger: Ledger, keypair: KeyPair) -> None:
        self.ledger = ledger
        self.keypair = keypair

    @property
    def address(self) -> str:
        return self.keypair.address

    @property
    def balance(self) -> int:
        return self.ledger.balance_of(self.address)

    def call(
        self,
        contract: str,
        function: str,
        *args: Any,
        value: int = 0,
        gas_budget: int | None = None,
    ) -> TransactionReceipt:
        tx = Transaction(
            sender=self.address,
            contract=contract,
            function=function,
            args=tuple(args),
            nonce=self.ledger.next_nonce(self.address),
            gas_budget=self.DEFAULT_GAS_BUDGET if gas_budget is None else gas_budget,
            value=value,
        ).signed_by(self.keypair)
        return self.ledger.submit(tx)

    def must_call(self, contract: str, function: str, *args: Any, **kwargs: Any):
        """Like :meth:`call` but raises on revert; returns the receipt."""
        receipt = self.call(contract, function, *args, **kwargs)
        if not receipt.success:
            raise ChainError(f"{contract}.{function} failed: {receipt.status}")
        return receipt
