"""Merkle trees over transaction digests.

Each checkpoint (block) commits to its transactions with a Merkle root;
inclusion proofs let light verifiers confirm that a particular result
transaction is part of the canonical history without replaying the chain.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.errors import VerificationError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


@dataclass(frozen=True)
class MerkleProof:
    """An audit path: sibling hashes from leaf to root."""

    leaf_index: int
    siblings: tuple[tuple[str, bytes], ...]  # ("L"|"R", hash)


class MerkleTree:
    """A static Merkle tree over a list of leaves.

    Odd nodes are promoted (Bitcoin-style duplication is avoided to keep
    proofs unambiguous).
    """

    def __init__(self, leaves: list[bytes]) -> None:
        if not leaves:
            raise VerificationError("Merkle tree needs at least one leaf")
        self.leaves = [bytes(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = [[_hash_leaf(leaf) for leaf in self.leaves]]
        while len(self._levels[-1]) > 1:
            level = self._levels[-1]
            parent: list[bytes] = []
            for i in range(0, len(level) - 1, 2):
                parent.append(_hash_node(level[i], level[i + 1]))
            if len(level) % 2 == 1:
                parent.append(level[-1])  # promote the odd node
            self._levels.append(parent)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        if not 0 <= index < len(self.leaves):
            raise VerificationError(f"leaf index {index} out of range")
        siblings: list[tuple[str, bytes]] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                if position + 1 < len(level):
                    siblings.append(("R", level[position + 1]))
                # else: promoted node, no sibling at this level
            else:
                siblings.append(("L", level[position - 1]))
            position //= 2
        return MerkleProof(index, tuple(siblings))


def merkle_root_from_hashes(leaf_hashes: list[bytes]) -> bytes:
    """The Merkle root over already-hashed leaves, without level storage.

    Used on hot paths (per-shard state roots) where only the root is
    needed: same promotion rule as :class:`MerkleTree` applied to inputs
    that are already leaf hashes, skipping the per-level list retention
    that audit paths require.
    """
    if not leaf_hashes:
        raise VerificationError("Merkle root needs at least one leaf hash")
    level = leaf_hashes
    while len(level) > 1:
        parent = [
            _hash_node(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2 == 1:
            parent.append(level[-1])
        level = parent
    return level[0]


def hash_leaf(data: bytes) -> bytes:
    """The domain-separated leaf hash, for callers that pre-hash leaves."""
    return _hash_leaf(data)


def fold_roots(roots: list[bytes]) -> bytes:
    """Fold per-shard roots into one ledger state root (node-level fold)."""
    return merkle_root_from_hashes(list(roots))


def verify_inclusion(leaf: bytes, proof: MerkleProof, root: bytes) -> bool:
    """Check that ``leaf`` is included under ``root`` via ``proof``."""
    current = _hash_leaf(leaf)
    for side, sibling in proof.siblings:
        if side == "R":
            current = _hash_node(current, sibling)
        elif side == "L":
            current = _hash_node(sibling, current)
        else:
            return False
    return current == root
