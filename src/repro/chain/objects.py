"""The on-chain object store.

Sui-style: contracts create *objects* (applications, results, slot lists)
identified by :class:`~repro.common.ids.ObjectId`. Storage is priced by
encoded size; freeing an object earns the storage rebate (Table II).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ChainError
from repro.common.ids import ObjectId
from repro.common.serialize import canonical_encode


@dataclass
class StoredObject:
    """One object. ``data`` must be canonically encodable."""

    object_id: ObjectId
    kind: str
    owner: str
    data: dict[str, Any]
    created_tx: bytes
    size_bytes: int
    freed: bool = False

    def encoded_size(self) -> int:
        return self.size_bytes


class ObjectStore:
    """All live and freed objects, with deterministic deep snapshots."""

    def __init__(self) -> None:
        self._objects: dict[ObjectId, StoredObject] = {}

    def create(
        self, object_id: ObjectId, kind: str, owner: str, data: dict, created_tx: bytes
    ) -> StoredObject:
        if object_id in self._objects:
            raise ChainError(f"object {object_id} already exists")
        size = len(canonical_encode(data))
        obj = StoredObject(object_id, kind, owner, data, created_tx, size)
        self._objects[object_id] = obj
        return obj

    def get(self, object_id: ObjectId) -> StoredObject:
        obj = self._objects.get(object_id)
        if obj is None:
            raise ChainError(f"no such object {object_id}")
        if obj.freed:
            raise ChainError(f"object {object_id} has been freed")
        return obj

    def exists(self, object_id: ObjectId) -> bool:
        obj = self._objects.get(object_id)
        return obj is not None and not obj.freed

    def update(self, object_id: ObjectId, data: dict) -> tuple[int, int]:
        """Replace an object's data; returns (old_size, new_size)."""
        obj = self.get(object_id)
        old_size = obj.size_bytes
        obj.data = data
        obj.size_bytes = len(canonical_encode(data))
        return old_size, obj.size_bytes

    def free(self, object_id: ObjectId) -> StoredObject:
        obj = self.get(object_id)
        obj.freed = True
        return obj

    def by_kind(self, kind: str) -> list[StoredObject]:
        return [
            obj
            for obj in self._objects.values()
            if obj.kind == kind and not obj.freed
        ]

    def __len__(self) -> int:
        return sum(1 for obj in self._objects.values() if not obj.freed)

    def snapshot(self) -> dict:
        return copy.deepcopy(self._objects)

    def restore(self, snapshot: dict) -> None:
        self._objects = snapshot

    def state_payload(self) -> list:
        """Deterministic encoding of live objects for state digests."""
        payload = []
        for object_id in sorted(self._objects):
            obj = self._objects[object_id]
            payload.append(
                [
                    object_id.hex(),
                    obj.kind,
                    obj.owner,
                    obj.data,
                    obj.freed,
                ]
            )
        return payload
