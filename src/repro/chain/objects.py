"""The on-chain object store, sharded by object-id hash.

Sui-style: contracts create *objects* (applications, results, slot lists)
identified by :class:`~repro.common.ids.ObjectId`. Storage is priced by
encoded size; freeing an object earns the storage rebate (Table II).

Fleet-scale layout (DESIGN.md §11): objects are partitioned into
``num_shards`` shards by a stable hash of their id, each shard keeps a
cached Merkle root over per-object leaf hashes, and the ledger-wide
:meth:`ObjectStore.state_root` folds the shard roots together. Mutations
mark only their shard dirty, so sealing a checkpoint re-hashes the touched
shards instead of scanning one flat map — and a batched block that touches
several shards pays each rebuild once at seal time, not once per
transaction.

Rollback is journal-based: inside :meth:`begin_journal` /
:meth:`rollback_journal`, every mutation appends an undo record, so a
reverted contract call restores exactly the objects it touched — replacing
the O(state) deep-copy snapshot the serial ledger used to take per
transaction. :meth:`snapshot` / :meth:`restore` survive as the
compatibility fallback (and as the oracle the journal is property-tested
against).
"""

from __future__ import annotations

import copy
import hashlib
from bisect import insort
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Any

from repro.common.errors import ChainError
from repro.common.ids import ObjectId
from repro.common.serialize import canonical_encode
from repro.chain.merkle import hash_leaf, merkle_root_from_hashes

DEFAULT_NUM_SHARDS = 16

#: Root of a shard with no objects (domain-separated constant).
EMPTY_SHARD_ROOT = hashlib.sha256(b"debuglet-empty-shard").digest()


def shard_of(object_id: ObjectId, num_shards: int) -> int:
    """The stable shard index of ``object_id`` (id-hash partitioning)."""
    return int.from_bytes(object_id.value[:8], "big") % num_shards


#: Sort key for Merkle-leaf ordering — compares the raw bytes directly
#: (same order as ObjectId's dataclass ordering, without the per-compare
#: dataclass `__lt__` overhead).
_id_key = attrgetter("value")


@dataclass
class StoredObject:
    """One object. ``data`` must be canonically encodable."""

    object_id: ObjectId
    kind: str
    owner: str
    data: dict[str, Any]
    created_tx: bytes
    size_bytes: int
    freed: bool = False
    # Cached leaf hash for the shard Merkle tree; invalidated on mutation.
    leaf_hash: bytes | None = field(default=None, repr=False, compare=False)

    def encoded_size(self) -> int:
        return self.size_bytes

    def compute_leaf_hash(self) -> bytes:
        if self.leaf_hash is None:
            self.leaf_hash = hash_leaf(
                canonical_encode(
                    [self.object_id.hex(), self.kind, self.owner, self.data, self.freed]
                )
            )
        return self.leaf_hash


class ObjectStore:
    """All live and freed objects, sharded, with journaled rollback."""

    def __init__(self, num_shards: int = DEFAULT_NUM_SHARDS) -> None:
        if num_shards < 1:
            raise ChainError("object store needs at least one shard")
        self.num_shards = num_shards
        self._shards: list[dict[ObjectId, StoredObject]] = [
            {} for _ in range(num_shards)
        ]
        self._roots: list[bytes] = [EMPTY_SHARD_ROOT] * num_shards
        self._dirty: set[int] = set()
        # Cached sorted id list per shard (None = rebuild on next use):
        # shard membership only grows via create, so the sort that orders
        # Merkle leaves is maintained by insort instead of re-sorted from
        # scratch on every checkpoint seal.
        self._sorted_ids: list[list[ObjectId] | None] = [None] * num_shards
        self._live = 0
        self._journal: list[tuple] | None = None

    # ------------------------------------------------------------ shards

    def shard_of(self, object_id: ObjectId) -> int:
        return shard_of(object_id, self.num_shards)

    def _shard(self, object_id: ObjectId) -> dict[ObjectId, StoredObject]:
        return self._shards[shard_of(object_id, self.num_shards)]

    def _touch(self, object_id: ObjectId) -> None:
        self._dirty.add(shard_of(object_id, self.num_shards))

    def _shard_ids(self, index: int) -> list[ObjectId]:
        ids = self._sorted_ids[index]
        if ids is None:
            ids = sorted(self._shards[index], key=_id_key)
            self._sorted_ids[index] = ids
        return ids

    def shard_roots(self) -> list[bytes]:
        """Per-shard Merkle roots, rebuilding only the dirty shards."""
        for index in self._dirty:
            shard = self._shards[index]
            if not shard:
                self._roots[index] = EMPTY_SHARD_ROOT
                continue
            leaves = [
                shard[object_id].compute_leaf_hash()
                for object_id in self._shard_ids(index)
            ]
            self._roots[index] = merkle_root_from_hashes(leaves)
        self._dirty.clear()
        return list(self._roots)

    def state_root(self) -> bytes:
        """The ledger-wide object-state commitment: folded shard roots."""
        return merkle_root_from_hashes(self.shard_roots())

    # ----------------------------------------------------------- journal

    def begin_journal(self) -> None:
        """Start recording undo entries for the next mutations."""
        if self._journal is not None:
            raise ChainError("object journal already open")
        self._journal = []

    def commit_journal(self) -> None:
        self._journal = None

    def rollback_journal(self) -> None:
        """Undo every mutation since :meth:`begin_journal`, in reverse."""
        journal = self._journal
        if journal is None:
            raise ChainError("no object journal to roll back")
        self._journal = None
        for entry in reversed(journal):
            op = entry[0]
            if op == "create":
                _, object_id = entry
                del self._shard(object_id)[object_id]
                # Rolled-back creates shrink shard membership — the rare
                # case; drop the sorted-id cache rather than splice it.
                self._sorted_ids[shard_of(object_id, self.num_shards)] = None
                self._live -= 1
            elif op == "update":
                _, object_id, old_data, old_size = entry
                obj = self._shard(object_id)[object_id]
                obj.data = old_data
                obj.size_bytes = old_size
                obj.leaf_hash = None
            else:  # "free"
                _, object_id = entry
                obj = self._shard(object_id)[object_id]
                obj.freed = False
                obj.leaf_hash = None
                self._live += 1
            self._touch(object_id)

    # --------------------------------------------------------- mutations

    def create(
        self, object_id: ObjectId, kind: str, owner: str, data: dict, created_tx: bytes
    ) -> StoredObject:
        shard = self._shard(object_id)
        if object_id in shard:
            raise ChainError(f"object {object_id} already exists")
        size = len(canonical_encode(data))
        obj = StoredObject(object_id, kind, owner, data, created_tx, size)
        shard[object_id] = obj
        ids = self._sorted_ids[shard_of(object_id, self.num_shards)]
        if ids is not None:
            insort(ids, object_id, key=_id_key)
        self._live += 1
        self._touch(object_id)
        if self._journal is not None:
            self._journal.append(("create", object_id))
        return obj

    def get(self, object_id: ObjectId) -> StoredObject:
        obj = self._shard(object_id).get(object_id)
        if obj is None:
            raise ChainError(f"no such object {object_id}")
        if obj.freed:
            raise ChainError(f"object {object_id} has been freed")
        return obj

    def exists(self, object_id: ObjectId) -> bool:
        obj = self._shard(object_id).get(object_id)
        return obj is not None and not obj.freed

    def update(self, object_id: ObjectId, data: dict) -> tuple[int, int]:
        """Replace an object's data; returns (old_size, new_size)."""
        obj = self.get(object_id)
        old_size = obj.size_bytes
        if self._journal is not None:
            self._journal.append(("update", object_id, obj.data, old_size))
        obj.data = data
        obj.size_bytes = len(canonical_encode(data))
        obj.leaf_hash = None
        self._touch(object_id)
        return old_size, obj.size_bytes

    def free(self, object_id: ObjectId) -> StoredObject:
        obj = self.get(object_id)
        if self._journal is not None:
            self._journal.append(("free", object_id))
        obj.freed = True
        obj.leaf_hash = None
        self._live -= 1
        self._touch(object_id)
        return obj

    # ------------------------------------------------------------- reads

    def by_kind(self, kind: str) -> list[StoredObject]:
        return [
            obj
            for shard in self._shards
            for obj in shard.values()
            if obj.kind == kind and not obj.freed
        ]

    def __len__(self) -> int:
        return self._live

    # -------------------------------------------- snapshots (fallback)

    def snapshot(self) -> list[dict]:
        """Deep snapshot of every shard — the journal-free fallback."""
        return copy.deepcopy(self._shards)

    def restore(self, snapshot: list[dict]) -> None:
        self._shards = snapshot
        self._live = sum(
            1 for shard in self._shards for obj in shard.values() if not obj.freed
        )
        self._dirty = set(range(self.num_shards))
        self._sorted_ids = [None] * self.num_shards

    def state_payload(self) -> list:
        """Deterministic encoding of live objects for state digests."""
        payload = []
        all_ids = sorted(
            object_id for shard in self._shards for object_id in shard
        )
        for object_id in all_ids:
            obj = self._shard(object_id)[object_id]
            payload.append(
                [
                    object_id.hex(),
                    obj.kind,
                    obj.owner,
                    obj.data,
                    obj.freed,
                ]
            )
        return payload
