"""Signed transactions and their execution receipts."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any

from repro.chain.crypto import KeyPair, verify_signature
from repro.chain.gas import GasCost
from repro.common.errors import VerificationError
from repro.common.ids import ObjectId
from repro.common.serialize import canonical_encode


@dataclass(frozen=True)
class Transaction:
    """A call to one smart-contract entry function.

    ``value`` is the amount of tokens (MIST) moved from the sender into
    the contract's escrow along with the call — how initiators embed
    payment with a PurchaseSlot. The signature covers every field except
    itself; the sender address must equal ``sha256(public_key)[:32hex]``.
    """

    sender: str
    contract: str
    function: str
    args: tuple
    nonce: int
    gas_budget: int
    value: int = 0
    public_key: bytes = b""
    signature: bytes = b""

    def signing_payload(self) -> bytes:
        # Transactions are immutable, so the canonical encoding is computed
        # once and cached. The cache slots live outside the dataclass fields
        # (object.__setattr__ bypasses the frozen guard) and are never
        # copied by dataclasses.replace(), so signed_by() always re-encodes.
        cached = self.__dict__.get("_payload_cache")
        if cached is None:
            cached = canonical_encode(
                {
                    "sender": self.sender,
                    "contract": self.contract,
                    "function": self.function,
                    "args": list(self.args),
                    "nonce": self.nonce,
                    "gas_budget": self.gas_budget,
                    "value": self.value,
                    "public_key": self.public_key,
                }
            )
            object.__setattr__(self, "_payload_cache", cached)
        return cached

    def digest(self) -> bytes:
        cached = self.__dict__.get("_digest_cache")
        if cached is None:
            cached = hashlib.sha256(self.signing_payload() + self.signature).digest()
            object.__setattr__(self, "_digest_cache", cached)
        return cached

    def signed_by(self, keypair: KeyPair) -> "Transaction":
        """A signed copy of this transaction."""
        unsigned = replace(self, public_key=keypair.public, signature=b"")
        payload = unsigned.signing_payload()
        signed = replace(unsigned, signature=keypair.sign(payload))
        # The payload excludes the signature, so the signed copy's encoding
        # is identical — carry the cache forward instead of re-encoding at
        # submission time.
        object.__setattr__(signed, "_payload_cache", payload)
        return signed

    def verify_address(self) -> None:
        """The cheap half of verification: sender address binds the key.

        Block-mode ledgers run this eagerly at submission and defer the
        curve check to the block seal's batch verification.
        """
        expected = hashlib.sha256(self.public_key).hexdigest()[:32]
        if expected != self.sender:
            raise VerificationError("sender address does not match public key")

    def verify(self) -> None:
        """Raise :class:`VerificationError` on any authentication failure."""
        self.verify_address()
        if not verify_signature(self.public_key, self.signing_payload(), self.signature):
            raise VerificationError("invalid transaction signature")


@dataclass
class TransactionReceipt:
    """Execution outcome, finality time, and cost of one transaction."""

    digest: bytes
    status: str  # "success" or "reverted: <reason>"
    gas: GasCost
    return_value: Any = None
    created_objects: list[ObjectId] = field(default_factory=list)
    events_emitted: int = 0
    submitted_at: float = 0.0
    finalized_at: float = 0.0
    checkpoint: int = -1

    @property
    def success(self) -> bool:
        return self.status == "success"

    @property
    def finality_latency(self) -> float:
        return self.finalized_at - self.submitted_at
