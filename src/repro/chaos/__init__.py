"""Control-plane chaos harness.

Deterministic, seeded fault injection for the *marketplace* layer —
the control-plane counterpart of :mod:`repro.netsim.faults`, which
perturbs the data plane. See :class:`repro.chaos.injector.ChaosInjector`.
"""

from repro.chaos.injector import ChaosFault, ChaosInjector, ChaosKind

__all__ = ["ChaosFault", "ChaosInjector", "ChaosKind"]
