"""Control-plane fault injection with recorded ground truth.

The data-plane twin of this module is :mod:`repro.netsim.faults`, which
perturbs channels; :class:`ChaosInjector` instead perturbs the *actors*
of the marketplace protocol (§IV): executors crash and restart
mid-execution, executor agents drop or delay their result publications,
the ledger refuses transactions or finalizes them late, and advertised
slots are withdrawn before their windows open.

Design rules (mirroring :class:`~repro.netsim.faults.FaultInjector`):

* every injection is **scheduled on the simulator clock** — nothing
  happens at injection time unless it is due now, so the same script
  replayed against the same seed produces the same event interleaving;
* every injection returns a :class:`ChaosFault` recording its ground
  truth (kind, target, window, magnitude) for later scoring;
* every fault is **revocable** and revocation is idempotent: pending
  actions are cancelled, installed gates become inert, and a crash whose
  restart has not yet happened is restarted;
* chaos never forges ledger history: transaction failures raise
  :class:`~repro.common.errors.LedgerUnavailable` *before* the ledger
  mutates any state, so ``verify_chain()`` and ``replay()`` are
  oblivious to the fault.

The ``seed`` feeds a dedicated RNG stream used by :meth:`random_fault`,
so randomized chaos schedules are replayable bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ChainError, LedgerUnavailable
from repro.common.rng import derive_rng


class ChaosKind(enum.Enum):
    EXECUTOR_CRASH = "executor-crash"
    PUBLICATION_DROP = "publication-drop"
    PUBLICATION_DELAY = "publication-delay"
    TX_FAILURE = "tx-failure"
    FINALITY_DELAY = "finality-delay"
    SLOT_EXPIRY = "slot-expiry"
    BYZANTINE = "byzantine"
    HEARTBEAT_LOSS = "heartbeat-loss"


#: Kinds :meth:`ChaosInjector.random_fault` draws from. BYZANTINE is
#: excluded: it is an *attack* needing a strategy, not an infra fault.
#: HEARTBEAT_LOSS is excluded because it targets a fleet *member*, not a
#: marketplace agent — and keeping the draw space fixed preserves seeded
#: chaos schedules.
_RANDOM_KINDS = (
    ChaosKind.EXECUTOR_CRASH,
    ChaosKind.PUBLICATION_DROP,
    ChaosKind.PUBLICATION_DELAY,
    ChaosKind.TX_FAILURE,
    ChaosKind.FINALITY_DELAY,
    ChaosKind.SLOT_EXPIRY,
)


@dataclass
class ChaosFault:
    """A fault that was injected, with enough detail to score recoveries."""

    kind: ChaosKind
    target: str
    start: float
    end: float
    magnitude: float = 0.0
    sender: str | None = None
    revoked: bool = False
    fired: bool = False
    _handles: list = field(default_factory=list, repr=False)
    _on_revoke: list[Callable[[], None]] = field(default_factory=list, repr=False)

    def active(self, now: float) -> bool:
        return not self.revoked and self.start <= now < self.end

    def revoke(self) -> None:
        """Undo the fault's effects. Idempotent (same contract as
        :meth:`repro.netsim.faults.InjectedFault.revoke`)."""
        if self.revoked:
            return
        self.revoked = True
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        for hook in self._on_revoke:
            hook()
        self._on_revoke.clear()


class ChaosInjector:
    """Injects control-plane faults into a marketplace testbed.

    All methods take simulated-time windows; the caller typically builds
    one injector per scenario and feeds it the testbed's simulator and
    ledger. ``revoke_all()`` restores every actor to health.
    """

    def __init__(self, simulator, ledger=None, *, seed: int = 0) -> None:
        self.simulator = simulator
        self.ledger = ledger
        self.rng = derive_rng(seed, "chaos")
        self.injected: list[ChaosFault] = []
        # Ledger-level faults share one installed gate each; the gate
        # consults these lists so revocation is just list state.
        self._tx_faults: list[ChaosFault] = []
        self._finality_faults: list[ChaosFault] = []
        self._gates_installed = False

    def _register(self, fault: ChaosFault) -> ChaosFault:
        self.injected.append(fault)
        obs = self.simulator.obs
        if obs is not None:
            corr = f"fault:{len(self.injected)}"
            fault._corr = corr
            obs.metrics.counter(
                "chaos_faults_injected_total", kind=fault.kind.value
            ).inc()
            obs.tracer.event(
                "chaos.injected",
                component="chaos",
                corr=corr,
                kind=fault.kind.value,
                target=fault.target,
                start=fault.start,
                end=-1.0 if fault.end == float("inf") else fault.end,
                magnitude=fault.magnitude,
            )
            if fault.start < fault.end < float("inf"):
                # The fault's active window as a retroactively-known span:
                # the ground truth a recovery scorer lines results against.
                obs.tracer.span_at(
                    f"chaos.{fault.kind.value}",
                    fault.start,
                    fault.end,
                    component="chaos",
                    corr=corr,
                    target=fault.target,
                    magnitude=fault.magnitude,
                )

            def note_revoked() -> None:
                obs.metrics.counter(
                    "chaos_faults_revoked_total", kind=fault.kind.value
                ).inc()
                obs.tracer.event(
                    "chaos.revoked",
                    component="chaos",
                    corr=corr,
                    kind=fault.kind.value,
                    target=fault.target,
                )

            fault._on_revoke.append(note_revoked)
        return fault

    def _schedule(self, fault: ChaosFault, at: float, action, *args) -> None:
        def run() -> None:
            if fault.revoked:
                return
            fault.fired = True
            obs = self.simulator.obs
            if obs is not None:
                obs.metrics.counter(
                    "chaos_faults_fired_total", kind=fault.kind.value
                ).inc()
                obs.tracer.event(
                    "chaos.fired",
                    component="chaos",
                    corr=getattr(fault, "_corr", ""),
                    kind=fault.kind.value,
                    target=fault.target,
                )
            action(*args)

        fault._handles.append(self.simulator.schedule_at(at, run))

    # --------------------------------------------------------- executors

    def crash_executor(
        self, executor, *, at: float, restart_at: float | None = None
    ) -> ChaosFault:
        """Crash ``executor`` at ``at``: every scheduled, queued, and live
        execution is silently killed (no certificate, no publication) and
        new submissions are refused. With ``restart_at`` the executor
        comes back (empty) at that time; revoking the fault restarts it
        immediately if it is still down."""
        fault = ChaosFault(
            kind=ChaosKind.EXECUTOR_CRASH,
            target=f"executor {executor.asn}:{executor.interface}",
            start=at,
            end=restart_at if restart_at is not None else float("inf"),
        )
        self._schedule(fault, at, executor.crash)
        if restart_at is not None:
            self._schedule(fault, restart_at, executor.restart)

        def undo() -> None:
            if executor.crashed:
                executor.restart()

        fault._on_revoke.append(undo)
        return self._register(fault)

    def corrupt_executor(
        self,
        executor,
        *,
        strategy,
        start: float,
        end: float = float("inf"),
        seed: int = 0,
        **params,
    ) -> ChaosFault:
        """Turn ``executor`` Byzantine inside [start, end) (DESIGN.md §13).

        ``strategy`` is a :class:`~repro.core.byzantine.ByzantineStrategy`
        (or its string value); ``params`` are forwarded to
        :class:`~repro.core.byzantine.ByzantineCorruptor` (e.g.
        ``forge_log=True``). The corruptor is installed immediately but
        self-gates on its window, so corruption composes with every other
        fault — a Byzantine executor can also crash, lose publications,
        or face a ledger outage. The installed corruptor (and its attack
        ground truth) is exposed as ``fault.corruptor``; revoking the
        fault restores honesty.
        """
        from repro.core.byzantine import ByzantineCorruptor, ByzantineStrategy

        if isinstance(strategy, str):
            strategy = ByzantineStrategy(strategy)
        corruptor = ByzantineCorruptor(
            strategy=strategy, seed=seed, start=start, end=end, **params
        )
        fault = ChaosFault(
            kind=ChaosKind.BYZANTINE,
            target=f"executor {executor.asn}:{executor.interface}",
            start=start,
            end=end,
            magnitude=1.0,
        )
        fault.corruptor = corruptor
        executor.corruptor = corruptor

        def undo() -> None:
            if executor.corruptor is corruptor:
                executor.corruptor = None

        fault._on_revoke.append(undo)
        return self._register(fault)

    def expire_slots_early(self, agent, *, at: float) -> ChaosFault:
        """At ``at`` the executor behind ``agent`` reneges: all its still
        advertised slots are withdrawn on-chain and executions that have
        not started yet are cancelled. Running executions finish."""
        fault = ChaosFault(
            kind=ChaosKind.SLOT_EXPIRY,
            target=f"executor {agent.asn}:{agent.interface}",
            start=at,
            end=at,
        )

        def expire() -> None:
            try:
                agent.withdraw_slots()
            except ChainError:
                pass  # nothing advertised (all sold) — still cancel below
            agent.executor.cancel_pending(reason="slot expired early")

        self._schedule(fault, at, expire)
        return self._register(fault)

    # -------------------------------------------------------- heartbeats

    def _install_heartbeat_gate(self, member) -> list[ChaosFault]:
        """One gate per fleet member, consulting a shared fault list —
        the publication-gate pattern applied to liveness."""
        faults = getattr(member, "_chaos_heartbeat_faults", None)
        if faults is not None:
            return faults
        faults = []
        member._chaos_heartbeat_faults = faults

        def gate(now: float) -> bool:
            for fault in faults:
                if fault.active(now):
                    fault.fired = True
                    return True  # suppress the beat
            return False

        member.heartbeat_gate = gate
        return faults

    def lose_heartbeats(
        self, member, *, start: float, end: float = float("inf")
    ) -> ChaosFault:
        """Suppress a fleet member's heartbeats inside [start, end).

        The executor itself stays healthy — sold sessions keep running
        and publishing — but its control channel goes silent, so the
        :class:`~repro.core.fleetmgr.FleetManager` suspects and (past the
        eviction threshold) evicts it. The default open end models a
        permanently severed channel; revoking restores the beats.
        """
        asn, interface = member.vantage
        fault = ChaosFault(
            kind=ChaosKind.HEARTBEAT_LOSS,
            target=f"member {asn}:{interface}",
            start=start,
            end=end,
            magnitude=1.0,
        )
        faults = self._install_heartbeat_gate(member)
        faults.append(fault)
        fault._on_revoke.append(lambda: faults.remove(fault))
        return self._register(fault)

    # ------------------------------------------------------ publications

    def _install_publication_gate(self, agent) -> list[ChaosFault]:
        """One gate per agent, consulting a shared per-agent fault list."""
        faults = getattr(agent, "_chaos_publication_faults", None)
        if faults is not None:
            return faults
        faults = []
        agent._chaos_publication_faults = faults

        def gate(application_id: str, record) -> object:
            now = self.simulator.now
            for fault in faults:
                if not fault.active(now):
                    continue
                fault.fired = True
                if fault.kind is ChaosKind.PUBLICATION_DROP:
                    return "drop"
                # Delay past the fault window (plus the configured extra);
                # the publication path re-consults the gate afterwards.
                return ("delay", fault.end - now + fault.magnitude)
            return "publish"

        agent.publication_gate = gate
        return faults

    def drop_publications(self, agent, *, start: float, end: float) -> ChaosFault:
        """Results certified by ``agent`` inside [start, end) are never
        published: the executor keeps the escrowed payment unclaimed and
        the initiator must recover via its deadline."""
        fault = ChaosFault(
            kind=ChaosKind.PUBLICATION_DROP,
            target=f"agent {agent.asn}:{agent.interface}",
            start=start,
            end=end,
            magnitude=1.0,
        )
        faults = self._install_publication_gate(agent)
        faults.append(fault)
        fault._on_revoke.append(lambda: faults.remove(fault))
        return self._register(fault)

    def delay_publications(
        self, agent, *, start: float, end: float, extra: float = 0.0
    ) -> ChaosFault:
        """Publications attempted inside [start, end) are deferred until
        ``extra`` seconds after the window closes."""
        fault = ChaosFault(
            kind=ChaosKind.PUBLICATION_DELAY,
            target=f"agent {agent.asn}:{agent.interface}",
            start=start,
            end=end,
            magnitude=extra,
        )
        faults = self._install_publication_gate(agent)
        faults.append(fault)
        fault._on_revoke.append(lambda: faults.remove(fault))
        return self._register(fault)

    # ------------------------------------------------------------ ledger

    def _install_ledger_gates(self) -> None:
        if self._gates_installed:
            return
        if self.ledger is None:
            raise ValueError("this injector was built without a ledger")
        self._gates_installed = True
        previous_gate = self.ledger.submit_gate
        previous_delay = self.ledger.event_delay

        def gate(tx, now: float) -> None:
            if previous_gate is not None:
                previous_gate(tx, now)
            for fault in self._tx_faults:
                if not fault.active(now):
                    continue
                if fault.sender is not None and tx.sender != fault.sender:
                    continue
                fault.fired = True
                raise LedgerUnavailable(
                    f"ledger unavailable (chaos window "
                    f"[{fault.start:.3f}, {fault.end:.3f}))"
                )

        def delay(now: float) -> float:
            extra = 0.0 if previous_delay is None else previous_delay(now)
            for fault in self._finality_faults:
                if fault.active(now):
                    fault.fired = True
                    extra += fault.magnitude
            return extra

        self.ledger.submit_gate = gate
        self.ledger.event_delay = delay

    def fail_transactions(
        self, *, start: float, end: float, sender: str | None = None
    ) -> ChaosFault:
        """Transactions submitted inside [start, end) — optionally only
        from ``sender`` — are refused with :class:`LedgerUnavailable`
        before touching any ledger state. Retried submissions after the
        window succeed; the ledger's history never sees the outage."""
        self._install_ledger_gates()
        fault = ChaosFault(
            kind=ChaosKind.TX_FAILURE,
            target=sender or "all senders",
            start=start,
            end=end,
            sender=sender,
        )
        self._tx_faults.append(fault)
        fault._on_revoke.append(lambda: self._tx_faults.remove(fault))
        return self._register(fault)

    def delay_finality(
        self, *, extra: float, start: float, end: float
    ) -> ChaosFault:
        """Events from transactions finalized inside [start, end) are
        delivered ``extra`` seconds later than ``finality_latency``."""
        self._install_ledger_gates()
        fault = ChaosFault(
            kind=ChaosKind.FINALITY_DELAY,
            target="ledger finality",
            start=start,
            end=end,
            magnitude=extra,
        )
        self._finality_faults.append(fault)
        fault._on_revoke.append(lambda: self._finality_faults.remove(fault))
        return self._register(fault)

    # ------------------------------------------------------- randomness

    def random_fault(self, agents, *, start: float, end: float) -> ChaosFault:
        """Inject one seeded-random fault against a random agent within
        [start, end). Same seed + same call sequence = same faults."""
        agent = agents[int(self.rng.integers(0, len(agents)))]
        at = float(self.rng.uniform(start, end))
        until = float(self.rng.uniform(at, end))
        kind = _RANDOM_KINDS[int(self.rng.integers(0, len(_RANDOM_KINDS)))]
        if kind is ChaosKind.EXECUTOR_CRASH:
            return self.crash_executor(agent.executor, at=at, restart_at=until)
        if kind is ChaosKind.PUBLICATION_DROP:
            return self.drop_publications(agent, start=at, end=until)
        if kind is ChaosKind.PUBLICATION_DELAY:
            return self.delay_publications(
                agent, start=at, end=until, extra=float(self.rng.uniform(0.0, 2.0))
            )
        if kind is ChaosKind.TX_FAILURE:
            return self.fail_transactions(start=at, end=until)
        if kind is ChaosKind.FINALITY_DELAY:
            return self.delay_finality(
                extra=float(self.rng.uniform(0.5, 3.0)), start=at, end=until
            )
        return self.expire_slots_early(agent, at=at)

    def revoke_all(self) -> None:
        for fault in self.injected:
            fault.revoke()
        self.injected.clear()
