"""Command-line interface: run the paper's experiments directly.

Examples::

    python -m repro table1 --probes 2000
    python -m repro fig8
    python -m repro table2
    python -m repro localize --ases 10 --strategy binary
    python -m repro quickstart
    python -m repro verify program.dasm --manifest manifest.json
"""

from __future__ import annotations

import argparse
import sys


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability export flags shared by the instrumented commands."""
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome-trace (Perfetto) timeline JSON of the run",
    )
    parser.add_argument(
        "--events-out", default=None, metavar="FILE",
        help="write the span/event log as JSON lines",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write a Prometheus-text metrics snapshot",
    )
    parser.add_argument(
        "--obs-report", action="store_true",
        help="print the observability rollup after the run",
    )


def _obs_from_args(args: argparse.Namespace):
    """An enabled Observability bundle when any export was requested."""
    wanted = (
        getattr(args, "trace_out", None)
        or getattr(args, "events_out", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "obs_report", False)
    )
    if not wanted:
        return None
    from repro.obs import Observability

    return Observability.enabled()


def _emit_obs(args: argparse.Namespace, obs) -> None:
    if obs is None:
        return
    from repro.obs import render_report, write_exports

    written = write_exports(
        obs,
        trace_out=getattr(args, "trace_out", None),
        events_out=getattr(args, "events_out", None),
        metrics_out=getattr(args, "metrics_out", None),
    )
    for path in written:
        print(f"wrote {path}")
    if getattr(args, "obs_report", False):
        print(render_report(obs))


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis import format_table1_row, table_row
    from repro.workloads import WanScenario

    obs = _obs_from_args(args)

    def run() -> dict:
        scenario = WanScenario.build(seed=args.seed, obs=obs)
        return scenario.run_protocol_study(
            probes_per_protocol=args.probes,
            interval=args.interval,
            fast=args.fast,
            workers=args.workers,
        )

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        traces = profiler.runcall(run)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(20)
    else:
        traces = run()
    path = "fast" if args.fast else "event-driven"
    print(f"Table I ({args.probes} probes per cell, seed {args.seed}, {path}):")
    for city, by_protocol in traces.items():
        print(format_table1_row(city, table_row(by_protocol)))
    _emit_obs(args, obs)
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.core.application import DebugletApplication
    from repro.core.executor import Executor
    from repro.core.results import EchoMeasurement
    from repro.netsim import (
        Link, Network, Protocol, ProtocolTreatment, Simulator, Topology,
        TreatmentProfile,
    )
    from repro.sandbox.programs import echo_client, echo_server
    from repro.sandbox.programs_native import (
        native_echo_client,
        native_echo_server,
    )

    sim = Simulator()
    topo = Topology()
    topo.make_as(1, seed=1, internal_delay=0.2e-3)
    topo.make_as(2, seed=2, internal_delay=0.2e-3)
    treatment = TreatmentProfile.uniform(ProtocolTreatment(base_drop=0.008))
    topo.connect(
        1, 1, 2, 1,
        Link.symmetric("lon-ny", base_delay=36.4e-3, seed=31,
                       jitter_std=0.4e-3, treatment=treatment),
    )
    net = Network(topo, sim, seed=32)
    ex_a = Executor(net, 1, 1, seed=33)
    ex_b = Executor(net, 2, 1, seed=34)

    count, interval_us = args.probes, 200_000
    records = {}
    for index, (name, sandbox_client, sandbox_server) in enumerate(
        [("D2D", True, True), ("A2D", False, True),
         ("D2A", True, False), ("A2A", False, False)]
    ):
        port = 8500 + index
        client_stock = echo_client(
            Protocol.UDP, ex_b.data_address, count=count,
            interval_us=interval_us, dst_port=port,
        )
        server_stock = echo_server(
            Protocol.UDP, max_echoes=count, idle_timeout_us=4_000_000
        )
        if sandbox_client:
            client_app = DebugletApplication.from_stock("cli", client_stock)
        else:
            client_app = DebugletApplication(
                "cli-n", client_stock.manifest,
                native_factory=lambda port=port: native_echo_client(
                    Protocol.UDP, count=count, interval_us=interval_us,
                    dst_port=port,
                ),
            )
        if sandbox_server:
            server_app = DebugletApplication.from_stock(
                "srv", server_stock, listen_port=port
            )
        else:
            server_app = DebugletApplication(
                "srv-n", server_stock.manifest,
                native_factory=lambda: native_echo_server(
                    Protocol.UDP, max_echoes=count, idle_timeout_us=4_000_000
                ),
                listen_port=port,
            )
        ex_b.submit(server_app, start_at=0.5,
                    on_complete=lambda r, n=name: records.__setitem__((n, "s"), r))
        ex_a.submit(client_app, start_at=0.6,
                    on_complete=lambda r, n=name: records.__setitem__((n, "c"), r))
    sim.run_until_idle()
    print(f"Fig 8 ({count} probes per combination):")
    means = {}
    for name in ("D2D", "A2D", "D2A", "A2A"):
        echo = EchoMeasurement.from_result(
            records[(name, "c")].result, probes_sent=count
        )
        means[name] = echo.mean_rtt_ms()
        print(
            f"  {name}: mean={echo.mean_rtt_ms():8.3f} ms "
            f"loss={echo.loss_rate():.2%}"
        )
    print(f"  D2D - A2A = {(means['D2D'] - means['A2A']) * 1e3:.0f} us")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.chain import GasSchedule

    schedule = GasSchedule()
    print("Table II (gas schedule):")
    print("  size      total SUI   rebate SUI")
    for size in (0, 100, 1000, 5000, 10000):
        cost = schedule.price(stored_bytes=size)
        print(f"  {size:6d} B  {cost.total_sui():9.5f}   {cost.rebate_sui():9.5f}")
    return 0


def _cmd_localize(args: argparse.Namespace) -> int:
    from repro.core import ExecutorFleet, FaultLocalizer, SegmentProber
    from repro.netsim import FaultInjector, InterfaceId
    from repro.workloads import build_chain

    n = args.ases
    fault_link = args.fault_link if args.fault_link is not None else n - 1
    if not 1 <= fault_link <= n - 1:
        print(f"fault link must be in [1, {n - 1}]", file=sys.stderr)
        return 2
    scenario = build_chain(n, seed=args.seed)
    fleet = ExecutorFleet(scenario.network, seed=args.seed + 1)
    fleet.deploy_full()
    injector = FaultInjector(scenario.topology)
    fault = injector.link_delay(
        InterfaceId(fault_link, 2), InterfaceId(fault_link + 1, 1),
        extra_delay=20e-3, start=0.0, end=1e12,
    )
    prober = SegmentProber(fleet, probes=args.probes, interval_us=5000)
    localizer = FaultLocalizer(prober)
    report = localizer.localize(
        scenario.registry.shortest(1, n), strategy=args.strategy
    )
    print(f"ground truth: {fault.location}")
    print(
        f"{args.strategy}: suspects={[str(s) for s in report.suspects]} "
        f"measurements={report.measurements_used} "
        f"time={report.time_to_locate:.2f}s "
        f"correct={report.found(fault.location)}"
    )
    return 0 if report.found(fault.location) else 1


def _cmd_vmbench(args: argparse.Namespace) -> int:
    import json

    from repro.perf.vmbench import (
        TIERS,
        WORKLOAD_NAMES,
        run_localization,
        run_suite,
    )
    from repro.sandbox.compile import compile_cache

    tiers = TIERS if args.tier == "both" else (args.tier,)
    workloads = WORKLOAD_NAMES
    if args.workloads:
        workloads = tuple(name.strip() for name in args.workloads.split(","))
        unknown = set(workloads) - set(WORKLOAD_NAMES)
        if unknown:
            print(f"unknown workloads: {sorted(unknown)}", file=sys.stderr)
            return 2
    rows = run_suite(
        tiers, scale=args.scale, repeats=args.repeats, workloads=workloads
    )
    if args.e2e:
        for tier in tiers:
            rows.append(run_localization(tier))
    if args.json:
        print(json.dumps(
            {"rows": rows, "compile_cache": compile_cache().stats()}, indent=2
        ))
        return 0
    print(f"{'workload':<14} {'tier':<10} {'seconds':>10} {'speedup':>8} "
          f"{'elided':>14}")
    for row in rows:
        speedup = f"{row['speedup']:.2f}x" if "speedup" in row else ""
        elided = (
            f"{row['elided_checks']} ({row['elided_const']}c+"
            f"{row['elided_ranged']}r)"
            if "elided_checks" in row else ""
        )
        print(f"{row['name']:<14} {row['tier']:<10} "
              f"{row['seconds']:>10.4f} {speedup:>8} {elided:>14}")
    stats = compile_cache().stats()
    print(f"compile cache: {stats['hits']} hits / {stats['misses']} misses "
          f"({stats['entries']} entries)")
    return 0


def _cmd_wanbench(args: argparse.Namespace) -> int:
    import json

    from repro.workloads.wanbench import (
        MODES,
        WanbenchConfig,
        record_outcomes,
        run_wanbench,
    )

    modes = tuple(name.strip() for name in args.modes.split(","))
    unknown = set(modes) - set(MODES)
    if unknown:
        print(f"unknown modes: {sorted(unknown)}", file=sys.stderr)
        return 2
    config = WanbenchConfig(
        n_ases=args.ases,
        seed=args.seed,
        episodes=args.episodes,
        regions=args.regions,
        strategy=args.strategy,
        workers=args.workers,
        traffic=not args.no_traffic,
    )
    summary = run_wanbench(config, modes=modes)
    if args.record:
        record_outcomes(summary)
    if args.json:
        payload = dict(summary)
        payload["outcomes"] = {
            mode: outcome.bench_row(config)
            for mode, outcome in summary["outcomes"].items()
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"wanbench: {config.n_ases} ASes, {config.episodes} episodes, "
        f"strategy {config.strategy}, seed {config.seed} "
        f"({summary['congested_channels']} congested channels)"
    )
    print(f"{'mode':<9} {'seconds':>9} {'accuracy':>9} {'meas':>6} "
          f"{'probes':>8} {'conv(s)':>9}  digest")
    for mode, outcome in summary["outcomes"].items():
        print(
            f"{mode:<9} {outcome.wall_seconds:>9.3f} "
            f"{outcome.accuracy:>9.2%} {outcome.measurements:>6} "
            f"{outcome.probes_sent:>8} {outcome.mean_convergence:>9.2f}  "
            f"{outcome.digest[:16]}"
        )
    if "speedup_fast_over_event" in summary:
        print(f"fast-path speedup over event-driven: "
              f"{summary['speedup_fast_over_event']:.1f}x")
    if "digest_match" in summary:
        verdict = "MATCH" if summary["digest_match"] else "MISMATCH"
        print(f"serial vs sharded digest: {verdict}")
        if not summary["digest_match"]:
            return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.sandbox.assembler import assemble
    from repro.sandbox.manifest import Manifest
    from repro.sandbox.verifier import verify_module

    try:
        source = open(args.file, "r", encoding="utf-8").read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    manifest = None
    if args.manifest is not None:
        try:
            with open(args.manifest, "r", encoding="utf-8") as handle:
                manifest = Manifest.from_dict(json.load(handle))
        except Exception as exc:
            print(f"cannot load manifest {args.manifest}: {exc}", file=sys.stderr)
            return 2
    if args.policy and (manifest is None or manifest.policy is None):
        print(
            "--policy requires a manifest with a policy block "
            "(pass --manifest pointing at JSON with a non-null \"policy\")",
            file=sys.stderr,
        )
        return 2
    try:
        module = assemble(source)
    except Exception as exc:
        if args.json:
            print(json.dumps({"ok": False, "assembly_error": str(exc)}, indent=2))
        else:
            print(f"assembly failed: {exc}", file=sys.stderr)
        return 1
    report = verify_module(module, manifest)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render(explain=args.explain))
    return 0 if report.ok else 1


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from repro.core import ChainVerifier, DebugletApplication, EchoMeasurement
    from repro.core.executor import executor_data_address
    from repro.netsim import Protocol
    from repro.sandbox import echo_client, echo_server
    from repro.workloads import MarketplaceTestbed

    obs = _obs_from_args(args)
    testbed = MarketplaceTestbed.build(n_ases=3, seed=args.seed, obs=obs)
    path = testbed.chain.registry.shortest(1, 3)
    count = args.probes
    server_app = DebugletApplication.from_stock(
        "srv", echo_server(Protocol.UDP, max_echoes=count,
                           idle_timeout_us=3_000_000),
        listen_port=7801, path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "cli",
        echo_client(Protocol.UDP, executor_data_address(3, 1),
                    count=count, interval_us=50_000, dst_port=7801),
        path=path.as_list(),
    )
    session = testbed.initiator.request_measurement(
        client_app, server_app, (1, 2), (3, 1), duration=30.0
    )
    testbed.initiator.run_until_done(session, testbed.chain.simulator)
    echo = EchoMeasurement.from_result(
        session.client_outcome.result, probes_sent=count
    )
    print(f"path: {path}")
    print(f"delay-to-measurement: {session.delay_to_measurement:.2f} s")
    print(
        f"measured: mean RTT {echo.mean_rtt_ms():.3f} ms, "
        f"loss {echo.loss_rate():.1%}"
    )
    ChainVerifier(testbed.ledger, testbed.market).verify_result(
        session.client_application
    )
    testbed.ledger.verify_chain()
    print("verification: OK")
    _emit_obs(args, obs)
    return 0


def _cmd_chaos_demo(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosInjector
    from repro.core import DebugletApplication
    from repro.core.executor import executor_data_address
    from repro.netsim import Protocol
    from repro.sandbox import echo_client, echo_server
    from repro.workloads import MarketplaceTestbed

    obs = _obs_from_args(args)
    testbed = MarketplaceTestbed.build(n_ases=3, seed=args.seed, obs=obs)
    simulator = testbed.chain.simulator
    injector = ChaosInjector(simulator, testbed.ledger, seed=args.seed)
    path = testbed.chain.registry.shortest(1, 3)
    count = args.probes
    server_app = DebugletApplication.from_stock(
        "srv", echo_server(Protocol.UDP, max_echoes=count,
                           idle_timeout_us=3_000_000),
        listen_port=7801, path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "cli",
        echo_client(Protocol.UDP, executor_data_address(3, 1),
                    count=count, interval_us=50_000, dst_port=7801),
        path=path.as_list(),
    )

    if args.fault == "txfail":
        # Outage covering the initial purchase: the initiator retries with
        # backoff until the ledger comes back.
        fault = injector.fail_transactions(
            start=simulator.now, end=simulator.now + 3.0
        )

    session = testbed.initiator.request_measurement(
        client_app, server_app, (1, 2), (3, 1), duration=30.0,
        deadline_margin=10.0,
        max_attempts=1 if args.fault == "expiry" else 2,
    )
    if args.fault == "crash":
        # The server-side executor dies as the window opens, killing the
        # scheduled executions; it is back up before the deadline, so
        # attempt 2 buys a fresh slot and succeeds.
        fault = injector.crash_executor(
            testbed.agents[(3, 1)].executor,
            at=session.window_start + 0.1,
            restart_at=session.window_end + 5.0,
        )
    elif args.fault == "drop":
        # Certified results are produced but never published until after
        # the first deadline; the refund + failover path recovers.
        fault = injector.drop_publications(
            testbed.agents[(3, 1)], start=0.0, end=session.window_end + 10.0
        )
    elif args.fault == "delay":
        # Publications stall past the fault window, then go through.
        fault = injector.delay_publications(
            testbed.agents[(3, 1)],
            start=0.0, end=session.window_end + 2.0, extra=1.0,
        )
    elif args.fault == "expiry":
        # The executors renege before the window opens; the initiator
        # reclaims its escrow once the deadline passes.
        fault = injector.expire_slots_early(
            testbed.agents[(3, 1)], at=session.window_start
        )
        injector.expire_slots_early(testbed.agents[(1, 2)],
                                    at=session.window_start)

    testbed.initiator.run_until_done(session, simulator, timeout=900.0)

    print(f"fault: {fault.kind.value} on {fault.target}")
    print(f"states: {' -> '.join(session.state_names)}")
    print(f"attempts: {session.attempt}  purchase retries: "
          f"{session.purchase_retries}")
    if session.refunds:
        total = sum(session.refunds.values())
        print(f"refunded escrow: {total} MIST across "
              f"{len(session.refunds)} application(s)")
    if session.failure_reason:
        print(f"reason: {session.failure_reason}")
    locked = testbed.ledger.contract_balances.get("debuglet_market", 0)
    print(f"escrow still locked in contract: {locked} MIST")
    testbed.ledger.verify_chain()
    print(f"final state: {session.state.value}; chain verification: OK")
    _emit_obs(args, obs)
    return 0


def _cmd_audit_demo(args: argparse.Namespace) -> int:
    """Byzantine executor vs the audit pipeline, end to end (§13)."""
    from repro.chain.gas import sui_to_mist
    from repro.chaos import ChaosInjector
    from repro.core import DebugletApplication
    from repro.core.audit import AuditConfig
    from repro.core.executor import executor_data_address
    from repro.netsim import FaultInjector, Protocol
    from repro.netsim.topology import InterfaceId
    from repro.sandbox import echo_client, echo_server
    from repro.workloads import MarketplaceTestbed

    obs = _obs_from_args(args)
    stake = sui_to_mist(5)
    testbed = MarketplaceTestbed.build(
        n_ases=3, seed=args.seed, executor_stake=stake, obs=obs,
        initiator_funding=sui_to_mist(400),
    )
    simulator = testbed.chain.simulator
    auditor = testbed.make_auditor(
        config=AuditConfig(audit_rate=args.audit_rate, seed=args.seed), obs=obs
    )
    injector = ChaosInjector(simulator, testbed.ledger, seed=args.seed)

    timeout_us = 200_000 if args.strategy == "hide_faults" else 1_000_000
    if args.strategy == "hide_faults":
        # Real loss on the forward path gives the liar something to hide.
        FaultInjector(testbed.chain.topology).link_loss(
            InterfaceId(1, 2), InterfaceId(2, 1),
            loss=0.25, start=0.0, end=float("inf"), directions="forward",
        )
    corruptor = None
    if args.strategy != "honest":
        strategy = (
            "forge_values" if args.strategy == "forge_consistent"
            else args.strategy
        )
        fault = injector.corrupt_executor(
            testbed.fleet.get(1, 2), strategy=strategy, start=0.0,
            seed=args.seed,
            **({"forge_log": True} if args.strategy == "forge_consistent" else {}),
        )
        corruptor = fault.corruptor

    def run_session(client_v, server_v, *, count):
        path = testbed.chain.registry.shortest(client_v[0], server_v[0])
        server_app = DebugletApplication.from_stock(
            "srv", echo_server(Protocol.UDP, max_echoes=count,
                               idle_timeout_us=3_000_000),
            listen_port=7801, path=path.reversed().as_list(),
        )
        client_app = DebugletApplication.from_stock(
            "cli",
            echo_client(Protocol.UDP, executor_data_address(*server_v),
                        count=count, interval_us=50_000, dst_port=7801,
                        timeout_us=timeout_us),
            path=path.as_list(),
        )
        session = testbed.initiator.request_measurement(
            client_app, server_app, client_v, server_v, duration=30.0,
        )
        testbed.initiator.run_until_done(session, simulator, timeout=3600.0)
        return session

    # Run every session first, audit afterwards: the first conviction
    # bars the slashed executor from publishing (result_ready refuses),
    # which would wedge its still-pending sessions mid-demo.
    sessions = [
        run_session((1, 2), (3, 1), count=args.probes)
        for _ in range(args.sessions)
    ]
    if args.strategy == "forge_consistent":
        # Independent vantages give cross-validation its quorum: the
        # honest reverse path plus composed sub-segment votes via AS2.
        sessions.append(run_session((3, 1), (1, 2), count=args.probes))
        sessions.append(run_session((2, 1), (1, 2), count=args.probes))
        sessions.append(run_session((2, 2), (3, 1), count=args.probes))
    for session in sessions:
        auditor.on_session_complete(session)
    simulator.run()
    auditor.finalize()

    attacks = corruptor.attacks if corruptor is not None else []
    print(f"strategy: {args.strategy}  sessions: {args.sessions}  "
          f"audit rate: {args.audit_rate:.0%}")
    print(f"attacks mounted: {len(attacks)}  "
          f"sessions replay-audited: {auditor.sessions_audited}")
    for conviction in auditor.convictions:
        asn, interface = conviction["vantage"]
        print(f"convicted {asn}:{interface} by {conviction['mechanism']}: "
              f"burned {conviction['slashed']} MIST, evidence "
              f"{conviction['evidence_hash'].hex()[:16]}…")
        print(f"  {conviction['detail']}")
    if not auditor.convictions:
        print("no convictions" + (
            " (honest executors keep their stake)"
            if args.strategy == "honest" else
            " — raise --audit-rate or --sessions to catch the liar"
        ))
    print(f"tokens slashed on-ledger: {testbed.ledger.tokens_slashed} MIST")
    state = testbed.market.state
    for key, convictions in sorted(state["conviction_map"].items()):
        if convictions:
            reasons = ", ".join(c["reason"] for c in convictions)
            print(f"on-chain conviction record for {key}: {reasons}; "
                  f"remaining stake {state['stake_map'].get(key, 0)} MIST")
    testbed.ledger.verify_chain()
    print("chain verification: OK")
    _emit_obs(args, obs)
    if args.strategy == "honest":
        return 1 if auditor.convictions else 0
    return 0 if auditor.convictions else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.workloads import LoadgenConfig, build_loadgen, run_loadgen

    config = LoadgenConfig(
        sessions=args.sessions,
        executors=args.executors,
        initiators=args.initiators,
        ledger_mode=args.ledger,
        block_window=args.window,
        num_shards=args.shards,
        seed=args.seed,
        ramp=args.ramp,
        verify_chain=args.verify,
        audit_rate=args.audit_rate,
        churn=args.churn,
        heartbeat_interval=args.heartbeat,
        late_pairs=args.late,
        drain_pairs=args.drains,
        crash_pairs=args.crashes,
        lost_pairs=args.lost,
        slot_factor=args.slot_factor,
    )
    obs = _obs_from_args(args)
    fleet = build_loadgen(config, obs=obs)
    report = run_loadgen(fleet)
    det = report["deterministic"]
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"loadgen ({report['mode']} ledger, {det['sessions']} sessions, "
            f"seed {report['seed']}):"
        )
        print(
            f"  completed {det['completed']} "
            f"({det['certified']} certified) in {report['wall_seconds']:.1f}s "
            f"wall / {det['sim_seconds']:.1f}s simulated"
        )
        print(
            f"  sessions/sec: {report['sessions_per_sec']:.1f}   "
            f"peak active: {det['peak_active_sessions']}"
        )
        print(
            f"  session latency: p50 {det['latency_p50_s']:.2f}s  "
            f"p99 {det['latency_p99_s']:.2f}s (simulated)"
        )
        print(
            f"  ledger: {det['ledger_txs']} txs "
            f"({report['ledger_txs_per_sec']:.0f}/sec), "
            f"{det['checkpoints']} checkpoints, "
            f"{det['blocks_sealed']} blocks"
        )
        if "verify_chain_seconds" in report:
            print(
                f"  chain verification: OK "
                f"({report['verify_chain_seconds']:.1f}s)"
            )
        if "fleet" in det:
            section = det["fleet"]
            states = ", ".join(
                f"{count} {state}" for state, count in section["states"].items()
            )
            print(
                f"  fleet: {states}; {section['transitions']} transitions, "
                f"{section['heartbeats_missed']} missed heartbeats, "
                f"{section['assigned_while_unsellable']} bad assignments"
            )
        print(f"  state digest: {det['state_digest'][:16]}…")
    _emit_obs(args, obs)
    failed = det["by_state"].get("failed", 0) + det["launch_failures"]
    if "fleet" in det and det["fleet"]["assigned_while_unsellable"]:
        failed += det["fleet"]["assigned_while_unsellable"]
    return 1 if failed else 0


def _cmd_fleet_demo(args: argparse.Namespace) -> int:
    """The fleet lifecycle end to end on a real 3-AS marketplace: a scoped
    admission, a graceful drain with on-chain deregistration, a crash
    followed by liveness eviction and re-registration, and a heartbeat-loss
    eviction of a healthy executor (DESIGN.md §14)."""
    from repro.chaos import ChaosInjector
    from repro.core import DebugletApplication
    from repro.core.executor import executor_data_address
    from repro.core.fleetmgr import CapabilityRecord, ExecutorState
    from repro.netsim import Protocol
    from repro.sandbox import echo_client, echo_server
    from repro.workloads import MarketplaceTestbed

    obs = _obs_from_args(args)
    hb = args.heartbeat
    testbed = MarketplaceTestbed.build(n_ases=3, seed=args.seed, obs=obs)
    simulator = testbed.chain.simulator
    manager = testbed.make_fleet_manager(heartbeat_interval=hb)
    injector = ChaosInjector(simulator, testbed.ledger, seed=args.seed)

    count = args.probes
    path = testbed.chain.registry.shortest(1, 3)
    server_app = DebugletApplication.from_stock(
        "srv", echo_server(Protocol.UDP, max_echoes=count,
                           idle_timeout_us=3_000_000),
        listen_port=7801, path=path.reversed().as_list(),
    )
    client_app = DebugletApplication.from_stock(
        "cli",
        echo_client(Protocol.UDP, executor_data_address(3, 1),
                    count=count, interval_us=50_000, dst_port=7801),
        path=path.as_list(),
    )

    # Admission scope: the verifier-backed allowlist check in both verdicts.
    print("admission:")
    print(f"  cli at 1:2 under the full record: "
          f"{'admitted' if manager.preflight((1, 2), client_app) else 'denied'}")
    member = manager.get((1, 2))
    member.capabilities = CapabilityRecord.read_only()
    verdict = manager.preflight((1, 2), client_app)
    print(f"  cli at 1:2 under a read-only record: "
          f"{'admitted' if verdict else 'denied'}")
    denial = member.admission_log[-1]
    print(f"    reason: {denial.reason}")
    member.capabilities = CapabilityRecord.from_policy(member.executor.policy)

    # A session through the managed fleet while everything is active.
    session = testbed.initiator.request_measurement(
        client_app, server_app, (1, 2), (3, 1), duration=30.0
    )
    testbed.initiator.run_until_done(session, simulator)
    print(f"session: {session.state.value} "
          f"(delay-to-measurement {session.delay_to_measurement:.2f}s)")

    # Graceful drain: 2:1 stops selling, retires idle, leaves the chain.
    manager.drain((2, 1))
    manager.run_until(simulator.now + 3 * hb)
    print(f"drain 2:1 -> {manager.state_of((2, 1)).value}; on-chain address: "
          f"{testbed.market.executor_address(2, 1)}")

    # Crash + eviction + re-registration: 2:2 goes down long enough to be
    # evicted, restarts, and re-registers (its stake was never touched).
    crash_at = simulator.now + hb
    restart_at = crash_at + (manager.evict_beats + 1.5) * hb
    injector.crash_executor(
        testbed.agents[(2, 2)].executor, at=crash_at, restart_at=restart_at
    )
    manager.run_until(restart_at + 0.5 * hb)
    print(f"crash 2:2 -> {manager.state_of((2, 2)).value} "
          f"(missed heartbeats: {manager.heartbeats_missed})")
    manager.reregister((2, 2))
    print(f"re-register 2:2 -> {manager.state_of((2, 2)).value} "
          f"(registrations: {manager.get((2, 2)).registrations})")

    # Heartbeat loss: 3:1 stays healthy but its control channel is cut.
    injector.lose_heartbeats(manager.get((3, 1)), start=simulator.now)
    manager.run_until(
        simulator.now + (manager.evict_beats + 2) * hb
    )
    print(f"heartbeat loss 3:1 -> {manager.state_of((3, 1)).value} "
          f"(executor crashed: {manager.get((3, 1)).executor.crashed})")

    manager.stop()
    print("lifecycle log:")
    for when, vantage, source, target, reason in manager.lifecycle_log:
        print(f"  t={when:7.2f}  {vantage[0]}:{vantage[1]}  "
              f"{source:>10} -> {target:<10} {reason}")
    print(f"fleet states: {manager.counts()}")
    testbed.ledger.verify_chain()
    print("chain verification: OK")
    _emit_obs(args, obs)
    ok = (
        manager.state_of((2, 1)) is ExecutorState.RETIRED
        and manager.state_of((2, 2)) is ExecutorState.ACTIVE
        and manager.state_of((3, 1)) is ExecutorState.EVICTED
    )
    return 0 if ok else 1


def _cmd_placement(args: argparse.Namespace) -> int:
    """Evaluate the placement strategies on one path: segment coverage
    (exact isolation, mean suspect set) against vantage cost."""
    import json

    from repro.core.placement import (
        STRATEGIES,
        candidates_from_directory,
        evaluate_strategies,
        synthetic_candidates,
    )

    if args.live:
        from repro.core.discovery import DecentralizedDirectory
        from repro.core.probing import ExecutorFleet
        from repro.workloads import build_chain

        chain = build_chain(args.ases, seed=args.seed)
        fleet = ExecutorFleet(chain.network, seed=args.seed)
        fleet.deploy_full()
        directory = DecentralizedDirectory(chain.registry)
        for vantage in fleet.vantages():
            directory.advertise(
                fleet.get(*vantage), price=args.border_price + vantage[0]
            )
        segment = chain.registry.shortest(1, args.ases)
        pool = candidates_from_directory(directory, segment)
        n_ases = len(segment.asns())
        print(f"live pool from {len(pool)} advertised executors on {segment}")
    else:
        n_ases = args.ases
        pool = synthetic_candidates(
            n_ases,
            border_price=args.border_price,
            in_as_price=args.in_as_price,
        )
    plans = evaluate_strategies(n_ases, pool, budget=args.budget, seed=args.seed)
    if args.json:
        print(json.dumps(
            {strategy: plans[strategy].as_row() for strategy in STRATEGIES},
            indent=2,
        ))
        return 0
    print(f"placement over {n_ases} ASes, budget {args.budget}:")
    print(f"  {'strategy':<10} {'vantages':>8} {'cost':>6} "
          f"{'exact':>7} {'suspects':>9}  positions")
    for strategy in STRATEGIES:
        plan = plans[strategy]
        print(f"  {strategy:<10} {len(plan.chosen):>8} {plan.cost:>6} "
              f"{plan.exact_isolation_rate:>7.3f} "
              f"{plan.mean_suspect_set:>9.3f}  {plan.positions}")
    border, random_plan = plans["border"], plans["random"]
    better = border.mean_suspect_set <= random_plan.mean_suspect_set
    print("border co-location "
          + ("matches or beats" if better else "LOSES to")
          + " the random baseline on mean suspect-set size")
    return 0 if better else 1


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Run one instrumented scenario and print its observability rollup."""
    defaults = {
        "table1": dict(
            func=_cmd_table1, probes=args.probes or 200, interval=1.0,
            fast=True, workers=None, profile=False,
        ),
        "quickstart": dict(func=_cmd_quickstart, probes=args.probes or 30),
        "chaos-demo": dict(
            func=_cmd_chaos_demo, probes=args.probes or 30, fault=args.fault,
        ),
    }[args.scenario]
    func = defaults.pop("func")
    inner = argparse.Namespace(
        seed=args.seed,
        trace_out=args.trace_out,
        events_out=args.events_out,
        metrics_out=args.metrics_out,
        obs_report=True,
        **defaults,
    )
    return func(inner)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Debuglet reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table I: per-protocol RTT/loss, 7-city WAN")
    p.add_argument("--probes", type=int, default=2000)
    p.add_argument("--interval", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--fast", action="store_true",
                   help="use the vectorized fast path (see DESIGN.md)")
    p.add_argument("--workers", type=int, default=None,
                   help="fan fast-path cells over N processes (-1 = all cores)")
    p.add_argument("--profile", action="store_true",
                   help="print cProfile top-20 (by cumulative time) for the run")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("fig8", help="Fig 8: sandbox overhead (D2D/A2D/D2A/A2A)")
    p.add_argument("--probes", type=int, default=500)
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("table2", help="Table II: gas costs by application size")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("localize", help="fault localization on an N-AS chain")
    p.add_argument("--ases", type=int, default=10)
    p.add_argument("--fault-link", type=int, default=None,
                   help="1-based index of the faulty link (default: last)")
    p.add_argument("--strategy", default="binary",
                   choices=("binary", "linear", "exhaustive"))
    p.add_argument("--probes", type=int, default=15)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_localize)

    p = sub.add_parser("quickstart", help="one verifiable marketplace measurement")
    p.add_argument("--probes", type=int, default=30)
    p.add_argument("--seed", type=int, default=1)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser(
        "chaos-demo",
        help="one marketplace measurement surviving an injected fault",
    )
    p.add_argument("--fault", default="crash",
                   choices=("crash", "drop", "delay", "txfail", "expiry"))
    p.add_argument("--probes", type=int, default=30)
    p.add_argument("--seed", type=int, default=1)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_chaos_demo)

    p = sub.add_parser(
        "audit-demo",
        help="a Byzantine executor detected, convicted, and slashed on-chain",
    )
    p.add_argument("--strategy", default="forge_values",
                   choices=("honest", "forge_values", "forge_consistent",
                            "hide_faults", "replay_result",
                            "stale_certificate"))
    p.add_argument("--audit-rate", type=float, default=0.25,
                   help="fraction of sessions spot-checked by replay audit")
    p.add_argument("--sessions", type=int, default=8,
                   help="measurement sessions the corrupted executor serves")
    p.add_argument("--probes", type=int, default=10)
    p.add_argument("--seed", type=int, default=1)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_audit_demo)

    p = sub.add_parser(
        "loadgen",
        help="fleet-scale marketplace bench: ramp thousands of sessions "
             "through the ledger and report throughput/latency",
    )
    p.add_argument("--sessions", type=int, default=12_000)
    p.add_argument("--executors", type=int, default=64,
                   help="synthetic executors (paired into vantage pairs)")
    p.add_argument("--initiators", type=int, default=64,
                   help="initiator wallets launching sessions round-robin")
    p.add_argument("--ledger", choices=("serial", "batched"), default="batched",
                   help="per-tx checkpoints vs batched transaction blocks")
    p.add_argument("--window", type=float, default=4.0,
                   help="block finality window in seconds (batched mode)")
    p.add_argument("--shards", type=int, default=16,
                   help="object-store shard count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ramp", type=float, default=30.0,
                   help="simulated seconds over which launches ramp up")
    p.add_argument("--verify", action="store_true",
                   help="run full chain verification after the drain")
    p.add_argument("--audit-rate", type=float, default=0.0,
                   help="sample this fraction of sessions for lightweight "
                        "audits (window + batched signature checks)")
    p.add_argument("--churn", action="store_true",
                   help="fleet churn: a FleetManager owns every pair's "
                        "lifecycle; sessions pick sellable pairs at fire time")
    p.add_argument("--heartbeat", type=float, default=2.0,
                   help="fleet heartbeat interval in simulated seconds")
    p.add_argument("--late", type=int, default=0,
                   help="vantage pairs registering mid-ramp (needs --churn)")
    p.add_argument("--drains", type=int, default=0,
                   help="vantage pairs gracefully drained mid-ramp")
    p.add_argument("--crashes", type=int, default=0,
                   help="vantage pairs that crash, get evicted, re-register")
    p.add_argument("--lost", type=int, default=0,
                   help="vantage pairs losing heartbeats (healthy executor)")
    p.add_argument("--slot-factor", type=float, default=1.0,
                   help="slot over-provisioning so survivors absorb churn")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "fleet-demo",
        help="executor fleet lifecycle: admission scope, drain/retire, "
             "crash eviction + re-registration, heartbeat loss",
    )
    p.add_argument("--probes", type=int, default=30)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--heartbeat", type=float, default=5.0,
                   help="heartbeat interval in simulated seconds")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_fleet_demo)

    p = sub.add_parser(
        "placement",
        help="vantage placement strategies: segment coverage vs cost for "
             "border co-location, in-AS, and random baselines",
    )
    p.add_argument("--ases", type=int, default=8,
                   help="path length in ASes")
    p.add_argument("--budget", type=int, default=300,
                   help="total vantage budget")
    p.add_argument("--border-price", type=int, default=100,
                   help="price of a border-router co-located vantage")
    p.add_argument("--in-as-price", type=int, default=60,
                   help="price of an in-AS alternative vantage")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--live", action="store_true",
                   help="derive candidates from live directory "
                        "advertisements on a built chain instead of the "
                        "synthetic pool")
    p.add_argument("--json", action="store_true",
                   help="emit the strategy rows as JSON")
    p.set_defaults(func=_cmd_placement)

    p = sub.add_parser(
        "obs-report",
        help="run an instrumented scenario and print the observability rollup",
    )
    p.add_argument("--scenario", default="quickstart",
                   choices=("table1", "quickstart", "chaos-demo"))
    p.add_argument("--probes", type=int, default=None,
                   help="probe count (default: scenario-appropriate)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fault", default="crash",
                   choices=("crash", "drop", "delay", "txfail", "expiry"),
                   help="fault kind when --scenario chaos-demo")
    p.add_argument("--trace-out", default=None, metavar="FILE")
    p.add_argument("--events-out", default=None, metavar="FILE")
    p.add_argument("--metrics-out", default=None, metavar="FILE")
    p.set_defaults(func=_cmd_obs_report)

    p = sub.add_parser(
        "vmbench",
        help="execution-tier microbench: reference interpreter vs compiled",
    )
    p.add_argument("--tier", choices=["reference", "compiled", "both"],
                   default="both")
    p.add_argument("--scale", type=float, default=1.0,
                   help="multiply every workload's iteration count")
    p.add_argument("--repeats", type=int, default=3,
                   help="min-of-N repeats per row")
    p.add_argument("--workloads", default=None,
                   help="comma-separated subset (default: all)")
    p.add_argument("--e2e", action="store_true",
                   help="also time an end-to-end fault-localization run per tier")
    p.add_argument("--json", action="store_true",
                   help="emit rows (plus compile-cache stats) as JSON")
    p.set_defaults(func=_cmd_vmbench)

    p = sub.add_parser(
        "wanbench",
        help="continent-scale localization campaign: event vs fast vs sharded",
    )
    p.add_argument("--ases", type=int, default=1000,
                   help="topology size (power-law Gao-Rexford Internet)")
    p.add_argument("--episodes", type=int, default=40,
                   help="concurrent localization episodes")
    p.add_argument("--regions", type=int, default=5,
                   help="AS regions (the sharding domains)")
    p.add_argument("--strategy", default="mixed",
                   choices=["mixed", "binary", "linear", "exhaustive"])
    p.add_argument("--modes", default="fast,sharded",
                   help="comma-separated engines to run "
                        "(event, fast, sharded)")
    p.add_argument("--workers", type=int, default=0,
                   help="sharded-mode pool size (0 = all cores)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-traffic", action="store_true",
                   help="skip the background traffic matrix")
    p.add_argument("--record", action="store_true",
                   help="append results to BENCH_wan.json")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as JSON")
    p.set_defaults(func=_cmd_wanbench)

    p = sub.add_parser(
        "verify",
        help="statically verify a Debuglet assembly file (exit 1 on rejection)",
    )
    p.add_argument("file", help="path to a .dasm assembly source file")
    p.add_argument("--manifest", default=None,
                   help="JSON manifest to check fuel bounds and capabilities "
                        "against (Manifest.as_dict format)")
    p.add_argument("--policy", action="store_true",
                   help="require the manifest to carry a policy block; the "
                        "emission/send dataflow proofs then gate the verdict")
    p.add_argument("--explain", action="store_true",
                   help="render the dataflow witness path under each "
                        "path-carrying diagnostic")
    p.add_argument("--json", action="store_true",
                   help="emit the structured report as JSON")
    p.set_defaults(func=_cmd_verify)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
