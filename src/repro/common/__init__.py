"""Shared infrastructure used by every Debuglet subpackage.

This package deliberately has no dependencies on the rest of :mod:`repro`
so that any subpackage may import it without cycles.
"""

from repro.common.errors import (
    ChainError,
    ConfigurationError,
    DebugletError,
    ManifestError,
    PolicyViolation,
    SandboxError,
    SimulationError,
    VerificationError,
)
from repro.common.ids import ObjectId, new_object_id
from repro.common.rng import RngStream, derive_rng, make_rng
from repro.common.serialize import canonical_encode, stable_hash
from repro.common.units import (
    BYTES_PER_KB,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    format_duration,
)

__all__ = [
    "BYTES_PER_KB",
    "ChainError",
    "ConfigurationError",
    "DebugletError",
    "ManifestError",
    "MICROSECOND",
    "MILLISECOND",
    "ObjectId",
    "PolicyViolation",
    "RngStream",
    "SandboxError",
    "SECOND",
    "SimulationError",
    "VerificationError",
    "canonical_encode",
    "derive_rng",
    "format_duration",
    "make_rng",
    "new_object_id",
    "stable_hash",
]
