"""Exception hierarchy for the Debuglet reproduction.

Every error raised by this library derives from :class:`DebugletError`, so
applications can catch one base class. Subpackages raise the most specific
subclass that applies.
"""


class DebugletError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(DebugletError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(DebugletError):
    """The network simulator reached an inconsistent state."""


class SandboxError(DebugletError):
    """The sandboxed VM rejected or aborted a Debuglet program."""


class FuelExhausted(SandboxError):
    """A Debuglet exceeded its metered instruction budget."""


class MemoryFault(SandboxError):
    """A Debuglet accessed linear memory out of bounds."""


class ManifestError(DebugletError):
    """A Debuglet manifest is malformed or internally inconsistent."""


class PolicyViolation(DebugletError):
    """A Debuglet attempted an action its manifest or host policy forbids."""


class ChainError(DebugletError):
    """A blockchain transaction was rejected."""


class InsufficientGas(ChainError):
    """The submitted gas budget does not cover the transaction cost."""


class InsufficientTokens(ChainError):
    """A transfer or escrow exceeds the sender's balance."""


class ContractRevert(ChainError):
    """A smart-contract entry function aborted; all state changes rolled back."""

    def __init__(self, reason: str):
        super().__init__(f"contract reverted: {reason}")
        self.reason = reason


class VerificationError(DebugletError):
    """A signature, certificate, or on-chain consistency check failed."""
