"""Exception hierarchy for the Debuglet reproduction.

Every error raised by this library derives from :class:`DebugletError`, so
applications can catch one base class. Subpackages raise the most specific
subclass that applies.
"""


class DebugletError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(DebugletError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(DebugletError):
    """The network simulator reached an inconsistent state."""


class SandboxError(DebugletError):
    """The sandboxed VM rejected or aborted a Debuglet program."""


class FuelExhausted(SandboxError):
    """A Debuglet exceeded its metered instruction budget."""


class MemoryFault(SandboxError):
    """A Debuglet accessed linear memory out of bounds."""


class ManifestError(DebugletError):
    """A Debuglet manifest is malformed or internally inconsistent."""


class PolicyViolation(DebugletError):
    """A Debuglet attempted an action its manifest or host policy forbids."""


class ChainError(DebugletError):
    """A blockchain transaction was rejected."""


class LedgerUnavailable(ChainError):
    """The ledger could not accept the transaction right now (transient).

    Raised by fault injection (and, in a real deployment, by network
    partitions or validator outages). Callers may retry with backoff;
    every other :class:`ChainError` is permanent and must not be retried.
    """


class SessionStalled(DebugletError):
    """A measurement session cannot make progress.

    Raised by :meth:`repro.core.marketplace.Initiator.run_until_done`
    when the simulator goes idle — or its hard timeout expires — while
    the session is still in a non-terminal state, and by the fleet
    scheduler (:mod:`repro.core.fleet`) when sessions are left behind at
    drain time. Carries the session so callers can inspect how far it
    got, plus (when the simulator has observability attached) the last
    engine events leading up to the stall, plus optional scheduler
    ``context`` — ready/blocked queue depths, the stalled session's
    ledger shard, live subscription counts — so the exception message
    alone is enough to debug with.
    """

    def __init__(
        self,
        session,
        message: str,
        events: list | None = None,
        context: dict | None = None,
    ) -> None:
        state = getattr(session, "state", None)
        detail = f" (session state: {state.value})" if state is not None else ""
        history = getattr(session, "state_history", None)
        if history:
            trail = " -> ".join(
                f"{st.value}@{t:.3f}s" for t, st in history[-8:]
            )
            detail += f"; history: {trail}"
        if context:
            rendered = ", ".join(f"{key}={value}" for key, value in context.items())
            detail += f"\nscheduler state: {rendered}"
        if events:
            lines = "\n  ".join(events)
            detail += f"\nlast engine events:\n  {lines}"
        super().__init__(message + detail)
        self.session = session
        self.state = state
        self.events = list(events or [])
        self.context = dict(context or {})


class InsufficientGas(ChainError):
    """The submitted gas budget does not cover the transaction cost."""


class InsufficientTokens(ChainError):
    """A transfer or escrow exceeds the sender's balance."""


class ContractRevert(ChainError):
    """A smart-contract entry function aborted; all state changes rolled back."""

    def __init__(self, reason: str):
        super().__init__(f"contract reverted: {reason}")
        self.reason = reason


class VerificationError(DebugletError):
    """A signature, certificate, or on-chain consistency check failed."""
