"""Opaque object identifiers.

The marketplace contract, the ledger's object store, and measurement
sessions all address objects by an :class:`ObjectId`. IDs are derived
deterministically from a creation context (e.g. transaction digest plus an
index) so that replaying a chain reproduces identical IDs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class ObjectId:
    """A 16-byte identifier, printed as hex."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != 16:
            raise ValueError(f"ObjectId must be 16 bytes, got {len(self.value)}")

    @classmethod
    def from_hex(cls, text: str) -> "ObjectId":
        return cls(bytes.fromhex(text))

    def hex(self) -> str:
        return self.value.hex()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.hex()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectId({self.value.hex()!r})"


def new_object_id(*parts: bytes | str | int) -> ObjectId:
    """Derive an :class:`ObjectId` deterministically from ``parts``.

    Each part is length-prefixed before hashing so distinct part sequences
    can never collide by concatenation.
    """
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, int):
            part = part.to_bytes(8, "big", signed=True)
        elif isinstance(part, str):
            part = part.encode("utf-8")
        hasher.update(len(part).to_bytes(4, "big"))
        hasher.update(part)
    return ObjectId(hasher.digest()[:16])
