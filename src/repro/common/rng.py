"""Deterministic random-number management.

All stochastic components in the simulator draw from explicitly threaded
:class:`numpy.random.Generator` instances. Components that need independent
streams derive them from a parent seed and a string label, so adding a new
component never perturbs the draws of existing ones.

:class:`BufferedRng` is a drop-in façade over a generator for the scalar
hot paths (per-packet draws in ``netsim.conduit``, schedule generation in
``netsim.congestion`` and ``netsim.traffic``): it serves scalar draws from
pre-filled blocks while guaranteeing the exact draw sequence of the bare
generator, so seeded traces are unchanged by the buffering.
"""

from __future__ import annotations

import hashlib

import numpy as np

RngStream = np.random.Generator


def make_rng(seed: int) -> RngStream:
    """Create the root generator for a simulation run."""
    return np.random.default_rng(seed)


def derive_rng(seed: int, *labels: str | int) -> RngStream:
    """Derive an independent stream from ``seed`` and a label path.

    The derivation hashes the labels, so streams for different labels are
    statistically independent and stable across code changes that add or
    remove *other* streams.
    """
    return np.random.default_rng(derive_seed(seed, *labels))


def derive_seed(seed: int, *labels: str | int) -> int:
    """The child seed ``derive_rng`` uses for ``(seed, *labels)``.

    Exposed so that work fanned out to other processes (see
    ``repro.perf.parallel``) can derive bit-identical per-cell streams
    without shipping generator state across process boundaries.
    """
    hasher = hashlib.sha256(str(seed).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class BufferedRng:
    """Serve scalar draws from pre-filled blocks, preserving the sequence.

    Wraps one :class:`numpy.random.Generator`. The guarantee is strict:
    **any** call pattern returns bit-identical values to making the same
    calls on the bare wrapped generator. This holds because

    - numpy's vectorized fills consume the bit stream exactly as the same
      number of scalar draws would (the block loop calls the scalar
      kernel per element), and
    - scaled forms are computed with the same arithmetic numpy uses
      internally (``normal(l, s) == l + s * standard_normal()``, etc.).

    Buffering only engages after ``threshold`` consecutive draws of the
    same distribution *kind*, so interleaved usage (e.g. the per-packet
    uniform/gamma/normal pattern in ``DirectedChannel.transit``) stays on
    the scalar path with negligible overhead, while single-kind streams
    (slow-path ICMP jitter, Poisson schedules) are served from blocks of
    ``block`` draws per underlying call. Abandoning a partially consumed
    block rewinds the underlying bit-generator state and replays the
    served draws, so alignment with the bare generator is exact even
    across kind switches.
    """

    _STANDARD = "standard"

    def __init__(
        self,
        generator: RngStream,
        *,
        block: int = 4096,
        threshold: int = 32,
    ) -> None:
        if block < 2:
            raise ValueError("block must be at least 2")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self._gen = generator
        self._block = block
        self._threshold = threshold
        # Active buffer state: kind key, standard-form values, cursor, and
        # the bit-generator state snapshot taken just before the fill.
        self._kind: tuple | None = None
        self._buffer: np.ndarray | None = None
        self._pos = 0
        self._saved_state: dict | None = None
        # Streak tracking for adaptive engagement.
        self._streak_kind: tuple | None = None
        self._streak = 0

    # ------------------------------------------------------------ internals

    def _fill(self, kind: tuple, n: int) -> np.ndarray:
        """Draw ``n`` standard-form values of ``kind`` from the generator."""
        name = kind[0]
        if name == "random":
            return self._gen.random(n)
        if name == "normal":
            return self._gen.standard_normal(n)
        if name == "exponential":
            return self._gen.standard_exponential(n)
        if name == "gamma":
            return self._gen.standard_gamma(kind[1], n)
        raise ValueError(f"unknown draw kind {kind!r}")  # pragma: no cover

    def _realign(self) -> None:
        """Discard any outstanding buffer, restoring bare-generator state.

        A partially consumed block is rewound to the pre-fill snapshot and
        the served draws are replayed, which leaves the bit generator in
        exactly the state a bare generator would have after the same
        scalar draws. A fully consumed block already matches that state.
        """
        if self._buffer is None:
            return
        if self._pos < len(self._buffer):
            self._gen.bit_generator.state = self._saved_state
            if self._pos:
                self._fill(self._kind, self._pos)
        self._kind = None
        self._buffer = None
        self._pos = 0
        self._saved_state = None

    def _draw(self, kind: tuple) -> float:
        """One standard-form draw of ``kind``, buffered when hot."""
        if self._kind == kind:
            buffer = self._buffer
            if self._pos >= len(buffer):
                self._saved_state = self._gen.bit_generator.state
                buffer = self._buffer = self._fill(kind, self._block)
                self._pos = 0
            value = buffer[self._pos]
            self._pos += 1
            return value
        # Kind switch (or no buffer yet): fall back to the scalar path.
        self._realign()
        if self._streak_kind == kind:
            self._streak += 1
        else:
            self._streak_kind = kind
            self._streak = 1
        if self._streak > self._threshold:
            self._kind = kind
            self._saved_state = self._gen.bit_generator.state
            self._buffer = self._fill(kind, self._block)
            self._pos = 1
            return self._buffer[0]
        return self._scalar(kind)

    def _scalar(self, kind: tuple) -> float:
        name = kind[0]
        if name == "random":
            return self._gen.random()
        if name == "normal":
            return self._gen.standard_normal()
        if name == "exponential":
            return self._gen.standard_exponential()
        if name == "gamma":
            return self._gen.standard_gamma(kind[1])
        raise ValueError(f"unknown draw kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------ draw API

    def random(self) -> float:
        return self._draw(("random",))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * self._draw(("random",))

    def standard_normal(self) -> float:
        return self._draw(("normal",))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return loc + scale * self._draw(("normal",))

    def standard_exponential(self) -> float:
        return self._draw(("exponential",))

    def exponential(self, scale: float = 1.0) -> float:
        return scale * self._draw(("exponential",))

    def standard_gamma(self, shape: float) -> float:
        return self._draw(("gamma", float(shape)))

    def gamma(self, shape: float, scale: float = 1.0) -> float:
        return scale * self._draw(("gamma", float(shape)))

    # ------------------------------------------------------- everything else

    @property
    def bit_generator(self):
        """The underlying bit generator, realigned to the bare sequence."""
        self._realign()
        self._streak = 0
        return self._gen.bit_generator

    def __getattr__(self, name: str):
        """Delegate uncommon draws to the wrapped generator, realigned."""
        attribute = getattr(self._gen, name)
        if callable(attribute):
            self._realign()
            self._streak = 0
        return attribute


def derive_buffered_rng(
    seed: int, *labels: str | int, block: int = 4096, threshold: int = 32
) -> BufferedRng:
    """A :class:`BufferedRng` over the ``derive_rng(seed, *labels)`` stream."""
    return BufferedRng(derive_rng(seed, *labels), block=block, threshold=threshold)
