"""Deterministic random-number management.

All stochastic components in the simulator draw from explicitly threaded
:class:`numpy.random.Generator` instances. Components that need independent
streams derive them from a parent seed and a string label, so adding a new
component never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

RngStream = np.random.Generator


def make_rng(seed: int) -> RngStream:
    """Create the root generator for a simulation run."""
    return np.random.default_rng(seed)


def derive_rng(seed: int, *labels: str | int) -> RngStream:
    """Derive an independent stream from ``seed`` and a label path.

    The derivation hashes the labels, so streams for different labels are
    statistically independent and stable across code changes that add or
    remove *other* streams.
    """
    hasher = hashlib.sha256(str(seed).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    child_seed = int.from_bytes(hasher.digest()[:8], "big")
    return np.random.default_rng(child_seed)
