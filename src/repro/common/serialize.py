"""Canonical, deterministic serialization for hashing and signing.

The blockchain signs and hashes structured values (transactions, results,
certificates). ``canonical_encode`` produces a byte string that is stable
across processes and Python versions for the JSON-like subset of values the
library uses: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
and (nested) lists, tuples, and string-keyed dicts.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into a canonical byte string.

    Raises :class:`TypeError` for unsupported types and for dicts with
    non-string keys. Dict entries are sorted by key, so two dicts with the
    same content encode identically regardless of insertion order.
    """
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Any) -> None:
    # Exact-type dispatch first: the overwhelmingly common cases in
    # signing payloads and object data are plain str/int/float/dict/list.
    # Subclasses (bool deliberately, but also e.g. IntEnum) fall through
    # to the isinstance-based slow path, which encodes them byte-for-byte
    # the same as before.
    kind = type(value)
    if kind is str:
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += len(raw).to_bytes(4, "big")
        out += raw
    elif kind is int:
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        out += _TAG_INT
        out += len(raw).to_bytes(4, "big")
        out += raw
    elif kind is float:
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif kind is dict:
        keys = sorted(value.keys())
        out += _TAG_DICT
        out += len(keys).to_bytes(4, "big")
        for key in keys:
            if type(key) is not str and not isinstance(key, str):
                raise TypeError("canonical_encode requires string dict keys")
            raw = key.encode("utf-8")
            out += _TAG_STR
            out += len(raw).to_bytes(4, "big")
            out += raw
            _encode_into(out, value[key])
    elif kind is list or kind is tuple:
        out += _TAG_LIST
        out += len(value).to_bytes(4, "big")
        for item in value:
            _encode_into(out, item)
    elif kind is bytes:
        out += _TAG_BYTES
        out += len(value).to_bytes(4, "big")
        out += value
    else:
        _encode_slow(out, value)


def _encode_slow(out: bytearray, value: Any) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        out += _TAG_INT
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        out += struct.pack(">I", len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += struct.pack(">I", len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        keys = list(value.keys())
        if not all(isinstance(key, str) for key in keys):
            raise TypeError("canonical_encode requires string dict keys")
        out += _TAG_DICT
        out += struct.pack(">I", len(keys))
        for key in sorted(keys):
            _encode_into(out, key)
            _encode_into(out, value[key])
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}")


def stable_hash(value: Any) -> bytes:
    """SHA-256 digest of the canonical encoding of ``value``."""
    return hashlib.sha256(canonical_encode(value)).digest()
