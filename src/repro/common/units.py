"""Time and size units.

Simulated time is a float in **seconds** throughout the library. These
constants make magnitudes explicit at call sites, e.g.
``delay = 300 * MICROSECOND``.
"""

SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6

BYTES_PER_KB = 1000  # the paper's Table II uses kB = 1000 bytes


def format_duration(seconds: float) -> str:
    """Render a duration with a sensible unit for logs and reports."""
    if seconds < 0:
        return f"-{format_duration(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    minutes, secs = divmod(seconds, 60.0)
    return f"{int(minutes)} min {secs:.0f} s"
