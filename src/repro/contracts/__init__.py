"""On-chain contracts for the Debuglet control plane."""

from repro.contracts.debuglet_market import (
    DebugletMarket,
    ExecutionSlot,
    slot_key,
)

__all__ = ["DebugletMarket", "ExecutionSlot", "slot_key"]
