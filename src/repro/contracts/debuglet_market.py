"""The Debuglet marketplace smart contract (§IV-C).

Implements the paper's four state maps and entry functions:

- ``ExecutorAddressMap`` — ``"<AS>:<intf>"`` → executor node address;
- ``ExecutionSlotsMap`` — ``"<AS>:<intf>"`` → sorted, non-overlapping
  execution slots (cores, memory, bandwidth, start/end, price);
- ``ApplicationsMap`` — ``"<AS_c>:<intf_c>|<AS_s>:<intf_s>|<t0>|<t1>"`` →
  list of application object IDs stored on-chain;
- ``ResultsMap`` — application object ID → result object ID.

Entry functions: ``register_executor``, ``register_time_slot``,
``lookup_slot``, ``purchase_slot``, ``result_ready``, ``lookup_result``.
Payment is escrowed in the application objects at purchase time and paid
out to the executor by ``result_ready`` — enforcement by code, not trust.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.chain.contract import Contract, ExecutionContext, entry
from repro.common.ids import ObjectId

APPLICATION_KIND = "debuglet_application"
RESULT_KIND = "debuglet_result"


@dataclass(frozen=True)
class ExecutionSlot:
    """The 5-tuple a slot is advertised as (§IV-C, ExecutionSlotsMap)."""

    cores: int
    memory_mb: int
    bandwidth_mbps: int
    start: float
    end: float
    price: int  # MIST

    def as_dict(self) -> dict:
        return {
            "cores": self.cores,
            "memory_mb": self.memory_mb,
            "bandwidth_mbps": self.bandwidth_mbps,
            "start": self.start,
            "end": self.end,
            "price": self.price,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionSlot":
        return cls(
            cores=data["cores"],
            memory_mb=data["memory_mb"],
            bandwidth_mbps=data["bandwidth_mbps"],
            start=data["start"],
            end=data["end"],
            price=data["price"],
        )

    def fits(self, cores: int, memory_mb: int, bandwidth_mbps: int) -> bool:
        return (
            self.cores >= cores
            and self.memory_mb >= memory_mb
            and self.bandwidth_mbps >= bandwidth_mbps
        )

    def covers(self, start: float, end: float) -> bool:
        return self.start <= start and self.end >= end


def slot_key(asn: int, interface: int) -> str:
    """The ``<AS, intf>`` map key."""
    return f"{asn}:{interface}"


def applications_key(
    asn_c: int, intf_c: int, asn_s: int, intf_s: int, start: float, end: float
) -> str:
    return f"{asn_c}:{intf_c}|{asn_s}:{intf_s}|{start}|{end}"


class DebugletMarket(Contract):
    """The marketplace contract."""

    name = "debuglet_market"

    #: Sentinel recorded in the undo log for keys that did not exist.
    _ABSENT = object()

    def __init__(self) -> None:
        super().__init__()
        self.state = {
            "executor_address_map": {},  # "asn:intf" -> address
            "execution_slots_map": {},  # "asn:intf" -> [slot dict, ...]
            "applications_map": {},  # composite key -> [app id hex, ...]
            "results_map": {},  # app id hex -> result id hex
            "stake_map": {},  # "asn:intf" -> staked MIST (slashable)
            "conviction_map": {},  # "asn:intf" -> [conviction dict, ...]
            "auditor_map": {},  # "auditor" -> address (first-come)
        }
        self._journal: list[tuple[str, str, object]] | None = None

    # ------------------------------------------------- journaled mutation
    #
    # Every state write funnels through :meth:`_set`, which records the
    # key's old value (or absence) in a per-call undo log. That lets the
    # ledger roll a reverted call back by undoing the handful of touched
    # keys instead of deep-copying all four maps around every transaction
    # (the Contract.snapshot fallback, kept as the correctness oracle).
    # The invariant that makes this sound: values bound into the maps are
    # never mutated in place afterwards — rebinding via _set is the only
    # mutation path.

    def _set(self, map_name: str, key: str, value: object) -> None:
        target = self.state[map_name]
        if self._journal is not None:
            self._journal.append((map_name, key, target.get(key, self._ABSENT)))
        target[key] = value

    def _delete(self, map_name: str, key: str) -> None:
        """Journaled key removal. Rollback restores the recorded old
        value; a key that was absent rolls back via the ``_ABSENT``
        branch, which is a no-op delete of an already-missing key guarded
        below."""
        target = self.state[map_name]
        if key not in target:
            return
        if self._journal is not None:
            self._journal.append((map_name, key, target[key]))
        del target[key]

    def journal_begin(self) -> bool:
        self._journal = []
        return True

    def journal_commit(self) -> None:
        self._journal = None

    def journal_rollback(self) -> None:
        journal = self._journal if self._journal is not None else []
        self._journal = None
        for map_name, key, old in reversed(journal):
            if old is self._ABSENT:
                del self.state[map_name][key]
            else:
                self.state[map_name][key] = old

    # ----------------------------------------------------- bootstrapping

    @entry
    def register_executor(self, ctx: ExecutionContext, asn: int, interface: int) -> str:
        """Bind ``<asn, interface>`` to the caller's address.

        Re-registration by a *different* address aborts: an executor
        identity cannot be hijacked once claimed. Tokens attached to the
        call are escrowed as slashable stake (DESIGN.md §13): burned on
        conviction by the auditor, withdrawable otherwise.
        """
        key = slot_key(asn, interface)
        existing = self.state["executor_address_map"].get(key)
        ctx.require(
            existing is None or existing == ctx.sender,
            f"executor {key} already registered to another address",
        )
        self._set("executor_address_map", key, ctx.sender)
        if ctx.value > 0:
            staked = self.state["stake_map"].get(key, 0) + ctx.value
            self._set("stake_map", key, staked)
            ctx.emit("StakeDeposited", asn=asn, interface=interface, stake=staked)
        ctx.emit("ExecutorRegistered", asn=asn, interface=interface, address=ctx.sender)
        return key

    @entry
    def deposit_stake(self, ctx: ExecutionContext, asn: int, interface: int) -> int:
        """Top up the slashable stake for an already-registered executor."""
        key = slot_key(asn, interface)
        registered = self.state["executor_address_map"].get(key)
        ctx.require(registered is not None, f"executor {key} is not registered")
        ctx.require(registered == ctx.sender, "caller does not own this executor")
        ctx.require(ctx.value > 0, "stake deposit requires attached tokens")
        staked = self.state["stake_map"].get(key, 0) + ctx.value
        self._set("stake_map", key, staked)
        ctx.emit("StakeDeposited", asn=asn, interface=interface, stake=staked)
        return staked

    @entry
    def withdraw_stake(self, ctx: ExecutionContext, asn: int, interface: int) -> int:
        """Withdraw the full stake; only unconvicted executors may exit."""
        key = slot_key(asn, interface)
        registered = self.state["executor_address_map"].get(key)
        ctx.require(registered is not None, f"executor {key} is not registered")
        ctx.require(registered == ctx.sender, "caller does not own this executor")
        ctx.require(
            not self.state["conviction_map"].get(key),
            "stake of a convicted executor is forfeit",
        )
        stake = self.state["stake_map"].get(key, 0)
        ctx.require(stake > 0, "no stake to withdraw")
        self._set("stake_map", key, 0)
        ctx.transfer_from_contract(ctx.sender, stake)
        ctx.emit("StakeWithdrawn", asn=asn, interface=interface, stake=stake)
        return stake

    @entry
    def register_auditor(self, ctx: ExecutionContext) -> str:
        """Claim the marketplace auditor role (first come, non-hijackable).

        The reproduction models one trusted auditor per marketplace — the
        paper's initiator-side verification collapsed into a single
        principal. Re-registration by the same address is idempotent.
        """
        existing = self.state["auditor_map"].get("auditor")
        ctx.require(
            existing is None or existing == ctx.sender,
            "auditor role already claimed by another address",
        )
        self._set("auditor_map", "auditor", ctx.sender)
        ctx.emit("AuditorRegistered", address=ctx.sender)
        return ctx.sender

    @entry
    def slash_executor(
        self,
        ctx: ExecutionContext,
        asn: int,
        interface: int,
        application_id_hex: str,
        evidence_hash: bytes,
        reason: str,
    ) -> int:
        """Convict an executor of misbehavior on one application.

        Auditor-only. Burns the executor's entire remaining stake into the
        ledger's ``tokens_slashed`` sink (nobody is paid, so framing is
        profitless), records the conviction with its 32-byte evidence hash
        on-chain, and — pay-xor-refund-xor-slash — returns the
        application's still-escrowed payment to the initiator when the
        forged result was not yet paid out. A convicted executor can never
        publish again (``result_ready`` refuses) and its stake is forfeit.
        At most one conviction per (executor, application).
        """
        auditor = self.state["auditor_map"].get("auditor")
        ctx.require(auditor is not None, "no auditor registered")
        ctx.require(ctx.sender == auditor, "only the auditor may slash")
        ctx.require(len(evidence_hash) == 32, "evidence hash must be 32 bytes")
        key = slot_key(asn, interface)
        ctx.require(
            self.state["executor_address_map"].get(key) is not None,
            f"executor {key} is not registered",
        )
        convictions = self.state["conviction_map"].get(key, [])
        ctx.require(
            all(c["application"] != application_id_hex for c in convictions),
            "executor already convicted for this application",
        )

        app_id = ObjectId.from_hex(application_id_hex)
        app = ctx.objects.get(app_id)
        ctx.require(app.kind == APPLICATION_KIND, "object is not an application")
        ctx.require(
            app.data["asn"] == asn and app.data["interface"] == interface,
            "application was not assigned to this executor",
        )

        burned = self.state["stake_map"].get(key, 0)
        if burned > 0:
            self._set("stake_map", key, 0)
            ctx.burn_from_contract(burned)

        # Protective refund: if the convicted application's escrow was
        # neither paid out nor refunded, hand it back to the initiator so
        # a conviction leaves no tokens stranded in the contract.
        refunded = 0
        if (
            application_id_hex not in self.state["results_map"]
            and not app.data.get("refunded")
        ):
            refunded = app.data["tokens"]
            data = dict(app.data)
            data["refunded"] = True
            ctx.update_object(app_id, data)
            ctx.transfer_from_contract(app.data["initiator"], refunded)

        conviction = {
            "application": application_id_hex,
            "evidence": evidence_hash.hex(),
            "reason": reason,
            "time": ctx.time,
            "slashed": burned,
            "refunded": refunded,
        }
        self._set("conviction_map", key, convictions + [conviction])
        ctx.emit(
            "ExecutorSlashed",
            asn=asn,
            interface=interface,
            application_id=application_id_hex,
            slashed=burned,
            evidence=evidence_hash.hex(),
            reason=reason,
        )
        return burned

    @entry
    def register_time_slot(
        self, ctx: ExecutionContext, asn: int, interface: int, slots: list
    ) -> int:
        """Advertise available execution slots for ``<asn, interface>``.

        ``slots`` is a list of slot dicts. The caller must be the
        registered executor. Slots must not overlap existing ones; the
        merged list is kept sorted by start time.
        """
        key = slot_key(asn, interface)
        registered = self.state["executor_address_map"].get(key)
        ctx.require(registered is not None, f"executor {key} is not registered")
        ctx.require(registered == ctx.sender, "caller does not own this executor")

        new_slots = [ExecutionSlot.from_dict(s) for s in slots]
        for slot in new_slots:
            ctx.require(slot.end > slot.start, "slot must have positive duration")
            ctx.require(slot.price >= 0, "slot price must be non-negative")
        current = [
            ExecutionSlot.from_dict(s)
            for s in self.state["execution_slots_map"].get(key, [])
        ]
        merged = sorted(current + new_slots, key=lambda s: (s.start, s.end))
        for a, b in zip(merged, merged[1:]):
            ctx.require(a.end <= b.start, f"slots overlap at t={b.start}")
        self._set("execution_slots_map", key, [s.as_dict() for s in merged])
        ctx.emit("TimeSlotsRegistered", asn=asn, interface=interface, count=len(slots))
        return len(merged)

    @entry
    def withdraw_time_slots(self, ctx: ExecutionContext, asn: int, interface: int) -> int:
        """Withdraw every still-advertised (unsold) slot for ``<asn, interface>``.

        Only the registered executor may renege on its own inventory.
        Already-sold slots are unaffected — their escrow is settled by
        ``result_ready`` or ``refund_expired``. Returns the count removed.
        """
        key = slot_key(asn, interface)
        registered = self.state["executor_address_map"].get(key)
        ctx.require(registered is not None, f"executor {key} is not registered")
        ctx.require(registered == ctx.sender, "caller does not own this executor")
        withdrawn = len(self.state["execution_slots_map"].get(key, []))
        self._set("execution_slots_map", key, [])
        ctx.emit(
            "TimeSlotsWithdrawn", asn=asn, interface=interface, count=withdrawn
        )
        return withdrawn

    @entry
    def deregister_executor(self, ctx: ExecutionContext, asn: int, interface: int) -> int:
        """Gracefully leave the marketplace (fleet retire path).

        Owner-only. Clears the unsold slot inventory and the address
        binding, and settles the remaining stake: returned to the owner
        when unconvicted, burned when convicted (forfeit, matching
        ``withdraw_stake``). Conviction records persist — a convicted
        identity that re-registers still cannot publish. After this call
        ``result_ready`` refuses the address (no binding), so retire must
        come after every in-flight publication. Returns the stake settled.
        """
        key = slot_key(asn, interface)
        registered = self.state["executor_address_map"].get(key)
        ctx.require(registered is not None, f"executor {key} is not registered")
        ctx.require(registered == ctx.sender, "caller does not own this executor")
        stake = self.state["stake_map"].get(key, 0)
        convicted = bool(self.state["conviction_map"].get(key))
        if stake > 0:
            if convicted:
                ctx.burn_from_contract(stake)
            else:
                ctx.transfer_from_contract(ctx.sender, stake)
        self._delete("stake_map", key)
        self._delete("execution_slots_map", key)
        self._delete("executor_address_map", key)
        ctx.emit(
            "ExecutorDeregistered",
            asn=asn,
            interface=interface,
            address=ctx.sender,
            stake_settled=stake,
            stake_burned=convicted and stake > 0,
        )
        return stake

    # ----------------------------------------- initiating a measurement

    @entry
    def lookup_slot(
        self,
        ctx: ExecutionContext,
        asn_c: int,
        intf_c: int,
        asn_s: int,
        intf_s: int,
        cores: int,
        memory_mb: int,
        bandwidth_mbps: int,
        duration: float,
        earliest: float,
    ) -> dict:
        """Find the first window both executors can accommodate.

        Returns the window ``[start, start + duration)``, per-side slot
        start times (needed by ``purchase_slot``), and the total price.
        """
        # Slot lists are kept sorted by start, which makes the pair scan
        # prunable: slots that end before the earliest feasible window
        # cannot cover it, and once a best window is known, any slot
        # starting at or after it can only yield start >= best (candidate
        # start is the max of both slot starts), so the sorted scan can
        # stop there. Same result as the exhaustive O(k*m) product — the
        # pruned pairs could never strictly improve on ``best``.
        horizon = earliest + duration
        client_slots = [
            s
            for s in self._fitting_slots(
                ctx, asn_c, intf_c, cores, memory_mb, bandwidth_mbps
            )
            if s["end"] >= horizon
        ]
        server_slots = [
            s
            for s in self._fitting_slots(
                ctx, asn_s, intf_s, cores, memory_mb, bandwidth_mbps
            )
            if s["end"] >= horizon
        ]
        best: dict | None = None
        for cslot in client_slots:
            if best is not None and cslot["start"] >= best["start"]:
                break
            for sslot in server_slots:
                if best is not None and sslot["start"] >= best["start"]:
                    break
                start = max(cslot["start"], sslot["start"], earliest)
                end = start + duration
                if (
                    cslot["start"] <= start
                    and cslot["end"] >= end
                    and sslot["start"] <= start
                    and sslot["end"] >= end
                ):
                    candidate = {
                        "start": start,
                        "end": end,
                        "client_slot_start": cslot["start"],
                        "server_slot_start": sslot["start"],
                        "price_client": cslot["price"],
                        "price_server": sslot["price"],
                        "total_price": cslot["price"] + sslot["price"],
                    }
                    if best is None or candidate["start"] < best["start"]:
                        best = candidate
        ctx.require(best is not None, "no common execution slot available")
        return best

    def _fitting_slots(
        self,
        ctx: ExecutionContext,
        asn: int,
        interface: int,
        cores: int,
        memory_mb: int,
        bandwidth_mbps: int,
    ) -> list[dict]:
        # Works on the raw stored slot dicts: a fleet-scale purchase storm
        # scans thousands of slots per lookup, and materializing an
        # ExecutionSlot per candidate dominated the whole contract-call
        # path. Dataclass instances are built only for slots that leave
        # this file (consumed slots, off-chain views).
        key = slot_key(asn, interface)
        ctx.require(
            key in self.state["executor_address_map"],
            f"executor {key} is not registered",
        )
        return [
            slot
            for slot in self.state["execution_slots_map"].get(key, [])
            if slot["cores"] >= cores
            and slot["memory_mb"] >= memory_mb
            and slot["bandwidth_mbps"] >= bandwidth_mbps
        ]

    @entry
    def purchase_slot(
        self,
        ctx: ExecutionContext,
        asn_c: int,
        intf_c: int,
        asn_s: int,
        intf_s: int,
        client_slot_start: float,
        server_slot_start: float,
        window_start: float,
        window_end: float,
        client_bytecode: bytes,
        client_manifest: dict,
        server_bytecode: bytes,
        server_manifest: dict,
    ) -> dict:
        """Buy the two slots and submit both applications.

        The attached ``value`` must cover both slot prices; the tokens are
        embedded in the two application objects and paid to each executor
        on ``result_ready``. Excess value is refunded. Emits one
        ``ApplicationSubmitted`` event per executor.

        Both applications are statically verified against their manifests
        *before* any slot is consumed or token escrowed: a Debuglet that
        fails verification reverts the whole purchase, so bad bytecode
        never ties up money or marketplace inventory.
        """
        _verify_application_wire(ctx, client_bytecode, "client")
        _verify_application_wire(ctx, server_bytecode, "server")
        return self._do_purchase(
            ctx,
            asn_c, intf_c, asn_s, intf_s,
            client_slot_start, server_slot_start, window_start, window_end,
            client_fields={
                "bytecode": store_bytecode(client_bytecode),
                "manifest": client_manifest,
            },
            server_fields={
                "bytecode": store_bytecode(server_bytecode),
                "manifest": server_manifest,
            },
        )

    @entry
    def purchase_slot_hashed(
        self,
        ctx: ExecutionContext,
        asn_c: int,
        intf_c: int,
        asn_s: int,
        intf_s: int,
        client_slot_start: float,
        server_slot_start: float,
        window_start: float,
        window_end: float,
        client_code_hash: bytes,
        client_manifest: dict,
        server_code_hash: bytes,
        server_manifest: dict,
    ) -> dict:
        """Like ``purchase_slot`` but with the §V-B cost optimization:
        only the 32-byte hashes of the applications go on-chain; the code
        itself ships out of band (see
        :class:`repro.core.offchain.OffChainCodeStore`) and executors
        verify it against the hash before running it."""
        ctx.require(len(client_code_hash) == 32, "client code hash must be 32 bytes")
        ctx.require(len(server_code_hash) == 32, "server code hash must be 32 bytes")
        return self._do_purchase(
            ctx,
            asn_c, intf_c, asn_s, intf_s,
            client_slot_start, server_slot_start, window_start, window_end,
            client_fields={
                "bytecode_hash": client_code_hash,
                "manifest": client_manifest,
            },
            server_fields={
                "bytecode_hash": server_code_hash,
                "manifest": server_manifest,
            },
        )

    def _do_purchase(
        self,
        ctx: ExecutionContext,
        asn_c: int,
        intf_c: int,
        asn_s: int,
        intf_s: int,
        client_slot_start: float,
        server_slot_start: float,
        window_start: float,
        window_end: float,
        *,
        client_fields: dict,
        server_fields: dict,
    ) -> dict:
        client_slot = self._consume_slot(ctx, asn_c, intf_c, client_slot_start)
        server_slot = self._consume_slot(ctx, asn_s, intf_s, server_slot_start)
        total = client_slot.price + server_slot.price
        ctx.require(
            ctx.value >= total,
            f"attached {ctx.value} tokens do not cover price {total}",
        )
        if ctx.value > total:
            ctx.transfer_from_contract(ctx.sender, ctx.value - total)

        window = {"start": window_start, "end": window_end}
        server_data = {
            "role": "server",
            "asn": asn_s,
            "interface": intf_s,
            "tokens": server_slot.price,
            "window": window,
            "initiator": ctx.sender,
            "peer": "",
        }
        server_data.update(server_fields)
        server_id = ctx.create_object(APPLICATION_KIND, server_data)
        client_data = {
            "role": "client",
            "asn": asn_c,
            "interface": intf_c,
            "tokens": client_slot.price,
            "window": window,
            "initiator": ctx.sender,
            "peer": server_id.hex(),
        }
        client_data.update(client_fields)
        client_id = ctx.create_object(APPLICATION_KIND, client_data)
        server_obj = ctx.objects.get(server_id)
        data = dict(server_obj.data)
        data["peer"] = client_id.hex()
        ctx.update_object(server_id, data)

        key = applications_key(asn_c, intf_c, asn_s, intf_s, window_start, window_end)
        # Rebind rather than extend in place: the undo log records whole
        # old values, so in-place mutation of a journaled list would leak
        # through a rollback.
        existing = self.state["applications_map"].get(key, [])
        self._set(
            "applications_map", key, existing + [client_id.hex(), server_id.hex()]
        )
        ctx.emit(
            "ApplicationSubmitted",
            asn=asn_c,
            interface=intf_c,
            application_id=client_id.hex(),
            role="client",
            window_start=window_start,
        )
        ctx.emit(
            "ApplicationSubmitted",
            asn=asn_s,
            interface=intf_s,
            application_id=server_id.hex(),
            role="server",
            window_start=window_start,
        )
        return {
            "client_application": client_id.hex(),
            "server_application": server_id.hex(),
            "total_price": total,
        }

    def _consume_slot(
        self, ctx: ExecutionContext, asn: int, interface: int, slot_start: float
    ) -> ExecutionSlot:
        key = slot_key(asn, interface)
        slots = self.state["execution_slots_map"].get(key, [])
        for index, slot in enumerate(slots):
            if slot["start"] == slot_start:
                # Rebind a new list sharing the surviving slot dicts: slot
                # dicts are never mutated after being bound into the map,
                # so sharing is safe under the journal invariant — and it
                # skips re-encoding the whole inventory per purchase.
                self._set(
                    "execution_slots_map", key, slots[:index] + slots[index + 1:]
                )
                return ExecutionSlot.from_dict(slot)
        ctx.abort(f"no slot starting at {slot_start} on executor {key}")
        raise AssertionError("unreachable")  # pragma: no cover

    # ----------------------------------------------------------- results

    @entry
    def result_ready(
        self, ctx: ExecutionContext, application_id_hex: str, result: bytes
    ) -> str:
        """Publish a result and collect the embedded payment.

        Only the registered executor for the application's
        ``<AS, interface>`` may call this, and only once per application.
        """
        app_id = ObjectId.from_hex(application_id_hex)
        app = ctx.objects.get(app_id)
        ctx.require(app.kind == APPLICATION_KIND, "object is not an application")
        key = slot_key(app.data["asn"], app.data["interface"])
        executor_address = self.state["executor_address_map"].get(key)
        ctx.require(
            executor_address == ctx.sender,
            "caller is not the executor assigned to this application",
        )
        ctx.require(
            not self.state["conviction_map"].get(key),
            "executor was slashed for misbehavior and may not publish",
        )
        ctx.require(
            application_id_hex not in self.state["results_map"],
            "result already published for this application",
        )
        ctx.require(
            not app.data.get("refunded"),
            "application escrow was refunded after its window expired",
        )
        result_id = ctx.create_object(
            RESULT_KIND,
            {
                "application": application_id_hex,
                "result": result,
                "executor": ctx.sender,
                "published_at": ctx.time,
            },
        )
        ctx.transfer_from_contract(ctx.sender, app.data["tokens"])
        self._set("results_map", application_id_hex, result_id.hex())
        ctx.emit(
            "ResultReady",
            application_id=application_id_hex,
            result_id=result_id.hex(),
            initiator=app.data["initiator"],
        )
        return result_id.hex()

    @entry
    def refund_expired(self, ctx: ExecutionContext, application_id_hex: str) -> int:
        """Reclaim the escrow of an application whose window expired unserved.

        The counterpart of ``result_ready``: exactly one of the two ever
        pays out a given application's tokens. Only the purchasing
        initiator may call it, only after the execution window has ended,
        and only while no result is published — so an executor can still
        collect by publishing in time, and a refunded application can
        never be paid out afterwards (``result_ready`` checks the
        ``refunded`` flag). Returns the refunded token amount.
        """
        app_id = ObjectId.from_hex(application_id_hex)
        app = ctx.objects.get(app_id)
        ctx.require(app.kind == APPLICATION_KIND, "object is not an application")
        ctx.require(
            ctx.sender == app.data["initiator"],
            "caller did not purchase this application",
        )
        ctx.require(
            application_id_hex not in self.state["results_map"],
            "result already published; payment went to the executor",
        )
        ctx.require(not app.data.get("refunded"), "application already refunded")
        ctx.require(
            ctx.time >= app.data["window"]["end"],
            "execution window has not expired yet",
        )
        tokens = app.data["tokens"]
        data = dict(app.data)
        data["refunded"] = True
        ctx.update_object(app_id, data)
        ctx.transfer_from_contract(ctx.sender, tokens)
        ctx.emit(
            "ApplicationRefunded",
            application_id=application_id_hex,
            initiator=ctx.sender,
            tokens=tokens,
        )
        return tokens

    @entry
    def lookup_result(self, ctx: ExecutionContext, application_id_hex: str) -> dict:
        """Fetch a published result by application ID (§IV-C LookupResult)."""
        result_hex = self.state["results_map"].get(application_id_hex)
        ctx.require(result_hex is not None, "no result for this application")
        result_obj = ctx.objects.get(ObjectId.from_hex(result_hex))
        return {
            "result_id": result_hex,
            "result": result_obj.data["result"],
            "executor": result_obj.data["executor"],
            "published_at": result_obj.data["published_at"],
        }

    # ------------------------------------------------------------ views

    def executor_address(self, asn: int, interface: int) -> str | None:
        """Off-chain read of ExecutorAddressMap."""
        return self.state["executor_address_map"].get(slot_key(asn, interface))

    def available_slots(self, asn: int, interface: int) -> list[ExecutionSlot]:
        """Off-chain read of ExecutionSlotsMap."""
        return [
            ExecutionSlot.from_dict(s)
            for s in self.state["execution_slots_map"].get(slot_key(asn, interface), [])
        ]

    def stake_of(self, asn: int, interface: int) -> int:
        """Off-chain read of the slashable stake."""
        return self.state["stake_map"].get(slot_key(asn, interface), 0)

    def convictions_of(self, asn: int, interface: int) -> list[dict]:
        """Off-chain read of the conviction records."""
        return list(self.state["conviction_map"].get(slot_key(asn, interface), []))

    def is_convicted(self, asn: int, interface: int) -> bool:
        """Whether the executor has at least one recorded conviction."""
        return bool(self.state["conviction_map"].get(slot_key(asn, interface)))


def store_bytecode(bytecode: bytes) -> bytes:
    """Identity today; the §V-B off-chain optimization can swap this for
    ``sha256(bytecode)`` storage with the code shipped out of band."""
    return bytecode


def _verify_application_wire(ctx: ExecutionContext, wire: bytes, label: str) -> None:
    """Statically verify one shipped application; revert when it fails.

    Runs before any slot is consumed, so a rejected Debuglet costs the
    buyer nothing but gas. ``purchase_slot_hashed`` cannot do this — only
    the 32-byte hash is on-chain — so there the executor-side
    re-verification (``Executor.admit``) is the sole static gate.

    Imports are deliberately local and limited to the sandbox layer: the
    contract decodes the wire itself rather than pulling in
    ``repro.core.application``, which would create an import cycle.
    """
    from repro.sandbox.assembler import assemble
    from repro.sandbox.manifest import Manifest
    from repro.sandbox.verifier import verify_module

    try:
        payload = json.loads(wire.decode("utf-8"))
        source = payload["source"]
        manifest = Manifest.from_dict(payload["manifest"])
    except Exception as exc:
        ctx.require(False, f"{label} application wire is malformed: {exc}")
        return
    try:
        module = assemble(source)
    except Exception as exc:
        ctx.require(False, f"{label} bytecode does not assemble: {exc}")
        return
    report = verify_module(module, manifest)
    ctx.require(
        report.ok,
        f"{label} bytecode failed verification: "
        + "; ".join(diag.render() for diag in report.errors),
    )
    # Purchase is the first time most modules are seen; translating here
    # warms the process-wide compile cache so executor admission and every
    # session VM afterwards reuse the threaded code by hash.
    from repro.sandbox.compile import get_compiled

    get_compiled(module)
