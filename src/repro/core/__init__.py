"""Debuglet core: the paper's primary contribution.

Executors (policy-constrained remote code execution at border routers),
applications and manifests, the marketplace-driven measurement workflow,
fault localization strategies, result certification and third-party
verification, plus the §VI discussion features (decentralized discovery,
deployment analysis, anti-gaming cross-validation).
"""

from repro.core.archive import (
    ArchiveContract,
    ArchivedMeasurement,
    OnsetReport,
    ResultArchive,
    degradation_onset,
)
from repro.core.offchain import OffChainCodeStore
from repro.core.privacy import ResultSealer, sealed_native_echo_client
from repro.core.antigaming import (
    CrossValidationReport,
    CrossValidator,
    disable_prioritization,
    enable_prioritization,
)
from repro.core.application import DebugletApplication
from repro.core.audit import (
    AuditConfig,
    AuditFinding,
    Auditor,
    ReplayReport,
    SegmentCrossValidator,
    audit_record,
    replay_interaction_log,
)
from repro.core.byzantine import (
    AttackRecord,
    ByzantineCorruptor,
    ByzantineStrategy,
)
from repro.core.deployment import (
    DeploymentReport,
    Element,
    analyze_deployment,
    path_elements,
    sweep_deployment_fraction,
)
from repro.core.discovery import (
    BilateralAgreement,
    DecentralizedDirectory,
    ExecutorAdvertisement,
)
from repro.core.fleetmgr import (
    AdmissionDecision,
    CapabilityRecord,
    ExecutorState,
    FleetManager,
    FleetMember,
)
from repro.core.placement import (
    PlacementPlan,
    VantageCandidate,
    candidates_from_directory,
    evaluate_strategies,
    plan_placement,
    score_placement,
    synthetic_candidates,
)
from repro.core.executor import (
    ExecutionRecord,
    Executor,
    ResultCertificate,
    executor_data_address,
    executor_host_name,
)
from repro.core.localization import (
    FaultJudge,
    FaultLocalizer,
    LocalizationReport,
    SegmentVerdict,
    estimate_baseline_rtt,
)
from repro.core.marketplace import (
    TERMINAL_STATES,
    ExecutorAgent,
    Initiator,
    MeasurementOutcome,
    MeasurementSession,
    SessionState,
    decode_result_payload,
    encode_result_payload,
)
from repro.core.probing import (
    ExecutorFleet,
    SegmentMeasurement,
    SegmentProber,
)
from repro.core.results import EchoMeasurement, OneWayMeasurement, ServerReport
from repro.core.verification import ChainVerifier, VerifiedResult, verify_certificate

__all__ = [
    "AdmissionDecision",
    "ArchiveContract",
    "ArchivedMeasurement",
    "AttackRecord",
    "AuditConfig",
    "AuditFinding",
    "Auditor",
    "BilateralAgreement",
    "CapabilityRecord",
    "ByzantineCorruptor",
    "ByzantineStrategy",
    "OffChainCodeStore",
    "OnsetReport",
    "ResultArchive",
    "ResultSealer",
    "sealed_native_echo_client",
    "degradation_onset",
    "ChainVerifier",
    "CrossValidationReport",
    "CrossValidator",
    "DebugletApplication",
    "DecentralizedDirectory",
    "DeploymentReport",
    "EchoMeasurement",
    "Element",
    "ExecutionRecord",
    "Executor",
    "ExecutorAdvertisement",
    "ExecutorAgent",
    "ExecutorFleet",
    "ExecutorState",
    "FaultJudge",
    "FaultLocalizer",
    "FleetManager",
    "FleetMember",
    "Initiator",
    "LocalizationReport",
    "MeasurementOutcome",
    "MeasurementSession",
    "OneWayMeasurement",
    "PlacementPlan",
    "ReplayReport",
    "ResultCertificate",
    "SegmentCrossValidator",
    "SegmentMeasurement",
    "SegmentProber",
    "SegmentVerdict",
    "ServerReport",
    "SessionState",
    "TERMINAL_STATES",
    "VantageCandidate",
    "VerifiedResult",
    "analyze_deployment",
    "audit_record",
    "candidates_from_directory",
    "decode_result_payload",
    "disable_prioritization",
    "enable_prioritization",
    "encode_result_payload",
    "estimate_baseline_rtt",
    "evaluate_strategies",
    "executor_data_address",
    "executor_host_name",
    "path_elements",
    "plan_placement",
    "replay_interaction_log",
    "score_placement",
    "sweep_deployment_fraction",
    "synthetic_candidates",
    "verify_certificate",
]
