"""Detecting ISPs that game Debuglet measurements (§VI-E).

An AS wanting to hide its faults can prioritize packets to/from Debuglet
executors (simulated by ``DirectedChannel.priority_addresses``). The paper
argues this is detectable by cross-validation: measurements from diverse
vantage points — and comparisons against the performance end-host data
traffic actually experiences — expose the discrepancy. This module
implements that cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netsim.conduit import DirectedChannel
from repro.netsim.packet import Address


def enable_prioritization(
    channels: list[DirectedChannel], executor_addresses: list[Address]
) -> None:
    """Make ``channels`` prioritize traffic to/from the given executors —
    the attack an honest network never performs."""
    for channel in channels:
        channel.priority_addresses.update(executor_addresses)


def disable_prioritization(channels: list[DirectedChannel]) -> None:
    for channel in channels:
        channel.priority_addresses.clear()


@dataclass
class CrossValidationReport:
    """Verdict of one executor-vs-endhost comparison."""

    executor_mean_rtt_ms: float
    endhost_mean_rtt_ms: float
    executor_loss: float
    endhost_loss: float
    rtt_gap_ms: float
    loss_gap: float
    gaming_suspected: bool
    reasons: list[str] = field(default_factory=list)


@dataclass
class CrossValidator:
    """Compares Debuglet measurements with end-host experience.

    Gaming is suspected when executor-measured performance is *better*
    than end-host-measured performance on the same path by more than the
    tolerances — honest differential treatment cannot make executor
    traffic systematically faster than identical data traffic between
    the same ASes.
    """

    rtt_tolerance_ms: float = 1.5
    loss_tolerance: float = 0.01

    def compare(
        self,
        *,
        executor_rtts_ms: np.ndarray,
        executor_loss: float,
        endhost_rtts_ms: np.ndarray,
        endhost_loss: float,
    ) -> CrossValidationReport:
        executor_mean = float(np.mean(executor_rtts_ms)) if len(executor_rtts_ms) else float("nan")
        endhost_mean = float(np.mean(endhost_rtts_ms)) if len(endhost_rtts_ms) else float("nan")
        rtt_gap = endhost_mean - executor_mean
        loss_gap = endhost_loss - executor_loss
        reasons = []
        if rtt_gap > self.rtt_tolerance_ms:
            reasons.append(
                f"end-host RTT exceeds executor RTT by {rtt_gap:.2f} ms"
            )
        if loss_gap > self.loss_tolerance:
            reasons.append(
                f"end-host loss exceeds executor loss by {loss_gap:.3f}"
            )
        return CrossValidationReport(
            executor_mean_rtt_ms=executor_mean,
            endhost_mean_rtt_ms=endhost_mean,
            executor_loss=executor_loss,
            endhost_loss=endhost_loss,
            rtt_gap_ms=rtt_gap,
            loss_gap=loss_gap,
            gaming_suspected=bool(reasons),
            reasons=reasons,
        )

    def consistency_across_vantages(
        self, means_by_vantage_ms: dict[str, float], *, tolerance_ms: float = 2.0
    ) -> tuple[bool, float]:
        """Second check: prefix-targeted prioritization cannot cover every
        vantage point, so per-vantage means spread apart. Returns
        (suspicious, spread_ms)."""
        values = list(means_by_vantage_ms.values())
        if len(values) < 2:
            return False, 0.0
        spread = max(values) - min(values)
        return spread > tolerance_ms, spread
