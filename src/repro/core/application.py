"""Debuglet applications: what an initiator ships to an executor.

Bundles the program (sandboxed module or native body), its manifest, the
port it listens on, and the pinned forwarding path. Sandboxed applications
serialize to a JSON wire format whose ``source`` is the assembly text —
the analogue of shipping WA bytecode through the marketplace — and any
executor can reassemble and run them. Native applications exist only as
local baselines (Fig 8) and do not serialize.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError, ManifestError
from repro.netsim.topology import PathHop
from repro.sandbox.assembler import assemble
from repro.sandbox.manifest import Manifest
from repro.sandbox.module import Module
from repro.sandbox.program import NativeProgram, RunnableProgram, VMProgram
from repro.sandbox.programs import StockProgram


@dataclass
class DebugletApplication:
    """One deployable measurement application."""

    name: str
    manifest: Manifest
    module: Module | None = None
    native_factory: Callable[[], NativeProgram] | None = None
    listen_port: int | None = None
    path: list[PathHop] | None = None
    args: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if (self.module is None) == (self.native_factory is None):
            raise ConfigurationError(
                "application needs exactly one of module / native_factory"
            )
        if self.module is not None:
            self.manifest.validate_module(self.module)

    @property
    def is_sandboxed(self) -> bool:
        return self.module is not None

    def instantiate(self, *, obs=None, tier: str | None = None) -> RunnableProgram:
        """A fresh runnable program for one execution.

        ``obs`` (a :class:`repro.obs.Observability`) flows into the VM so
        sandboxed runs report fuel, traps, and host-op counts. ``tier``
        overrides the sandbox execution tier (default: the process-wide
        :data:`repro.sandbox.program.DEFAULT_TIER`, normally "auto" —
        the compiled tier with reference fallback); the translation is
        shared through the compile cache, so per-session instantiation
        is a hash lookup.
        """
        if self.module is not None:
            return VMProgram(
                self.module,
                fuel_limit=self.manifest.max_instructions,
                obs=obs,
                tier=tier,
            )
        assert self.native_factory is not None
        return self.native_factory()

    def code_hash(self) -> bytes:
        """What the executor certifies it ran."""
        if self.module is not None:
            return self.module.code_hash()
        import hashlib

        return hashlib.sha256(f"native:{self.name}".encode("utf-8")).digest()

    @property
    def size_bytes(self) -> int:
        """On-chain storage size of the shipped application."""
        return len(self.to_wire())

    # --------------------------------------------------- wire format

    def to_wire(self) -> bytes:
        """Serialize for on-chain shipping (sandboxed applications only)."""
        if self.module is None:
            raise ConfigurationError("native applications cannot be shipped")
        payload = {
            "name": self.name,
            "source": self.module.source,
            "manifest": self.manifest.as_dict(),
            "listen_port": self.listen_port,
            "path": _encode_path(self.path),
            "args": list(self.args),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_wire(cls, wire: bytes) -> "DebugletApplication":
        try:
            payload = json.loads(wire.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ManifestError(f"malformed application wire format: {exc}") from exc
        module = assemble(payload["source"])
        return cls(
            name=payload["name"],
            manifest=Manifest.from_dict(payload["manifest"]),
            module=module,
            listen_port=payload.get("listen_port"),
            path=_decode_path(payload.get("path")),
            args=tuple(payload.get("args", [])),
        )

    # --------------------------------------------------- conveniences

    @classmethod
    def from_stock(
        cls,
        name: str,
        stock: StockProgram,
        *,
        listen_port: int | None = None,
        path: list[PathHop] | None = None,
    ) -> "DebugletApplication":
        return cls(
            name=name,
            manifest=stock.manifest,
            module=stock.module,
            listen_port=listen_port,
            path=path,
        )


def _encode_path(path: list[PathHop] | None) -> list | None:
    if path is None:
        return None
    return [
        [hop.asn, -1 if hop.ingress is None else hop.ingress,
         -1 if hop.egress is None else hop.egress]
        for hop in path
    ]


def _decode_path(encoded: list | None) -> list[PathHop] | None:
    if encoded is None:
        return None
    return [
        PathHop(asn, None if ingress < 0 else ingress, None if egress < 0 else egress)
        for asn, ingress, egress in encoded
    ]
