"""Result archiving and age-of-information analysis (§VI-F).

The paper: immediate diagnostics need fresh results, but *historical*
measurements over a fixed path help identify **when** a degradation
started and where. Archiving does not need to be on-chain — "blockchain
explorers or network information monitoring sites could retain
measurements... and the hash of measurements would be stored on the chain
for verifiability purposes."

This module implements exactly that split:

- :class:`ArchiveContract` — a tiny contract storing only
  ``(segment key, measured-at, sha256)`` anchor objects;
- :class:`ResultArchive` — the off-chain retention site holding the full
  measurement records, each verifiable against its on-chain anchor;
- :func:`degradation_onset` — the trend analysis the paper motivates:
  given an archived RTT history, find the time the path started degrading.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.chain.contract import Contract, ExecutionContext, entry
from repro.chain.ledger import Ledger, Wallet
from repro.common.errors import DebugletError, VerificationError
from repro.common.serialize import canonical_encode

ANCHOR_KIND = "measurement_anchor"


class ArchiveContract(Contract):
    """On-chain anchors for off-chain measurement archives."""

    name = "result_archive"

    def __init__(self) -> None:
        super().__init__()
        self.state = {"anchors": {}}  # segment key -> [anchor object hex]

    @entry
    def anchor(
        self, ctx: ExecutionContext, segment_key: str, measured_at: float,
        digest: bytes,
    ) -> str:
        """Record the hash of one archived measurement."""
        ctx.require(len(digest) == 32, "digest must be 32 bytes")
        anchor_id = ctx.create_object(
            ANCHOR_KIND,
            {
                "segment": segment_key,
                "measured_at": measured_at,
                "digest": digest,
                "archivist": ctx.sender,
            },
        )
        self.state["anchors"].setdefault(segment_key, []).append(anchor_id.hex())
        ctx.emit("MeasurementAnchored", segment=segment_key, anchor=anchor_id.hex())
        return anchor_id.hex()

    def anchors_for(self, segment_key: str) -> list[str]:
        """Off-chain read of the anchor index."""
        return list(self.state["anchors"].get(segment_key, []))


@dataclass(frozen=True)
class ArchivedMeasurement:
    """One retained measurement of one path segment."""

    segment_key: str
    measured_at: float
    mean_rtt_ms: float
    loss_rate: float
    result: bytes  # the raw certified result bytes

    def digest(self) -> bytes:
        return hashlib.sha256(
            canonical_encode(
                {
                    "segment": self.segment_key,
                    "measured_at": self.measured_at,
                    "mean_rtt_ms": self.mean_rtt_ms,
                    "loss_rate": self.loss_rate,
                    "result": self.result,
                }
            )
        ).digest()


class ResultArchive:
    """The off-chain retention site, anchored to the chain per entry."""

    def __init__(self, ledger: Ledger, contract: ArchiveContract, wallet: Wallet) -> None:
        self.ledger = ledger
        self.contract = contract
        self.wallet = wallet
        self._entries: dict[str, ArchivedMeasurement] = {}  # anchor hex -> entry

    def archive(self, measurement: ArchivedMeasurement) -> str:
        """Retain ``measurement`` off-chain and anchor its hash on-chain.

        Returns the anchor object ID (hex) — the handle a verifier uses.
        """
        receipt = self.wallet.must_call(
            self.contract.name,
            "anchor",
            measurement.segment_key,
            measurement.measured_at,
            measurement.digest(),
        )
        anchor_hex = receipt.return_value
        self._entries[anchor_hex] = measurement
        return anchor_hex

    def fetch(self, anchor_hex: str) -> ArchivedMeasurement:
        entry_value = self._entries.get(anchor_hex)
        if entry_value is None:
            raise DebugletError(f"archive holds no entry for anchor {anchor_hex}")
        return entry_value

    def verify(self, anchor_hex: str) -> ArchivedMeasurement:
        """Check the retained entry against its on-chain anchor."""
        measurement = self.fetch(anchor_hex)
        from repro.common.ids import ObjectId

        anchor_obj = self.ledger.objects.get(ObjectId.from_hex(anchor_hex))
        if anchor_obj.kind != ANCHOR_KIND:
            raise VerificationError("anchor object has wrong kind")
        if anchor_obj.data["digest"] != measurement.digest():
            raise VerificationError("archived entry does not match its anchor")
        if anchor_obj.data["segment"] != measurement.segment_key:
            raise VerificationError("anchor names a different segment")
        return measurement

    def history(self, segment_key: str, *, verified: bool = True) -> list[ArchivedMeasurement]:
        """All retained measurements of a segment, oldest first.

        With ``verified`` (default), each entry is checked against its
        on-chain anchor — tampered retention is surfaced, not returned.
        """
        entries = []
        for anchor_hex in self.contract.anchors_for(segment_key):
            if anchor_hex not in self._entries:
                continue  # retained elsewhere or expired (off-chain is best effort)
            entry_value = self.verify(anchor_hex) if verified else self.fetch(anchor_hex)
            entries.append(entry_value)
        entries.sort(key=lambda e: e.measured_at)
        return entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class OnsetReport:
    """When a segment's performance started degrading."""

    onset_at: float | None
    baseline_rtt_ms: float
    degraded_rtt_ms: float | None

    @property
    def degradation_detected(self) -> bool:
        return self.onset_at is not None


def degradation_onset(
    history: list[ArchivedMeasurement],
    *,
    baseline_count: int = 3,
    rtt_slack_ms: float = 3.0,
    loss_threshold: float = 0.05,
) -> OnsetReport:
    """Find the first archived measurement where the segment degraded.

    The baseline is the mean of the first ``baseline_count`` entries;
    the onset is the first later entry whose RTT exceeds baseline +
    ``rtt_slack_ms`` or whose loss exceeds ``loss_threshold``.
    """
    if len(history) < baseline_count + 1:
        raise DebugletError(
            f"need more than {baseline_count} archived measurements"
        )
    baseline = float(
        np.mean([entry.mean_rtt_ms for entry in history[:baseline_count]])
    )
    for entry in history[baseline_count:]:
        if entry.mean_rtt_ms > baseline + rtt_slack_ms or entry.loss_rate > loss_threshold:
            return OnsetReport(
                onset_at=entry.measured_at,
                baseline_rtt_ms=baseline,
                degraded_rtt_ms=entry.mean_rtt_ms,
            )
    return OnsetReport(onset_at=None, baseline_rtt_ms=baseline, degraded_rtt_ms=None)
