"""Trustfree result verification: audits, cross-validation, slashing (§13).

The certificate chain (:mod:`repro.core.verification`) proves a result
was published by the registered executor for the right code at the right
vantage — but nothing stops that executor from *lying about what it
measured*. This module adds the three defenses that make results
trustfree against the Byzantine strategies of
:mod:`repro.core.byzantine`:

1. **Challenge–response replay audits.** Executors keep a transcript of
   every sandbox boundary crossing (``ExecutionRecord.interaction_log``).
   An audited executor must surrender it, and
   :func:`replay_interaction_log` re-drives the logged inputs (begin
   args, resume results, received packets) through a fresh *reference*
   interpreter — the same trap-bail replay machinery
   ``sandbox/compile.py`` uses for compiled-tier exactness — and diffs
   every host call, the emitted result bytes, and the fuel bit-for-bit.
   A published result the transcript cannot reproduce is a conviction.

2. **Cross-validation of overlapping path segments** (§VI). Sessions
   measuring the same AS pair — directly, in reverse, or composed from
   adjacent sub-segments measured by *independent* executors — must
   agree. Votes (one per executor per AS pair, plus one composed vote
   per intermediate AS) are clustered by mutual tolerance; with at
   least ``quorum`` independent votes, every vote outside the majority
   cluster convicts its executor. Majority clustering, not pairwise
   comparison, is what attributes the lie: a disagreement flags the
   minority, never the honest majority.

3. **Always-on cheap checks** on every published session: certificate
   timestamps inside the purchased window (stale-certificate reuse),
   the same executor publishing identical result bytes under different
   applications (replay equivocation — skipped for low-entropy results
   like the 16-byte server counter), and the client claiming more
   reply pairs than the server echoed (fault-hiding; arbitration is a
   replay audit of the client, so the right party is convicted).

Convictions are executed on-chain (``slash_executor``): the executor's
stake burns into the ledger's ``tokens_slashed`` sink and the evidence
hash is recorded in the conviction map. The :class:`Auditor` samples
replay audits at ``AuditConfig.audit_rate`` from a seeded stream, so
the whole pipeline is deterministic per seed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chain.crypto import sha256
from repro.common.errors import ChainError, SandboxError
from repro.common.rng import derive_rng
from repro.common.serialize import canonical_encode
from repro.sandbox.program import ProgramCall, ProgramDone, ReceivedData
from repro.sandbox.programs import decode_result_pairs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.application import DebugletApplication
    from repro.core.executor import ExecutionRecord, Executor
    from repro.core.marketplace import MeasurementSession

_MASK64 = (1 << 64) - 1

#: Results at or below this size carry too little entropy for duplicate
#: detection (e.g. the echo server's single (0, count) pair legitimately
#: repeats across sessions).
MIN_EQUIVOCATION_BYTES = 32


@dataclass(frozen=True)
class AuditConfig:
    """Knobs of the audit pipeline (defaults match EXPERIMENTS.md)."""

    #: Fraction of completed sessions spot-checked by replay audit.
    audit_rate: float = 0.25
    #: Minimum independent votes on an AS pair before cross-validation
    #: may convict (the §VI disagreement quorum).
    quorum: int = 3
    #: Absolute and relative RTT agreement tolerances for clustering.
    rtt_tolerance_us: float = 2_000.0
    rtt_rel_tolerance: float = 0.35
    #: Grace around the purchased window for certificate timestamps.
    window_slack: float = 5.0
    seed: int = 0


# --------------------------------------------------------------- replay


@dataclass(frozen=True)
class ReplayMismatch:
    """One divergence between the transcript and its replay."""

    index: int  # interaction-log entry index
    kind: str  # call-diff | done-diff | trap-diff | missing-* | result-diff
    expected: str
    actual: str


@dataclass
class ReplayReport:
    """Outcome of re-driving one transcript on the reference tier."""

    ok: bool
    mismatches: list[ReplayMismatch]
    result: bytes
    fuel_used: int
    return_value: int | None


def replay_interaction_log(
    application: "DebugletApplication",
    interaction_log: list[tuple],
    *,
    obs=None,
) -> ReplayReport:
    """Re-drive a transcript's inputs on a fresh reference interpreter.

    Feeds the logged ``begin``/``resume`` inputs to a new instance of
    ``application`` (reference tier, so the audit is independent of the
    compiled tier under audit) and diffs each produced step against the
    logged ``call``/``done``/``trap`` outputs. Emitted result bytes are
    accumulated from the *replayed* steps, so the returned ``result`` is
    what the code actually computes from those inputs — comparing it to
    the published bytes is the caller's final check. Stops at the first
    divergence: everything after a fork is unattributable.
    """
    program = application.instantiate(obs=obs, tier="reference")
    mismatches: list[ReplayMismatch] = []
    emitted = bytearray()
    return_value: int | None = None
    pending: object = None
    pending_trap: str | None = None

    def drive(fn, *args) -> None:
        nonlocal pending, pending_trap
        try:
            pending = fn(*args)
            pending_trap = None
        except SandboxError as exc:
            pending = None
            pending_trap = str(exc)

    for index, entry in enumerate(interaction_log):
        kind = entry[0]
        if kind == "begin":
            drive(program.begin, list(entry[1]))
        elif kind == "resume":
            data = None if entry[2] is None else ReceivedData(*entry[2])
            drive(program.resume, int(entry[1]), data)
        elif kind == "call":
            if pending_trap is not None or not isinstance(pending, ProgramCall):
                mismatches.append(
                    ReplayMismatch(
                        index,
                        "missing-call",
                        f"call {entry[1]}{tuple(entry[2])}",
                        pending_trap if pending_trap is not None else repr(pending),
                    )
                )
                break
            logged = (entry[1], tuple(entry[2]), entry[3])
            replayed = (pending.op, tuple(pending.args), pending.payload)
            if logged != replayed:
                mismatches.append(
                    ReplayMismatch(
                        index,
                        "call-diff",
                        f"{logged[0]}{logged[1]}",
                        f"{replayed[0]}{replayed[1]}",
                    )
                )
                break
            if pending.op == "result_i64":
                emitted += (int(pending.args[0]) & _MASK64).to_bytes(8, "little")
            elif pending.op == "result_bytes":
                emitted += pending.payload or b""
            pending = None
        elif kind == "done":
            if pending_trap is not None or not isinstance(pending, ProgramDone):
                mismatches.append(
                    ReplayMismatch(
                        index,
                        "missing-done",
                        f"done {entry[1]}",
                        pending_trap if pending_trap is not None else repr(pending),
                    )
                )
                break
            if pending.value != entry[1]:
                mismatches.append(
                    ReplayMismatch(
                        index, "done-diff", str(entry[1]), str(pending.value)
                    )
                )
                break
            return_value = pending.value
            pending = None
        elif kind == "trap":
            if pending_trap is None:
                mismatches.append(
                    ReplayMismatch(index, "missing-trap", entry[1], repr(pending))
                )
                break
            if pending_trap != entry[1]:
                mismatches.append(
                    ReplayMismatch(index, "trap-diff", entry[1], pending_trap)
                )
                break
            pending_trap = None
        else:  # pragma: no cover - defensive
            mismatches.append(
                ReplayMismatch(index, "unknown-entry", "", repr(entry))
            )
            break
    return ReplayReport(
        ok=not mismatches,
        mismatches=mismatches,
        result=bytes(emitted),
        fuel_used=program.fuel_used,
        return_value=return_value,
    )


def audit_record(
    record: "ExecutionRecord",
    *,
    published_result: bytes | None = None,
    obs=None,
) -> tuple[bool, list[str], ReplayReport]:
    """Full challenge–response audit of one execution record.

    Replays the transcript and checks the replayed emissions against the
    published result bytes (default: the record's own). Returns
    ``(ok, findings, report)``.
    """
    if published_result is None:
        published_result = record.result
    report = replay_interaction_log(
        record.application, record.interaction_log, obs=obs
    )
    findings = [
        f"transcript diverges at entry {m.index} ({m.kind}): "
        f"logged {m.expected!r}, replayed {m.actual!r}"
        for m in report.mismatches
    ]
    if report.ok and report.result != published_result:
        findings.append(
            f"published result ({len(published_result)} bytes, "
            f"{sha256(published_result).hex()[:12]}) does not match replayed "
            f"emissions ({len(report.result)} bytes, "
            f"{sha256(report.result).hex()[:12]})"
        )
    if report.ok and record.status == "completed" and record.fuel_used:
        if report.fuel_used != record.fuel_used:
            findings.append(
                f"fuel mismatch: recorded {record.fuel_used}, "
                f"replayed {report.fuel_used}"
            )
    return (not findings, findings, report)


# ----------------------------------------------------- cross-validation


@dataclass(frozen=True)
class PathSample:
    """One session's client-side RTT claim over an AS pair."""

    application_id: str
    client_vantage: tuple[int, int]
    endpoints: tuple[int, int]  # unordered (min asn, max asn)
    rtt_us: float  # session median claimed RTT
    pairs: int


@dataclass(frozen=True)
class CrossFinding:
    """A cross-validation conviction candidate."""

    client_vantage: tuple[int, int]
    application_ids: tuple[str, ...]
    endpoints: tuple[int, int]
    claimed_rtt_us: float
    reference_rtt_us: float
    votes: int


class SegmentCrossValidator:
    """§VI disagreement scoring over overlapping path-segment claims.

    One vote per (AS pair, executor): the median of that executor's
    claimed RTTs on the pair. Pairs spanning an intermediate AS also get
    one *composed* vote — the sum of the sub-segment medians from
    executors with no direct vote on the pair, so a suspect cannot
    poison its own reference. With ``quorum`` or more votes on a pair,
    votes are clustered by mutual tolerance; a strict-majority cluster
    convicts everyone outside it. Named to stay distinct from
    :class:`repro.core.antigaming.CrossValidator`, which compares
    executor vs end-host views (§VI-E) rather than executor vs executor.
    """

    def __init__(self, config: AuditConfig) -> None:
        self.config = config
        self.samples: list[PathSample] = []

    def add(self, sample: PathSample) -> None:
        self.samples.append(sample)

    def _agree(self, a: float, b: float) -> bool:
        tolerance = max(
            self.config.rtt_tolerance_us,
            self.config.rtt_rel_tolerance * max(a, b),
        )
        return abs(a - b) <= tolerance

    def findings(self) -> list[CrossFinding]:
        by_pair: dict[tuple[int, int], dict[tuple[int, int], list[PathSample]]] = {}
        for sample in self.samples:
            by_pair.setdefault(sample.endpoints, {}).setdefault(
                sample.client_vantage, []
            ).append(sample)

        # Direct votes: one per (pair, executor).
        votes: dict[tuple[int, int], list[tuple[object, float]]] = {}
        for pair, by_executor in by_pair.items():
            votes[pair] = [
                (vantage, statistics.median(s.rtt_us for s in samples))
                for vantage, samples in sorted(by_executor.items())
            ]

        # Composed votes: pair (a, c) via intermediate b, from executors
        # with no direct vote on (a, c).
        composed: dict[tuple[int, int], list[tuple[object, float]]] = {}
        ases = sorted({asn for pair in votes for asn in pair})
        for a, c in list(votes):
            direct_executors = {vantage for vantage, _ in votes[(a, c)]}
            for b in ases:
                if b in (a, c):
                    continue
                left, right = tuple(sorted((a, b))), tuple(sorted((b, c)))
                if left not in by_pair or right not in by_pair:
                    continue
                parts = []
                contributors: set[tuple[int, int]] = set()
                for sub in (left, right):
                    sub_votes = [
                        rtt
                        for vantage, rtt in votes[sub]
                        if vantage not in direct_executors
                    ]
                    contributors.update(
                        vantage
                        for vantage, _ in votes[sub]
                        if vantage not in direct_executors
                    )
                    if not sub_votes:
                        break
                    parts.append(statistics.median(sub_votes))
                if len(parts) == 2:
                    composed.setdefault((a, c), []).append(
                        (("composed", b, tuple(sorted(contributors))), sum(parts))
                    )

        findings: list[CrossFinding] = []
        for pair, direct in sorted(votes.items()):
            ballot = direct + composed.get(pair, [])
            if len(ballot) < self.config.quorum:
                continue
            counts = [
                sum(1 for _, other in ballot if self._agree(rtt, other))
                for _, rtt in ballot
            ]
            majority = max(counts)
            if majority <= len(ballot) / 2:
                continue  # no majority: disagreement is unattributable
            reference = statistics.median(
                rtt
                for (_, rtt), count in zip(ballot, counts)
                if count == majority
            )
            for (who, rtt), count in zip(ballot, counts):
                if count > len(ballot) / 2:
                    continue
                if not isinstance(who, tuple) or len(who) != 2:
                    continue  # composed minority vote: no single culprit
                samples = by_pair[pair].get(who, [])
                findings.append(
                    CrossFinding(
                        client_vantage=who,
                        application_ids=tuple(
                            s.application_id for s in samples
                        ),
                        endpoints=pair,
                        claimed_rtt_us=rtt,
                        reference_rtt_us=reference,
                        votes=len(ballot),
                    )
                )
        return findings


# --------------------------------------------------------------- auditor


@dataclass(frozen=True)
class AuditFinding:
    """One detected misbehavior, attributable to an executor."""

    mechanism: str  # replay | cross-validation | window | equivocation | counts
    vantage: tuple[int, int]
    application_id: str
    detail: str


class Auditor:
    """The marketplace's audit principal.

    Observes every completed session (cheap checks + cross-validation
    sampling), spot-checks a seeded ``audit_rate`` fraction with replay
    audits, and executes convictions on-chain through ``slash_executor``
    with the SHA-256 of the canonically-encoded evidence. Wire into a
    :class:`~repro.core.fleet.FleetScheduler` via its ``auditor``
    parameter, or call :meth:`on_session_complete` directly.
    """

    def __init__(
        self,
        ledger,
        market,
        wallet,
        *,
        executors: dict[tuple[int, int], "Executor"] | None = None,
        config: AuditConfig | None = None,
        simulator=None,
        market_name: str = "debuglet_market",
        obs=None,
    ) -> None:
        self.ledger = ledger
        self.market = market
        self.wallet = wallet
        self.executors = dict(executors or {})
        self.config = config or AuditConfig()
        self.simulator = simulator
        self.market_name = market_name
        self._obs = obs
        self._rng = derive_rng(self.config.seed, "auditor")
        self.cross = SegmentCrossValidator(self.config)
        self.findings: list[AuditFinding] = []
        self.convictions: list[dict] = []
        self.conviction_failures: list[tuple[str, str]] = []
        self.sessions_observed = 0
        self.sessions_audited = 0
        self._convicted: set[tuple[tuple[int, int], str]] = set()
        # (vantage, result_hash) -> first application id seen.
        self._result_index: dict[tuple[tuple[int, int], bytes], str] = {}

    @property
    def obs(self):
        if self._obs is not None:
            return self._obs
        if self.simulator is not None:
            return self.simulator.obs
        return None

    def register(self) -> None:
        """Claim the on-chain auditor role."""
        self.wallet.must_call(self.market_name, "register_auditor")

    # ------------------------------------------------------- observation

    def on_session_complete(self, session: "MeasurementSession") -> None:
        """Cheap always-on checks; maybe schedule a sampled replay audit."""
        self.sessions_observed += 1
        obs = self.obs
        certified = {
            role: outcome
            for role, outcome in session.outcomes.items()
            if outcome.status == "completed" and outcome.certificate is not None
        }
        for role in sorted(certified):
            self._check_window(session, certified[role])
            self._check_equivocation(certified[role])
        self._check_counts(certified)
        self._collect_sample(session, certified)
        sampled = bool(certified) and float(self._rng.random()) < self.config.audit_rate
        if obs is not None:
            obs.metrics.counter(
                "audit_sessions_total",
                sampled="yes" if sampled else "no",
            ).inc()
        if not sampled:
            return
        self.sessions_audited += 1
        if self.simulator is not None:
            # Cooperative: the replay runs as its own simulator event, not
            # inline in the session-completion callback.
            self.simulator.schedule(0.0, self._replay_session, session, certified)
        else:
            self._replay_session(session, certified)

    def _check_window(self, session, outcome) -> None:
        certificate = outcome.certificate
        slack = self.config.window_slack
        if (
            certificate.started_at >= session.window_start - slack
            and certificate.finished_at <= session.window_end + slack
        ):
            return
        self._convict(
            vantage=(certificate.asn, certificate.interface),
            application_id=outcome.application_id,
            mechanism="window",
            detail=(
                f"certificate covers [{certificate.started_at:.3f}, "
                f"{certificate.finished_at:.3f}] outside purchased window "
                f"[{session.window_start:.3f}, {session.window_end:.3f}]"
            ),
            evidence={
                "started_at": certificate.started_at,
                "finished_at": certificate.finished_at,
                "window_start": session.window_start,
                "window_end": session.window_end,
                "result_hash": certificate.result_hash,
            },
        )

    def _check_equivocation(self, outcome) -> None:
        if len(outcome.result) <= MIN_EQUIVOCATION_BYTES:
            return
        certificate = outcome.certificate
        vantage = (certificate.asn, certificate.interface)
        key = (vantage, certificate.result_hash)
        first = self._result_index.get(key)
        if first is None:
            self._result_index[key] = outcome.application_id
            return
        if first == outcome.application_id:
            return
        self._convict(
            vantage=vantage,
            application_id=outcome.application_id,
            mechanism="equivocation",
            detail=(
                f"result {certificate.result_hash.hex()[:12]} already "
                f"published under application {first}"
            ),
            evidence={
                "result_hash": certificate.result_hash,
                "first_application": first,
                "second_application": outcome.application_id,
            },
        )

    def _check_counts(self, certified: dict) -> None:
        """Client reply pairs can never exceed server echoes (§VI)."""
        client = certified.get("client")
        server = certified.get("server")
        if client is None or server is None:
            return
        echoes = _server_echo_count(server.result)
        if echoes is None:
            return
        try:
            pairs = decode_result_pairs(client.result)
        except SandboxError:
            return
        if len(pairs) <= echoes:
            return
        # Arbitration: one of the two is lying. Replay the client — a
        # fabricated pair cannot survive the transcript.
        suspect, mechanism = client, "counts"
        record = self._find_record(client)
        if record is not None:
            ok, _, _ = audit_record(
                record, published_result=client.result, obs=self.obs
            )
            if ok:
                suspect, mechanism = server, "counts-understated"
        certificate = suspect.certificate
        self._convict(
            vantage=(certificate.asn, certificate.interface),
            application_id=suspect.application_id,
            mechanism=mechanism,
            detail=(
                f"client claims {len(pairs)} reply pairs but server "
                f"echoed {echoes}"
            ),
            evidence={
                "client_pairs": len(pairs),
                "server_echoes": echoes,
                "client_result_hash": sha256(client.result),
                "server_result_hash": sha256(server.result),
            },
        )

    def _collect_sample(self, session, certified: dict) -> None:
        client = certified.get("client")
        server = certified.get("server")
        if client is None or server is None:
            return
        if _server_echo_count(server.result) is None:
            return  # not an echo session: values are not RTTs
        try:
            pairs = decode_result_pairs(client.result)
        except SandboxError:
            return
        rtts = [value for _, value in pairs if value > 0]
        if not rtts:
            return
        cc, sc = client.certificate, server.certificate
        self.cross.add(
            PathSample(
                application_id=client.application_id,
                client_vantage=(cc.asn, cc.interface),
                endpoints=tuple(sorted((cc.asn, sc.asn))),
                rtt_us=float(statistics.median(rtts)),
                pairs=len(pairs),
            )
        )

    # ------------------------------------------------------ replay audits

    def _find_record(self, outcome) -> "ExecutionRecord | None":
        certificate = outcome.certificate
        executor = self.executors.get((certificate.asn, certificate.interface))
        if executor is None:
            return None
        for record in executor.executions:
            if (
                record.certificate is not None
                and record.certificate.signature == certificate.signature
            ):
                return record
        return None

    def _replay_session(self, session, certified: dict) -> None:
        obs = self.obs
        for role in sorted(certified):
            outcome = certified[role]
            certificate = outcome.certificate
            vantage = (certificate.asn, certificate.interface)
            span = None
            if obs is not None:
                span = obs.tracer.begin(
                    "audit.replay",
                    component="audit",
                    corr=f"audit:{outcome.application_id[:12]}",
                    vantage=f"{vantage[0]}:{vantage[1]}",
                    role=role,
                )
            record = self._find_record(outcome)
            if record is None:
                if obs is not None:
                    obs.tracer.finish(span, outcome="no-transcript")
                continue  # executor unknown to this auditor (e.g. synthetic)
            ok, details, report = audit_record(
                record, published_result=outcome.result, obs=None
            )
            if obs is not None:
                obs.metrics.counter(
                    "audit_replays_total", outcome="ok" if ok else "mismatch"
                ).inc()
                obs.tracer.finish(
                    span,
                    outcome="ok" if ok else "mismatch",
                    mismatches=len(report.mismatches),
                )
            if ok:
                continue
            self._convict(
                vantage=vantage,
                application_id=outcome.application_id,
                mechanism="replay",
                detail="; ".join(details),
                evidence={
                    "published_result_hash": sha256(outcome.result),
                    "replayed_result_hash": sha256(report.result),
                    "mismatches": [
                        [m.index, m.kind, m.expected, m.actual]
                        for m in report.mismatches
                    ],
                },
            )

    # ------------------------------------------------------- convictions

    def finalize(self) -> list[dict]:
        """Run cross-validation over everything observed; return convictions."""
        for finding in self.cross.findings():
            for application_id in finding.application_ids:
                self._convict(
                    vantage=finding.client_vantage,
                    application_id=application_id,
                    mechanism="cross-validation",
                    detail=(
                        f"claimed {finding.claimed_rtt_us:.0f}us on AS pair "
                        f"{finding.endpoints} against a {finding.votes}-vote "
                        f"majority at {finding.reference_rtt_us:.0f}us"
                    ),
                    evidence={
                        "endpoints": list(finding.endpoints),
                        "claimed_rtt_us": finding.claimed_rtt_us,
                        "reference_rtt_us": finding.reference_rtt_us,
                        "votes": finding.votes,
                    },
                )
        return list(self.convictions)

    def _convict(
        self,
        *,
        vantage: tuple[int, int],
        application_id: str,
        mechanism: str,
        detail: str,
        evidence: dict,
    ) -> None:
        finding = AuditFinding(
            mechanism=mechanism,
            vantage=vantage,
            application_id=application_id,
            detail=detail,
        )
        self.findings.append(finding)
        if (vantage, application_id) in self._convicted:
            return
        self._convicted.add((vantage, application_id))
        payload = {
            "mechanism": mechanism,
            "vantage": f"{vantage[0]}:{vantage[1]}",
            "application": application_id,
        }
        payload.update(evidence)
        evidence_hash = sha256(canonical_encode(payload))
        obs = self.obs
        try:
            receipt = self.wallet.must_call(
                self.market_name,
                "slash_executor",
                vantage[0],
                vantage[1],
                application_id,
                evidence_hash,
                mechanism,
            )
        except ChainError as exc:
            self.conviction_failures.append((application_id, str(exc)))
            if obs is not None:
                obs.metrics.counter(
                    "audit_convictions_total", mechanism=mechanism,
                    status="failed",
                ).inc()
            return
        conviction = {
            "vantage": vantage,
            "application_id": application_id,
            "mechanism": mechanism,
            "detail": detail,
            "evidence_hash": evidence_hash,
            "slashed": receipt.return_value,
        }
        self.convictions.append(conviction)
        if obs is not None:
            obs.metrics.counter(
                "audit_convictions_total", mechanism=mechanism, status="slashed"
            ).inc()
            obs.tracer.event(
                "audit.conviction",
                component="audit",
                vantage=f"{vantage[0]}:{vantage[1]}",
                application_id=application_id,
                mechanism=mechanism,
                slashed=receipt.return_value,
                evidence=evidence_hash.hex(),
            )


def _server_echo_count(result: bytes) -> int | None:
    """The echo server's ``(0, count)`` trailer, or None if not one."""
    try:
        pairs = decode_result_pairs(result)
    except SandboxError:
        return None
    if len(pairs) == 1 and pairs[0][0] == 0:
        return int(pairs[0][1])
    return None
