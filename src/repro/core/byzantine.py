"""Byzantine executor strategies — the attack model (DESIGN.md §13).

Debuglet's headline claim is *verifiable* telemetry, so the reproduction
needs an adversary worth defending against. A
:class:`ByzantineCorruptor` attaches to an honest
:class:`~repro.core.executor.Executor` (``executor.corruptor``) and
tampers with completed executions at the only point a real malicious
operator could: between the sandbox finishing and the certificate being
signed. Everything upstream — the network, the VM, the manifest
enforcement — runs honestly; the lie is injected into what the executor
*reports*.

Strategies (each seeded and windowed so attacks are deterministic and
compose with crashes/outages via ``repro.chaos``):

- ``FORGE_VALUES`` — report better RTTs than measured. With
  ``forge_log=False`` only the result bytes are patched, so a
  challenge–response replay of the interaction log contradicts the
  published result. With ``forge_log=True`` the corruptor rewrites the
  transcript *consistently* (shifting the logged ``now_us`` reply
  timestamps so a replay re-derives the forged RTTs) — replay audits
  pass and only cross-validation against independent vantage points
  catches the lie.
- ``HIDE_FAULTS`` — fabricate ``(seq, rtt)`` pairs for probes the
  network actually lost, hiding faults on the executor's own segments
  (§VI). The transcript still shows the timeouts, so replay audits catch
  it; so does the client-pairs vs server-echo-count cross-check.
- ``REPLAY_RESULT`` — re-publish a previous execution's result and
  transcript under a new application (equivocation across sessions).
  Internally consistent, freshly certified — caught by duplicate
  result-hash detection across applications.
- ``STALE_CERTIFICATE`` — re-publish an old result *with its old
  certificate*, skipping execution entirely. The certificate's
  timestamps fall outside the purchased window — caught by window
  containment.

Every corruption is recorded as an :class:`AttackRecord` and stamps
``record.tampered``: ground truth for the adversarial battery
(detection-rate scoring, zero-false-positive checks). The defense
pipeline (``repro.core.audit``) never reads either.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chain.crypto import sha256
from repro.common.rng import derive_rng
from repro.sandbox.programs import decode_result_pairs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.executor import ExecutionRecord, Executor

_MASK64 = (1 << 64) - 1


class ByzantineStrategy(enum.Enum):
    """The attack repertoire."""

    FORGE_VALUES = "forge_values"
    HIDE_FAULTS = "hide_faults"
    REPLAY_RESULT = "replay_result"
    STALE_CERTIFICATE = "stale_certificate"


@dataclass
class AttackRecord:
    """Ground truth for one corrupted execution (test oracle only)."""

    strategy: ByzantineStrategy
    vantage: tuple[int, int]
    application: str
    code_hash: bytes
    result_hash: bytes
    at: float
    detail: str = ""


@dataclass
class ByzantineCorruptor:
    """Seeded, windowed corruption of one executor's certified outputs.

    Install with ``executor.corruptor = corruptor`` (or via
    :meth:`repro.chaos.ChaosInjector.corrupt_executor`, which also makes
    the attack revocable and visible in the chaos ground truth). Only
    executions finishing inside ``[start, end)`` are corrupted.
    """

    strategy: ByzantineStrategy
    seed: int = 0
    start: float = 0.0
    end: float = math.inf
    #: Forged RTT range in microseconds (FORGE_VALUES / HIDE_FAULTS).
    forge_rtt_us: tuple[int, int] = (100, 800)
    #: FORGE_VALUES only: rewrite the interaction log consistently so
    #: replay audits cannot distinguish the forgery.
    forge_log: bool = False
    attacks: list[AttackRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = derive_rng(self.seed, "byzantine", self.strategy.value)
        # code_hash -> cached (result, interaction_log) / (result, cert)
        self._replay_cache: dict[bytes, tuple[bytes, list[tuple]]] = {}
        self._stale_cache: dict[bytes, tuple[bytes, object]] = {}

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    # ------------------------------------------------------------- hooks

    def before_certify(self, executor: "Executor", record: "ExecutionRecord") -> None:
        """Runs after the sandbox finished, before the signature: the
        certificate the executor signs covers whatever this forges."""
        if record.status != "completed" or not self.active(executor.simulator.now):
            return
        if self.strategy is ByzantineStrategy.FORGE_VALUES:
            self._forge_values(executor, record)
        elif self.strategy is ByzantineStrategy.HIDE_FAULTS:
            self._hide_faults(executor, record)
        elif self.strategy is ByzantineStrategy.REPLAY_RESULT:
            self._replay_result(executor, record)

    def after_certify(self, executor: "Executor", record: "ExecutionRecord") -> None:
        """Runs after signing: stale-certificate reuse swaps in an old
        (result, certificate) pair wholesale, skipping fresh work."""
        if record.status != "completed" or not self.active(executor.simulator.now):
            return
        if self.strategy is ByzantineStrategy.STALE_CERTIFICATE:
            self._stale_certificate(executor, record)

    # --------------------------------------------------------- strategies

    def _record_attack(
        self, executor: "Executor", record: "ExecutionRecord", detail: str
    ) -> None:
        record.tampered = self.strategy.value
        self.attacks.append(
            AttackRecord(
                strategy=self.strategy,
                vantage=(executor.asn, executor.interface),
                application=record.application.name,
                code_hash=record.application.code_hash(),
                result_hash=sha256(record.result),
                at=executor.simulator.now,
                detail=detail,
            )
        )

    def _forged_rtt(self, current: int) -> int | None:
        lo, hi = self.forge_rtt_us
        forged = int(self._rng.integers(lo, hi + 1))
        return forged if forged < current else None

    def _forge_values(self, executor: "Executor", record: "ExecutionRecord") -> None:
        if self.forge_log:
            forged = self._forge_values_consistently(record)
        else:
            forged = self._forge_values_result_only(record)
        if forged:
            self._record_attack(
                executor, record,
                f"forged {forged} rtt values (consistent_log={self.forge_log})",
            )

    def _forge_values_result_only(self, record: "ExecutionRecord") -> int:
        """Patch only the published result bytes; the transcript still
        tells the truth, so a replay audit contradicts the result."""
        try:
            pairs = decode_result_pairs(record.result)
        except Exception:
            return 0
        forged = 0
        out = bytearray()
        for key, value in pairs:
            new = self._forged_rtt(value) if value > 0 else None
            if new is not None:
                value = new
                forged += 1
            out += (key & _MASK64).to_bytes(8, "little")
            out += (value & _MASK64).to_bytes(8, "little")
        if forged:
            record.result = bytes(out)
        return forged

    def _forge_values_consistently(self, record: "ExecutionRecord") -> int:
        """Rewrite transcript *and* result so replay re-derives the lie.

        The echo client computes ``rtt = now_us - table[seq]`` where the
        reply-time ``now_us`` is a *resume input* in the transcript. For
        every reply exchange — ``net_recv`` success, ``now_us``, then the
        two ``result_i64`` emissions ``(seq, rtt)`` — shifting the logged
        ``now_us`` result down by ``rtt - forged_rtt`` makes a faithful
        replay recompute exactly ``forged_rtt``. The emitted-byte offsets
        of each ``result_i64`` are tracked so the result buffer is
        patched in lockstep. Fuel is untouched (same instruction path),
        so the forged transcript is bit-for-bit self-consistent.
        """
        entries = list(record.interaction_log)
        data = bytearray(record.result)

        # Byte offset of every result-emitting call, in emission order.
        offsets: dict[int, int] = {}
        off = 0
        for index, entry in enumerate(entries):
            if entry[0] != "call":
                continue
            if entry[1] == "result_i64":
                offsets[index] = off
                off += 8
            elif entry[1] == "result_bytes":
                offsets[index] = off
                off += len(entry[3] or b"")

        forged = 0
        i = 0
        while i + 1 < len(entries):
            entry, nxt = entries[i], entries[i + 1]
            if not (
                entry[0] == "call"
                and entry[1] == "net_recv"
                and nxt[0] == "resume"
                and nxt[1] >= 0
            ):
                i += 1
                continue
            j = i + 2  # expected: now_us, resume, result_i64 x2 (+resumes)
            if (
                j + 5 < len(entries)
                and entries[j][0] == "call" and entries[j][1] == "now_us"
                and entries[j + 1][0] == "resume"
                and entries[j + 2][0] == "call"
                and entries[j + 2][1] == "result_i64"
                and entries[j + 3][0] == "resume"
                and entries[j + 4][0] == "call"
                and entries[j + 4][1] == "result_i64"
                and entries[j + 5][0] == "resume"
            ):
                rtt = int(entries[j + 4][2][0])
                new_rtt = self._forged_rtt(rtt) if rtt > 0 else None
                if new_rtt is not None:
                    delta = rtt - new_rtt
                    reply_time = int(entries[j + 1][1])
                    entries[j + 1] = ("resume", reply_time - delta, None)
                    entries[j + 4] = (
                        "call", "result_i64", (new_rtt,), entries[j + 4][3]
                    )
                    slot = offsets[j + 4]
                    data[slot : slot + 8] = (new_rtt & _MASK64).to_bytes(8, "little")
                    forged += 1
                i = j + 6
                continue
            i += 1
        if forged:
            record.interaction_log = entries
            record.result = bytes(data)
        return forged

    def _hide_faults(self, executor: "Executor", record: "ExecutionRecord") -> None:
        """Fabricate pairs for probes the network lost (§VI fault-hiding).

        Sent sequence numbers come from the transcript's ``net_send``
        calls; any seq without a matching result pair was lost. The
        corruptor invents a plausible RTT for each — but leaves the
        transcript honest (the timeouts are still in it), so replay
        audits and the server's echo count both expose the padding.
        """
        try:
            pairs = decode_result_pairs(record.result)
        except Exception:
            return
        sent = [
            int(entry[2][3])
            for entry in record.interaction_log
            if entry[0] == "call" and entry[1] == "net_send"
        ]
        observed = {key for key, _ in pairs}
        missing = [seq for seq in sent if seq not in observed]
        if not missing:
            return
        rtts = sorted(value for _, value in pairs if value > 0)
        fabricated = bytearray()
        for seq in missing:
            if rtts:
                rtt = rtts[len(rtts) // 2] + int(self._rng.integers(-50, 51))
                rtt = max(rtt, 1)
            else:
                lo, hi = self.forge_rtt_us
                rtt = int(self._rng.integers(lo, hi + 1))
            fabricated += (seq & _MASK64).to_bytes(8, "little")
            fabricated += (rtt & _MASK64).to_bytes(8, "little")
        record.result = record.result + bytes(fabricated)
        self._record_attack(
            executor, record, f"fabricated {len(missing)} lost probes"
        )

    def _replay_result(self, executor: "Executor", record: "ExecutionRecord") -> None:
        """Equivocate: republish an earlier run's result + transcript.

        The first execution of each module runs honestly and is cached;
        later ones are overwritten with the cached copy. The certificate
        is signed *after* this hook, so timestamps are fresh and the
        transcript matches the result — internally flawless, exposed
        only by the same result hash appearing under two applications.
        """
        key = record.application.code_hash()
        cached = self._replay_cache.get(key)
        if cached is None:
            self._replay_cache[key] = (
                record.result, list(record.interaction_log)
            )
            return
        result, log = cached
        record.result = result
        record.interaction_log = list(log)
        self._record_attack(executor, record, "replayed cached result")

    def _stale_certificate(
        self, executor: "Executor", record: "ExecutionRecord"
    ) -> None:
        """Reuse an old (result, certificate) pair wholesale.

        Cheapest attack of all — no fresh signature, no fresh work. The
        old certificate's ``started_at``/``finished_at`` sit in a
        previous purchase window, so window containment convicts it.
        """
        key = record.application.code_hash()
        cached = self._stale_cache.get(key)
        if cached is None:
            self._stale_cache[key] = (record.result, record.certificate)
            return
        result, certificate = cached
        record.result = result
        record.certificate = certificate
        self._record_attack(executor, record, "reused stale certificate")
