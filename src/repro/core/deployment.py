"""Incremental-deployment analysis (§VI-B).

With only some ASes on a path deploying executors, faults can be isolated
only to the *gap* between consecutive deployers. This module quantifies
that: for a chain of ``n`` ASes and a set of deployers, every atomic fault
element (each inter-domain link, each transit-AS interior) is grouped with
the elements it is indistinguishable from; the expected suspect-set size
and the exactly-isolated fraction measure localization power as deployment
grows — the paper's claim that a hiding AS "will be increasingly exposed
over time".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng


@dataclass(frozen=True)
class Element:
    """An atomic fault location on a chain path."""

    kind: str  # "link" or "interior"
    index: int  # link i joins AS i and AS i+1; interior i is AS i

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "link":
            return f"link({self.index},{self.index + 1})"
        return f"interior({self.index})"


def path_elements(n_ases: int) -> list[Element]:
    """All atomic fault locations on an ``n_ases`` chain.

    Endpoint interiors are excluded: traffic originates/terminates inside
    them, so executor-based measurement never brackets them.
    """
    if n_ases < 2:
        raise ConfigurationError("need at least two ASes")
    links = [Element("link", i) for i in range(n_ases - 1)]
    interiors = [Element("interior", i) for i in range(1, n_ases - 1)]
    return links + interiors


def _covered(element: Element, i: int, j: int) -> bool:
    """Is ``element`` inside a measurement between vantage ASes i < j?

    Vantage points sit at the border routers facing the measured segment
    (client at AS i's egress, server at AS j's ingress), so the segment
    covers links i..j-1 and the interiors of the transit ASes i+1..j-1.
    """
    if element.kind == "link":
        return i <= element.index < j
    return i < element.index < j


@dataclass
class DeploymentReport:
    """Localization power of one deployment pattern."""

    n_ases: int
    measurable: list[int]
    group_sizes: dict[Element, int]

    @property
    def mean_suspect_set(self) -> float:
        """Expected suspect-set size for a uniformly random fault."""
        sizes = list(self.group_sizes.values())
        return float(np.mean(sizes)) if sizes else float("nan")

    @property
    def exact_isolation_rate(self) -> float:
        """Fraction of fault locations isolated to exactly one element."""
        sizes = list(self.group_sizes.values())
        if not sizes:
            return float("nan")
        return sum(1 for size in sizes if size == 1) / len(sizes)


def analyze_deployment(n_ases: int, deployed: set[int]) -> DeploymentReport:
    """Group indistinguishable fault elements for a deployment pattern.

    ``deployed`` holds AS indices (0-based) hosting executors. The two
    path endpoints are always measurable — they are the endpoints'
    own networks (§VI-B: "between a deploying AS and either endpoint").
    """
    measurable = sorted({0, n_ases - 1} | {d for d in deployed if 0 <= d < n_ases})
    elements = path_elements(n_ases)
    signatures: dict[Element, frozenset] = {}
    pairs = list(combinations(measurable, 2))
    for element in elements:
        signatures[element] = frozenset(
            (i, j) for i, j in pairs if _covered(element, i, j)
        )
    group_sizes: dict[Element, int] = {}
    for element, signature in signatures.items():
        group_sizes[element] = sum(
            1 for other_sig in signatures.values() if other_sig == signature
        )
    return DeploymentReport(
        n_ases=n_ases, measurable=measurable, group_sizes=group_sizes
    )


def sweep_deployment_fraction(
    n_ases: int,
    fractions: list[float],
    *,
    trials: int = 50,
    seed: int = 0,
) -> list[dict]:
    """Monte-Carlo localization power vs deployment fraction.

    For each fraction, sample random subsets of transit ASes of that size
    and average the report metrics — the §VI-B incremental-deployment
    curve.
    """
    rows = []
    interior_ases = list(range(1, n_ases - 1))
    for fraction in fractions:
        k = round(fraction * len(interior_ases))
        rng = derive_rng(seed, "deploy-sweep", f"{fraction:.4f}")
        suspect_sizes = []
        exact_rates = []
        for _ in range(trials):
            if k >= len(interior_ases):
                chosen = set(interior_ases)
            else:
                chosen = set(
                    rng.choice(interior_ases, size=k, replace=False).tolist()
                )
            report = analyze_deployment(n_ases, chosen)
            suspect_sizes.append(report.mean_suspect_set)
            exact_rates.append(report.exact_isolation_rate)
        rows.append(
            {
                "fraction": fraction,
                "deployed_transit_ases": k,
                "mean_suspect_set": float(np.mean(suspect_sizes)),
                "exact_isolation_rate": float(np.mean(exact_rates)),
            }
        )
    return rows
