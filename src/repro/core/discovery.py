"""Decentralized executor discovery and bilateral scheduling (§VI-A).

The alternative to the marketplace: ASes advertise their executors as
route metadata in routing announcements; initiators learn about them
through path discovery, negotiate price and window bilaterally, submit the
application directly, and receive the result directly. No chain is
involved, so the result is *not publicly verifiable* — but it still
carries the executor's certificate, which a party that knows the
executor's key out of band can check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError, DebugletError
from repro.core.application import DebugletApplication
from repro.core.executor import ExecutionRecord, Executor
from repro.pathaware.discovery import BeaconMetadata, PathRegistry
from repro.pathaware.segments import PathSegment

EXECUTOR_METADATA_KIND = "debuglet_executor"


@dataclass(frozen=True)
class ExecutorAdvertisement:
    """What an AS announces about one of its executors."""

    asn: int
    interface: int
    host: str  # data-plane host name of the executor
    price: int  # asking price per execution, MIST
    capabilities: tuple[str, ...]

    def to_metadata(self) -> BeaconMetadata:
        return BeaconMetadata(
            asn=self.asn,
            kind=EXECUTOR_METADATA_KIND,
            payload=(
                ("interface", self.interface),
                ("host", self.host),
                ("price", self.price),
                ("capabilities", self.capabilities),
            ),
        )

    @classmethod
    def from_metadata(cls, metadata: BeaconMetadata) -> "ExecutorAdvertisement":
        payload = metadata.as_dict()
        return cls(
            asn=metadata.asn,
            interface=payload["interface"],
            host=payload["host"],
            price=payload["price"],
            capabilities=tuple(payload["capabilities"]),
        )


@dataclass
class BilateralAgreement:
    """A negotiated execution: window, price, and the serving executor."""

    advertisement: ExecutorAdvertisement
    window_start: float
    window_end: float
    price: int


class DecentralizedDirectory:
    """Advertise and discover executors through routing metadata."""

    def __init__(self, registry: PathRegistry) -> None:
        self.registry = registry
        self._executors: dict[tuple[int, int], Executor] = {}

    def advertise(self, executor: Executor, *, price: int) -> ExecutorAdvertisement:
        """Announce ``executor`` in its AS's routing messages."""
        advertisement = ExecutorAdvertisement(
            asn=executor.asn,
            interface=executor.interface,
            host=executor.data_address.host,
            price=price,
            capabilities=tuple(executor.policy.offered_capabilities),
        )
        self.registry.announce(advertisement.to_metadata())
        self._executors[(executor.asn, executor.interface)] = executor
        return advertisement

    def withdraw(self, advertisement: ExecutorAdvertisement) -> None:
        """Retract an advertisement (fleet drain/evict delisting).

        The routing metadata is withdrawn and the executor becomes
        unresolvable: a stale advertisement held by an initiator now
        fails :meth:`negotiate` with "unreachable" instead of silently
        scheduling work on a delisted executor.
        """
        self.registry.withdraw(advertisement.to_metadata())
        self._executors.pop((advertisement.asn, advertisement.interface), None)

    def executors_in(self, asn: int) -> list[ExecutorAdvertisement]:
        return [
            ExecutorAdvertisement.from_metadata(record)
            for record in self.registry.metadata_from(asn, kind=EXECUTOR_METADATA_KIND)
        ]

    def executors_on_path(self, segment: PathSegment) -> list[ExecutorAdvertisement]:
        """All advertised executors at the interfaces ``segment`` touches."""
        wanted = {(ifid.asn, ifid.interface) for ifid in segment.interfaces()}
        found = []
        for asn in segment.asns():
            for advertisement in self.executors_in(asn):
                if (advertisement.asn, advertisement.interface) in wanted:
                    found.append(advertisement)
        return found

    def cheapest_on_path(
        self, segment: PathSegment
    ) -> ExecutorAdvertisement | None:
        """The cheapest advertised executor on ``segment``, or None.

        Ties break deterministically by (price, asn, interface) so every
        initiator picks the same winner for the same routing state.
        """
        candidates = self.executors_on_path(segment)
        if not candidates:
            return None
        return min(candidates, key=lambda a: (a.price, a.asn, a.interface))

    def _resolve(self, advertisement: ExecutorAdvertisement) -> Executor:
        executor = self._executors.get(
            (advertisement.asn, advertisement.interface)
        )
        if executor is None:
            raise DebugletError(
                f"advertised executor ({advertisement.asn}, "
                f"{advertisement.interface}) is unreachable"
            )
        return executor

    # -------------------------------------------------------- negotiation

    def negotiate(
        self,
        advertisement: ExecutorAdvertisement,
        *,
        offer: int,
        window_start: float,
        window_end: float,
    ) -> BilateralAgreement:
        """Propose a window and price; the executor accepts iff the offer
        meets its asking price and the window is in the future."""
        executor = self._resolve(advertisement)
        if offer < advertisement.price:
            raise DebugletError(
                f"offer {offer} below asking price {advertisement.price}"
            )
        if window_start < executor.simulator.now:
            raise ConfigurationError("window starts in the past")
        if window_end <= window_start:
            raise ConfigurationError("empty window")
        return BilateralAgreement(
            advertisement=advertisement,
            window_start=window_start,
            window_end=window_end,
            price=offer,
        )

    def execute(
        self,
        agreement: BilateralAgreement,
        application: DebugletApplication,
        *,
        on_complete: Callable[[ExecutionRecord], None] | None = None,
    ) -> ExecutionRecord:
        """Submit the application directly to the agreed executor."""
        executor = self._resolve(agreement.advertisement)
        return executor.submit(
            application,
            start_at=agreement.window_start,
            on_complete=on_complete,
        )
