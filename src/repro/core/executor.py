"""The Debuglet executor: policy-constrained remote code execution (§IV-B).

An executor is a small service co-located with one border router
(``<AS, interface>``). It admits applications against its policy, runs
them inside the sandbox (or natively, for baselines), bridges their host
calls to real sockets on the simulated network, enforces the manifest at
run time (packet budgets, duration, contact allow-list, result size), and
finally *certifies* the result with its Ed25519 key so third parties can
verify what was measured.

Timing model (calibrated to the paper's §V-B measurements):

- ``setup_time`` (~10 ms): sandbox instantiation before the first
  instruction runs — the "execution environment setup time";
- ``host_call_overhead`` (~60 µs): simulated cost of each sandbox/host
  boundary crossing. This is what makes D2D measurements read ~300 µs
  above A2A in Fig 8 (3 crossings on the client's timing path, 2 on the
  server's). Native programs pay neither.
- ``instruction_time``: CPU time per unit of fuel, folded into the
  moment results become available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import (
    ConfigurationError,
    PolicyViolation,
    SandboxError,
)
from repro.common.rng import derive_rng
from repro.common.serialize import canonical_encode
from repro.chain.crypto import KeyPair, sha256
from repro.core.application import DebugletApplication
from repro.netsim.endhost import Socket
from repro.netsim.engine import EventHandle
from repro.netsim.network import Network
from repro.netsim.packet import Address, IcmpType, Packet, Protocol
from repro.sandbox.hostops import protocol_from_number
from repro.sandbox.manifest import ExecutorPolicy
from repro.sandbox.verifier import verify_module
from repro.sandbox.program import (
    ProgramCall,
    ProgramDone,
    ReceivedData,
    RunnableProgram,
)


def executor_host_name(interface: int) -> str:
    """Data-plane host name of the executor at ``interface``."""
    return f"exec{interface}"


def executor_data_address(asn: int, interface: int) -> Address:
    """The address Debuglet contacts use to reach that executor."""
    return Address(asn, executor_host_name(interface))


@dataclass
class ExecutionRecord:
    """Outcome of one Debuglet execution.

    ``interaction_log`` is the executor's transcript of every sandbox
    boundary crossing — ``("begin", args)``, ``("call", op, args,
    payload)``, ``("resume", result, received)`` and ``("trap", message)``
    entries, in order. Replaying the begin/resume inputs against a fresh
    reference interpreter must reproduce every call/done output and the
    result bytes bit-for-bit (the §13 challenge–response audit,
    :func:`repro.core.audit.replay_interaction_log`). ``tampered`` is
    ground truth for tests: the Byzantine strategy that corrupted this
    record, or ``""`` for honest executions — nothing in the defense
    pipeline reads it.
    """

    application: DebugletApplication
    status: str = "pending"  # pending | running | completed | failed: <reason>
    result: bytes = b""
    return_value: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    fuel_used: int = 0
    packets_sent: int = 0
    packets_received: int = 0
    logs: list[int] = field(default_factory=list)
    interaction_log: list[tuple] = field(default_factory=list)
    tampered: str = ""
    certificate: "ResultCertificate | None" = None

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def failed(self) -> bool:
        return self.status.startswith("failed")


@dataclass(frozen=True)
class ResultCertificate:
    """The executor's signed statement about an execution (§IV-B).

    Binds the code hash, the result bytes, the vantage point, and the
    execution window under the executor's key. Verified by
    :mod:`repro.core.verification`.
    """

    asn: int
    interface: int
    code_hash: bytes
    result_hash: bytes
    started_at: float
    finished_at: float
    executor_public_key: bytes
    signature: bytes

    def signing_payload(self) -> bytes:
        return canonical_encode(
            {
                "asn": self.asn,
                "interface": self.interface,
                "code_hash": self.code_hash,
                "result_hash": self.result_hash,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "public_key": self.executor_public_key,
            }
        )


class _Execution:
    """Book-keeping for one running program."""

    def __init__(
        self,
        executor: "Executor",
        application: DebugletApplication,
        program: RunnableProgram,
        on_complete: Callable[[ExecutionRecord], None] | None,
    ) -> None:
        self.executor = executor
        self.application = application
        self.program = program
        self.record = ExecutionRecord(application=application)
        self.on_complete = on_complete
        self.sockets: dict[Protocol, Socket] = {}
        self.recv_queues: dict[Protocol, list[tuple[Packet, float]]] = {}
        self.last_received: dict[Protocol, Packet] = {}
        self.pending_recv: tuple[Protocol, EventHandle] | None = None
        self.deadline_handle: EventHandle | None = None
        self.port_by_protocol: dict[Protocol, int] = {}
        self.done = False
        self.span = None  # open obs span while the execution runs


class Executor:
    """A Debuglet executor co-located with one border router."""

    def __init__(
        self,
        network: Network,
        asn: int,
        interface: int,
        *,
        keypair: KeyPair | None = None,
        policy: ExecutorPolicy | None = None,
        setup_time: float = 10e-3,
        setup_jitter: float = 0.3e-3,
        host_call_overhead: float = 60e-6,
        instruction_time: float = 2e-9,
        concurrent_capacity: int = 8,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.asn = asn
        self.interface = interface
        self.keypair = keypair or KeyPair.deterministic(f"executor-{asn}-{interface}")
        self.policy = policy or ExecutorPolicy()
        self.setup_time = setup_time
        self.setup_jitter = setup_jitter
        self.host_call_overhead = host_call_overhead
        self.instruction_time = instruction_time
        if concurrent_capacity < 1:
            raise ConfigurationError("concurrent_capacity must be >= 1")
        self.concurrent_capacity = concurrent_capacity
        self._rng = derive_rng(seed, "executor", asn, interface)
        self._port_counter = 45000 + (asn * 131 + interface * 17) % 1000
        self.executions: list[ExecutionRecord] = []
        # Byzantine hook (repro.core.byzantine): when set, the corruptor's
        # before_certify/after_certify run around certification in
        # _finish. None for honest executors.
        self.corruptor = None
        self._running = 0
        self._waiting: list[_Execution] = []
        # Failure-model state (§IV-C robustness; see repro.chaos): a crashed
        # executor silently aborts everything in flight and accepts nothing
        # new until restart() — it never certifies or publishes.
        self.crashed = False
        self.crash_count = 0
        self._pending_starts: list[tuple[EventHandle, _Execution]] = []
        self._live: list[_Execution] = []

        address = executor_data_address(asn, interface)
        if address in network.hosts:
            self.host = network.hosts[address]
        else:
            self.host = network.make_host(
                asn, executor_host_name(interface), attachment=f"if{interface}"
            )
        # Executors never auto-echo: programs decide how to respond.
        self.host.echo_protocols = set()

    @property
    def data_address(self) -> Address:
        return self.host.address

    @property
    def simulator(self):
        return self.network.simulator

    @property
    def obs(self):
        """The attached observability bundle, or None (see repro.obs)."""
        return self.network.simulator.obs

    @property
    def _vantage(self) -> str:
        return f"{self.asn}:{self.interface}"

    # ---------------------------------------------------------- admission

    def admit(self, application: DebugletApplication) -> None:
        """Policy + manifest admission (raises on rejection).

        Sandboxed bytecode is additionally re-verified ahead of time —
        the executor never trusts that the marketplace (or anyone else)
        already ran the verifier. In ``strict`` mode any verification
        error is a :class:`PolicyViolation`; in ``warn`` mode the module
        is admitted and the VM's runtime traps are the backstop; ``off``
        skips the verifier entirely.
        """
        self.policy.admit(application.manifest)
        if application.module is not None:
            application.manifest.validate_module(application.module)
            if self.policy.verification != "off":
                report = verify_module(
                    application.module, application.manifest, self.policy
                )
                if not report.ok and self.policy.verification == "strict":
                    raise PolicyViolation(
                        "bytecode failed ahead-of-time verification: "
                        + "; ".join(diag.render() for diag in report.errors)
                    )
            # Warm the process-wide compile cache at admission so every
            # session VM for this module starts from a hash lookup
            # (repro.sandbox.compile; unprovable modules are cached as
            # reference-tier and never re-analysed).
            from repro.sandbox.compile import get_compiled

            get_compiled(application.module, obs=self.obs)

    # ---------------------------------------------------------- execution

    def submit(
        self,
        application: DebugletApplication,
        *,
        start_at: float | None = None,
        on_complete: Callable[[ExecutionRecord], None] | None = None,
    ) -> ExecutionRecord:
        """Admit and schedule ``application``; returns its (live) record.

        Execution begins at ``start_at`` (default: now) plus the sandbox
        setup time for sandboxed programs.
        """
        if self.crashed:
            raise ConfigurationError(
                f"executor {self.asn}:{self.interface} is down"
            )
        self.admit(application)
        program = application.instantiate(obs=self.obs)
        execution = _Execution(self, application, program, on_complete)
        self.executions.append(execution.record)

        start = self.simulator.now if start_at is None else start_at
        if start < self.simulator.now:
            raise ConfigurationError("cannot schedule execution in the past")
        setup = 0.0
        if program.is_sandboxed:
            setup = self.setup_time + abs(
                float(self._rng.normal(0.0, self.setup_jitter))
            )
        handle = self.simulator.schedule_at(start + setup, self._begin, execution)
        self._pending_starts.append((handle, execution))
        return execution.record

    def _begin(self, execution: _Execution) -> None:
        self._pending_starts = [
            (h, e) for h, e in self._pending_starts if e is not execution
        ]
        if self.crashed:
            self._kill(execution, "executor crashed before start")
            return
        # Finite resources (§IV-C): beyond capacity, executions queue and
        # start as earlier ones finish.
        if self._running >= self.concurrent_capacity:
            execution.record.status = "queued"
            self._waiting.append(execution)
            return
        self._running += 1
        self._live.append(execution)
        record = execution.record
        record.status = "running"
        record.started_at = self.simulator.now
        obs = self.obs
        if obs is not None:
            execution.span = obs.tracer.begin(
                "executor.execution",
                component="executor",
                corr=f"app:{execution.application.name}",
                vantage=self._vantage,
                application=execution.application.name,
                sandboxed=execution.program.is_sandboxed,
            )
        # Pre-bind listen sockets so early probes are not dropped.
        listen_port = execution.application.listen_port
        if listen_port is not None:
            try:
                for capability in execution.application.manifest.capabilities:
                    protocol = Protocol[capability.upper()]
                    self._bind_socket(execution, protocol, listen_port)
            except ConfigurationError as exc:
                self._finish_failed(execution, f"cannot bind sockets: {exc}")
                return
        deadline = record.started_at + execution.application.manifest.max_duration
        execution.deadline_handle = self.simulator.schedule_at(
            deadline, self._abort, execution, "duration limit exceeded"
        )
        try:
            step = self._program_begin(execution)
        except SandboxError as exc:
            self._finish_failed(execution, f"trap at start: {exc}")
            return
        self._dispatch(execution, step)

    # Every begin/resume of the program funnels through the two helpers
    # below so the interaction log is a complete transcript: the inputs
    # the executor fed the sandbox (begin args, resume results, received
    # data) and the outputs the sandbox produced (host calls, completion,
    # traps). Auditors replay the inputs on a fresh reference interpreter
    # and diff the outputs bit-for-bit (repro.core.audit).

    def _program_begin(self, execution: _Execution):
        args = list(execution.application.args)
        execution.record.interaction_log.append(("begin", tuple(args)))
        try:
            step = execution.program.begin(args)
        except SandboxError as exc:
            execution.record.interaction_log.append(("trap", str(exc)))
            raise
        self._log_step(execution, step)
        return step

    def _program_resume(
        self, execution: _Execution, result: int, data: ReceivedData | None
    ):
        received = None
        if data is not None:
            received = (
                data.contact_index,
                data.src_port,
                data.seq,
                data.recv_time_us,
                data.payload,
            )
        execution.record.interaction_log.append(("resume", int(result), received))
        try:
            step = execution.program.resume(result, data)
        except SandboxError as exc:
            execution.record.interaction_log.append(("trap", str(exc)))
            raise
        self._log_step(execution, step)
        return step

    @staticmethod
    def _log_step(execution: _Execution, step) -> None:
        if isinstance(step, ProgramDone):
            execution.record.interaction_log.append(("done", step.value))
        else:
            execution.record.interaction_log.append(
                ("call", step.op, tuple(step.args), step.payload)
            )

    # The dispatch loop: handle steps until the program blocks or finishes.

    def _dispatch(self, execution: _Execution, step) -> None:
        while not execution.done:
            if isinstance(step, ProgramDone):
                self._finish_completed(execution, step.value)
                return
            assert isinstance(step, ProgramCall)
            try:
                resumed = self._perform(execution, step)
            except (PolicyViolation, SandboxError, ConfigurationError) as exc:
                self._finish_failed(execution, str(exc))
                return
            if resumed is None:
                return  # blocked: a scheduled event will continue us
            step = resumed

    def _resume(self, execution: _Execution, result: int, data: ReceivedData | None) -> None:
        if execution.done:
            return
        try:
            step = self._program_resume(execution, result, data)
        except SandboxError as exc:
            self._finish_failed(execution, f"trap: {exc}")
            return
        self._dispatch(execution, step)

    def _overhead(self, execution: _Execution) -> float:
        if execution.program.is_sandboxed:
            return self.host_call_overhead
        return 0.0

    def _resume_after(
        self, execution: _Execution, delay: float, result: int,
        data: ReceivedData | None = None,
    ):
        """Resume later (host-switch cost) or immediately when free."""
        if delay > 0:
            self.simulator.schedule(delay, self._resume, execution, result, data)
            return None
        return self._program_resume(execution, result, data)

    # ------------------------------------------------------- host ops

    def _perform(self, execution: _Execution, call: ProgramCall):
        """Perform one host op. Returns the next step, or None if blocked."""
        op = call.op
        overhead = self._overhead(execution)
        now = self.simulator.now
        obs = self.simulator.obs
        if obs is not None:
            obs.metrics.counter("executor_host_ops_total", op=op).inc()

        if op == "now_us":
            return self._resume_after(
                execution, overhead, int(round((now + overhead) * 1e6))
            )
        if op == "sleep_until_us":
            wake = max(call.args[0] / 1e6, now) + overhead
            self.simulator.schedule_at(wake, self._resume, execution, 0, None)
            return None
        if op == "net_send":
            return self._op_net_send(execution, call, overhead)
        if op == "net_recv":
            return self._op_net_recv(execution, call, overhead)
        if op == "net_reply":
            return self._op_net_reply(execution, call, overhead)
        if op == "result_i64":
            value = int(call.args[0]) & ((1 << 64) - 1)
            self._append_result(execution, value.to_bytes(8, "little"))
            return self._resume_after(execution, overhead, 0)
        if op == "result_bytes":
            self._append_result(execution, call.payload or b"")
            return self._resume_after(execution, overhead, 0)
        if op == "log_i64":
            execution.record.logs.append(call.args[0])
            return self._resume_after(execution, overhead, 0)
        if op == "rand_u32":
            return self._resume_after(
                execution, overhead, int(self._rng.integers(0, 2**32))
            )
        raise PolicyViolation(f"host op {op!r} not available")

    def _append_result(self, execution: _Execution, data: bytes) -> None:
        record = execution.record
        limit = execution.application.manifest.max_result_bytes
        if len(record.result) + len(data) > limit:
            raise PolicyViolation(f"result exceeds declared {limit} bytes")
        record.result += data

    def _op_net_send(self, execution: _Execution, call: ProgramCall, overhead: float):
        proto_num, contact_idx, dst_port, seq, size = call.args
        protocol = protocol_from_number(proto_num)
        manifest = execution.application.manifest
        if not manifest.allows_protocol(protocol):
            raise PolicyViolation(f"manifest lacks {protocol.name.lower()} capability")
        if not 0 <= contact_idx < len(manifest.contacts):
            raise PolicyViolation(f"contact index {contact_idx} not in manifest")
        if execution.record.packets_sent >= manifest.max_packets_sent:
            raise PolicyViolation("send budget exhausted")
        execution.record.packets_sent += 1

        dst = manifest.contacts[contact_idx]
        socket = self._socket_for(execution, protocol)
        icmp_type = IcmpType.ECHO_REQUEST if protocol is Protocol.ICMP else None
        # The packet leaves once the host switch completes.
        send_delay = overhead

        def do_send() -> None:
            if execution.done:
                return
            socket.send(
                dst,
                dst_port=dst_port,
                size=max(int(size), 1),
                seq=int(seq),
                payload=call.payload,
                path=execution.application.path,
                icmp_type=icmp_type,
            )

        if send_delay > 0:
            self.simulator.schedule(send_delay, do_send)
        else:
            do_send()
        return self._resume_after(execution, send_delay, 1)

    def _op_net_recv(self, execution: _Execution, call: ProgramCall, overhead: float):
        proto_num, timeout_us = call.args
        protocol = protocol_from_number(proto_num)
        manifest = execution.application.manifest
        if not manifest.allows_protocol(protocol):
            raise PolicyViolation(f"manifest lacks {protocol.name.lower()} capability")
        self._socket_for(execution, protocol)  # ensure bound
        queue = execution.recv_queues.setdefault(protocol, [])
        if queue:
            packet, arrival = queue.pop(0)
            data = self._to_received(execution, packet, arrival)
            return self._resume_after(execution, overhead, len(data.payload), data)
        if execution.pending_recv is not None:
            raise PolicyViolation("overlapping net_recv calls")
        timeout_at = self.simulator.now + max(timeout_us, 0) / 1e6
        handle = self.simulator.schedule_at(
            timeout_at, self._recv_timeout, execution
        )
        execution.pending_recv = (protocol, handle)
        return None

    def _recv_timeout(self, execution: _Execution) -> None:
        if execution.done or execution.pending_recv is None:
            return
        execution.pending_recv = None
        self._resume(execution, -1, None)

    def _op_net_reply(self, execution: _Execution, call: ProgramCall, overhead: float):
        proto_num, seq, size = call.args
        protocol = protocol_from_number(proto_num)
        manifest = execution.application.manifest
        last = execution.last_received.get(protocol)
        if last is None:
            return self._resume_after(execution, overhead, 0)
        if execution.record.packets_sent >= manifest.max_packets_sent:
            raise PolicyViolation("send budget exhausted")
        execution.record.packets_sent += 1
        socket = self._socket_for(execution, protocol)
        icmp_type = IcmpType.ECHO_REPLY if protocol is Protocol.ICMP else None
        reply_path = execution.application.path

        def do_reply() -> None:
            if execution.done:
                return
            socket.send(
                last.src,
                dst_port=last.src_port,
                size=max(int(size), 1),
                seq=int(seq),
                payload=last.payload,
                path=reply_path,
                icmp_type=icmp_type,
            )

        if overhead > 0:
            self.simulator.schedule(overhead, do_reply)
        else:
            do_reply()
        return self._resume_after(execution, overhead, 1)

    # ------------------------------------------------------- sockets

    def _socket_for(self, execution: _Execution, protocol: Protocol) -> Socket:
        socket = execution.sockets.get(protocol)
        if socket is not None:
            return socket
        port = execution.application.listen_port
        if protocol in (Protocol.UDP, Protocol.TCP):
            if port is None:
                port = self._alloc_port()
        else:
            port = 0
        return self._bind_socket(execution, protocol, port)

    def _bind_socket(
        self, execution: _Execution, protocol: Protocol, port: int
    ) -> Socket:
        if protocol in execution.sockets:
            return execution.sockets[protocol]
        if protocol in (Protocol.ICMP, Protocol.RAW_IP):
            port = 0
        socket = self.host.open_socket(protocol, port)
        socket.on_receive = lambda packet, t: self._on_packet(
            execution, protocol, packet, t
        )
        execution.sockets[protocol] = socket
        execution.port_by_protocol[protocol] = port
        execution.recv_queues.setdefault(protocol, [])
        return socket

    def _alloc_port(self) -> int:
        self._port_counter += 1
        return self._port_counter

    def _on_packet(
        self, execution: _Execution, protocol: Protocol, packet: Packet, t: float
    ) -> None:
        if execution.done:
            return
        record = execution.record
        manifest = execution.application.manifest
        if record.packets_received >= manifest.max_packets_received:
            return  # budget exhausted: excess packets are dropped silently
        record.packets_received += 1
        execution.last_received[protocol] = packet
        if (
            execution.pending_recv is not None
            and execution.pending_recv[0] is protocol
        ):
            _, handle = execution.pending_recv
            handle.cancel()
            execution.pending_recv = None
            data = self._to_received(execution, packet, t)
            delay = self._overhead(execution)
            if delay > 0:
                self.simulator.schedule(
                    delay, self._resume, execution, len(data.payload), data
                )
            else:
                self._resume(execution, len(data.payload), data)
        else:
            execution.recv_queues.setdefault(protocol, []).append((packet, t))

    def _to_received(
        self, execution: _Execution, packet: Packet, arrival: float
    ) -> ReceivedData:
        contacts = execution.application.manifest.contacts
        try:
            contact_index = contacts.index(packet.src)
        except ValueError:
            contact_index = -1
        payload = packet.payload if isinstance(packet.payload, bytes) else bytes(packet.size)
        return ReceivedData(
            contact_index=contact_index,
            src_port=packet.src_port,
            seq=packet.seq,
            recv_time_us=int(round((arrival + self._overhead(execution)) * 1e6)),
            payload=payload,
        )

    # ------------------------------------------------------ completion

    def _abort(self, execution: _Execution, reason: str) -> None:
        if not execution.done:
            self._finish_failed(execution, reason)

    def _finish_completed(self, execution: _Execution, value: int) -> None:
        execution.record.return_value = value
        self._finish(execution, "completed")

    def _finish_failed(self, execution: _Execution, reason: str) -> None:
        self._finish(execution, f"failed: {reason}")

    def _finish(self, execution: _Execution, status: str) -> None:
        execution.done = True
        record = execution.record
        record.status = status
        record.fuel_used = execution.program.fuel_used
        cpu_time = record.fuel_used * self.instruction_time
        record.finished_at = self.simulator.now + cpu_time
        if execution.deadline_handle is not None:
            execution.deadline_handle.cancel()
        if execution.pending_recv is not None:
            execution.pending_recv[1].cancel()
            execution.pending_recv = None
        for socket in execution.sockets.values():
            socket.close()
        if self.corruptor is not None:
            self.corruptor.before_certify(self, record)
        record.certificate = self.certify(record)
        if self.corruptor is not None:
            self.corruptor.after_certify(self, record)
        obs = self.obs
        if obs is not None:
            outcome = "completed" if status == "completed" else "failed"
            obs.metrics.counter(
                "executor_executions_total",
                status=outcome,
                vantage=self._vantage,
            ).inc()
            obs.metrics.histogram("executor_execution_seconds").observe(
                max(record.finished_at - record.started_at, 0.0)
            )
            if execution.span is not None:
                obs.tracer.finish(
                    execution.span,
                    status=status,
                    fuel_used=record.fuel_used,
                    packets_sent=record.packets_sent,
                    packets_received=record.packets_received,
                )
                execution.span = None
        self._live = [e for e in self._live if e is not execution]
        self._running -= 1
        if self._waiting:
            queued = self._waiting.pop(0)
            self.simulator.schedule(0.0, self._begin, queued)
        if execution.on_complete is not None:
            execution.on_complete(record)

    # ------------------------------------------------------ failure model

    def _kill(self, execution: _Execution, reason: str) -> None:
        """Abort one execution *silently*: no certificate, no completion
        callback, no publication — the behaviour of a process that died."""
        if execution.done:
            return
        execution.done = True
        execution.record.status = f"failed: {reason}"
        execution.record.finished_at = self.simulator.now
        obs = self.obs
        if obs is not None:
            obs.metrics.counter(
                "executor_executions_total",
                status="killed",
                vantage=self._vantage,
            ).inc()
            if execution.span is not None:
                obs.tracer.finish(execution.span, status=f"killed: {reason}")
                execution.span = None
        if execution.deadline_handle is not None:
            execution.deadline_handle.cancel()
            execution.deadline_handle = None
        if execution.pending_recv is not None:
            execution.pending_recv[1].cancel()
            execution.pending_recv = None
        for socket in execution.sockets.values():
            socket.close()

    def crash(self, reason: str = "executor crashed") -> None:
        """Crash the executor: every scheduled, queued, and running
        execution is silently aborted and new submissions are rejected
        until :meth:`restart`. Idempotent while down."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        obs = self.obs
        if obs is not None:
            obs.metrics.counter(
                "executor_crashes_total", vantage=self._vantage
            ).inc()
            obs.tracer.event(
                "executor.crash", component="executor",
                vantage=self._vantage, reason=reason,
            )
        for handle, execution in self._pending_starts:
            handle.cancel()
            self._kill(execution, f"{reason} (never started)")
        self._pending_starts.clear()
        for execution in self._waiting:
            self._kill(execution, f"{reason} (queued)")
        self._waiting.clear()
        for execution in list(self._live):
            self._kill(execution, reason)
        self._live.clear()
        self._running = 0

    def restart(self) -> None:
        """Bring a crashed executor back up, with empty run queues.

        Work lost to the crash stays lost — the control plane's deadlines,
        refunds, and failover are what recover the *session*.

        The process-wide compile cache (repro.sandbox.compile) is
        deliberately NOT invalidated across restart: entries are keyed by
        ``Module.code_hash()`` and translation is a pure function of the
        bytecode, so a warm entry is exactly as trustworthy after a crash
        as before it — re-admitting a previously-seen module after
        restart hits the cache and re-executes bit-identically. What a
        crash *does* lose is everything execution-scoped: run queues,
        sockets, in-flight program state, uncertified results.
        """
        if self.crashed:
            obs = self.obs
            if obs is not None:
                obs.tracer.event(
                    "executor.restart", component="executor",
                    vantage=self._vantage,
                )
        self.crashed = False

    def cancel_pending(self, reason: str = "slot expired") -> None:
        """Silently abort executions that have not started yet (scheduled
        or capacity-queued), leaving running ones untouched. Models an
        ISP reneging on sold-but-unstarted slots (early slot expiry)."""
        for handle, execution in self._pending_starts:
            handle.cancel()
            self._kill(execution, reason)
        self._pending_starts.clear()
        for execution in self._waiting:
            self._kill(execution, reason)
        self._waiting.clear()

    # ---------------------------------------------------- certification

    def certify(self, record: ExecutionRecord) -> ResultCertificate:
        """Sign the execution outcome (only completed runs get results)."""
        result_hash = sha256(record.result)
        certificate = ResultCertificate(
            asn=self.asn,
            interface=self.interface,
            code_hash=record.application.code_hash(),
            result_hash=result_hash,
            started_at=record.started_at,
            finished_at=record.finished_at,
            executor_public_key=self.keypair.public,
            signature=b"",
        )
        signature = self.keypair.sign(certificate.signing_payload())
        return ResultCertificate(
            asn=certificate.asn,
            interface=certificate.interface,
            code_hash=certificate.code_hash,
            result_hash=certificate.result_hash,
            started_at=certificate.started_at,
            finished_at=certificate.finished_at,
            executor_public_key=certificate.executor_public_key,
            signature=signature,
        )
