"""Vectorized segment probing: the localization fast path.

:class:`FastSegmentProber` is a drop-in replacement for
:class:`~repro.core.probing.SegmentProber` that simulates each D2D echo
measurement as one vectorized :class:`~repro.netsim.fastpath.ProbeCell`
instead of deploying paired echo Debuglets and pumping the event loop.
It duck-types the surface :class:`~repro.core.localization.FaultLocalizer`
uses (``network``, ``measure_sync``, measurement ``ok`` /
``loss_rate()`` / ``mean_rtt_ms()``), so
``FaultLocalizer(FastSegmentProber(network))`` runs any strategy on the
fast path unchanged — same plans, same judge, same report shape.

Contract (inherited from PR 1, extended in PR 10): statistically
equivalent to the event-driven reference — per-measurement loss and mean
RTT agree within sampling tolerance, property-tested per strategy in
``tests/properties/test_prop_fastprobe.py`` — but not bit-identical.
Fault overlays are vectorized as time-window masks; the 300 µs sandbox
host-switch overhead the VM pair adds to every RTT is applied as a
constant, matching ``estimate_baseline_rtt``'s analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.fastpath import (
    ProbeCell,
    cell_seed,
    extract_segment_cell,
    simulate_cell_arrays,
)
from repro.netsim.network import Network
from repro.netsim.packet import Protocol
from repro.pathaware.segments import PathSegment

Vantage = tuple[int, int]

#: Host-switch overhead of the sandboxed echo pair, both directions
#: (mirrors ``estimate_baseline_rtt``'s default).
SANDBOX_OVERHEAD = 300e-6


@dataclass
class FastSegmentMeasurement:
    """Vectorized counterpart of :class:`~repro.core.probing.SegmentMeasurement`.

    Carries the raw per-probe arrays instead of VM execution records;
    exposes the same judgment surface.
    """

    client: Vantage
    server: Vantage
    protocol: Protocol
    segment: PathSegment
    probes: int
    send_times: np.ndarray
    rtts: np.ndarray  # seconds, NaN = lost, sandbox overhead included
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def ok(self) -> bool:
        return True  # the vectorized path has no VM execution to fail

    def mean_rtt_ms(self) -> float:
        if np.all(np.isnan(self.rtts)):
            return float("nan")
        return float(np.nanmean(self.rtts)) * 1e3

    def loss_rate(self) -> float:
        if self.probes == 0:
            return 0.0
        return float(np.isnan(self.rtts).sum()) / self.probes


class FastSegmentProber:
    """Runs segment measurements as vectorized probe cells.

    Each measurement derives an independent RNG stream from
    ``(seed, label, sequence-number-or-explicit-labels)`` via the
    standard ``derive_seed`` scheme, so results are a pure function of
    the request — the property the sharded campaign engine relies on for
    bit-identical serial/parallel execution (it passes explicit
    ``seed_labels`` to decouple streams from issue order).
    """

    def __init__(
        self,
        network: Network,
        *,
        probes: int = 40,
        interval_us: int = 20_000,
        probe_size: int = 64,
        timeout: float = 5.0,
        seed: int = 0,
        label: str = "fastprobe",
        sandbox_overhead: float = SANDBOX_OVERHEAD,
        allow_overlays: bool = True,
    ) -> None:
        self.network = network
        self.probes = probes
        self.interval_us = interval_us
        self.probe_size = probe_size
        self.timeout = timeout
        self.seed = seed
        self.label = label
        self.sandbox_overhead = sandbox_overhead
        self.allow_overlays = allow_overlays
        self.measurements_run = 0

    # ------------------------------------------------------- cell plumbing

    def build_cell(
        self,
        client: Vantage,
        server: Vantage,
        segment: PathSegment,
        *,
        protocol: Protocol = Protocol.UDP,
        probes: int | None = None,
        start: float | None = None,
        seed_labels: tuple = (),
    ) -> ProbeCell:
        """Extract the measurement as a picklable cell (not yet simulated).

        The sharded campaign loop calls this on the controller and ships
        the cell to a worker; ``measure_sync`` uses it inline.
        """
        count = self.probes if probes is None else probes
        sim = self.network.simulator
        # Server-side warmup offset, as in SegmentProber.measure().
        start_at = (sim.now if start is None else start) + 0.05
        labels = seed_labels or (self.measurements_run,)
        return extract_segment_cell(
            self.network.topology,
            segment,
            protocol,
            client_vantage=client,
            server_vantage=server,
            count=count,
            interval=self.interval_us * 1e-6,
            start=start_at,
            size=self.probe_size,
            timeout=self.timeout,
            seed=cell_seed(self.seed, self.label, *labels),
            label=f"{self.label}/{client[0]}-{server[0]}",
            allow_overlays=self.allow_overlays,
        )

    def measurement_from_arrays(
        self,
        cell: ProbeCell,
        client: Vantage,
        server: Vantage,
        segment: PathSegment,
        send_times: np.ndarray,
        rtts: np.ndarray,
    ) -> FastSegmentMeasurement:
        """Wrap simulated arrays as a judged-measurement object."""
        rtts = rtts + self.sandbox_overhead  # NaN + c stays NaN
        finished = float(cell.start + (cell.count - 1) * cell.interval)
        finite = rtts[~np.isnan(rtts)]
        finished += float(finite.max()) if finite.size else cell.timeout
        return FastSegmentMeasurement(
            client=client,
            server=server,
            protocol=cell.protocol,
            segment=segment,
            probes=cell.count,
            send_times=send_times,
            rtts=rtts,
            started_at=float(cell.start),
            finished_at=finished,
        )

    # ---------------------------------------------------------- measuring

    def measure_sync(
        self,
        client: Vantage,
        server: Vantage,
        segment: PathSegment,
        *,
        protocol: Protocol = Protocol.UDP,
        probes: int | None = None,
        seed_labels: tuple = (),
    ) -> FastSegmentMeasurement:
        """Simulate one measurement and advance the sim clock past it.

        The clock advance mirrors the event-driven prober's synchronous
        pumping, so strategy ``time_to_locate`` accounting stays
        comparable between engines.
        """
        cell = self.build_cell(
            client,
            server,
            segment,
            protocol=protocol,
            probes=probes,
            seed_labels=seed_labels,
        )
        self.measurements_run += 1
        send_times, rtts = simulate_cell_arrays(cell)
        measurement = self.measurement_from_arrays(
            cell, client, server, segment, send_times, rtts
        )
        sim = self.network.simulator
        if measurement.finished_at > sim.now:
            sim.run(until=measurement.finished_at)
        return measurement
