"""Cooperative session orchestration at fleet scale (DESIGN.md §11).

:meth:`Initiator.run_until_done` drives ONE session: it pumps the global
simulator until that session terminates. Launching thousands of sessions
that way serializes the fleet behind whichever session is pumped first and
re-walks the run loop once per session.

:class:`FleetScheduler` multiplexes instead. Sessions are *launched* as
ordinary simulator events (so a load ramp is just a schedule), completions
flow back through each session's ``on_complete`` callback, and one run
loop drains the whole fleet off the simulator clock — no busy-spin, no
per-session pumping. Three mechanisms keep it honest at scale:

- **ready queue** — with ``max_in_flight`` set, launches whose turn has
  come while the fleet is saturated wait in a FIFO and are admitted as
  earlier sessions complete (bounded admission);
- **deadline wheel** — stall detection costs one timer per coarse wheel
  bucket, not one per session: each launched session is filed into the
  bucket covering its deadline (plus grace), and the bucket's single
  callback re-checks its sessions, re-filing any whose deadline moved
  (failover) and raising :class:`SessionStalled` for any that wedged;
- **stall context** — a raised stall carries scheduler state (queue
  depths, launch/completion counts, the stalled session's ledger shard,
  live event subscriptions) so fleet-scale failures are debuggable from
  the exception message alone.

The scheduler adds no session semantics of its own: purchase retries,
backoff, deadlines, refunds, and failover all stay in
:class:`~repro.core.marketplace.Initiator` exactly as before — the chaos
suite runs unchanged against fleets (``tests/chaos``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from repro.common.errors import ConfigurationError, SessionStalled
from repro.common.ids import ObjectId
from repro.core.marketplace import MeasurementSession

#: Callback handed to a launch function; the launch function must pass it
#: as the session's ``on_complete``.
CompletionCallback = Callable[[MeasurementSession], None]

#: A launch function: receives the scheduler's completion callback and
#: returns the started session.
LaunchFn = Callable[[CompletionCallback], MeasurementSession]


class FleetScheduler:
    """Drives many :class:`MeasurementSession` machines off one simulator."""

    def __init__(
        self,
        simulator,
        *,
        ledger=None,
        max_in_flight: int | None = None,
        session_timeout: float = 600.0,
        stall_grace: float = 30.0,
        wheel_resolution: float = 5.0,
        auditor=None,
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be >= 1")
        if wheel_resolution <= 0:
            raise ConfigurationError("wheel_resolution must be positive")
        self.simulator = simulator
        self.ledger = ledger
        self.max_in_flight = max_in_flight
        self.session_timeout = session_timeout
        self.stall_grace = stall_grace
        self.wheel_resolution = wheel_resolution
        # Optional repro.core.audit.Auditor: every completed session is
        # handed over for always-on checks plus sampled replay audits,
        # scheduled cooperatively on the same simulator (DESIGN.md §13).
        self.auditor = auditor

        self.sessions: list[MeasurementSession] = []
        self.completed: list[MeasurementSession] = []
        self.launch_failures: list[str] = []
        self.peak_active = 0
        self._scheduled = 0  # launch events not yet fired
        self._active = 0
        self._ready: deque[tuple[LaunchFn, str]] = deque()
        # Deadline wheel: coarse bucket index -> sessions watched by that
        # bucket's (single) scheduled callback.
        self._wheel: dict[int, list[MeasurementSession]] = {}

    # ---------------------------------------------------------- obs

    @property
    def _obs(self):
        return getattr(self.simulator, "obs", None)

    def _set_active(self, delta: int) -> None:
        self._active += delta
        self.peak_active = max(self.peak_active, self._active)
        obs = self._obs
        if obs is not None:
            obs.metrics.gauge("sessions_active").set(self._active)

    # ------------------------------------------------------- launching

    @property
    def active(self) -> int:
        return self._active

    @property
    def ready_depth(self) -> int:
        return len(self._ready)

    def launch(self, at: float, start: LaunchFn, *, label: str = "") -> None:
        """Schedule ``start`` to run at simulated time ``at``.

        ``start`` receives the scheduler's completion callback and must
        return the started session with that callback installed as its
        ``on_complete``.
        """
        self._scheduled += 1
        self.simulator.schedule_at(
            max(at, self.simulator.now), self._fire, start, label
        )

    def _fire(self, start: LaunchFn, label: str) -> None:
        self._scheduled -= 1
        if self.max_in_flight is not None and self._active >= self.max_in_flight:
            self._ready.append((start, label))
            return
        self._start(start, label)

    def _start(self, start: LaunchFn, label: str) -> None:
        self._set_active(+1)
        try:
            session = start(self._on_session_complete)
        except Exception as exc:
            self._set_active(-1)
            self.launch_failures.append(f"{label or 'session'}: {exc}")
            obs = self._obs
            if obs is not None:
                obs.metrics.counter(
                    "fleet_sessions_total", state="launch-failed"
                ).inc()
            self._admit()
            return
        self.sessions.append(session)
        if session.done:  # completed synchronously (already counted down)
            return
        self._watch(session)

    def _on_session_complete(self, session: MeasurementSession) -> None:
        self._set_active(-1)
        self.completed.append(session)
        obs = self._obs
        if obs is not None:
            obs.metrics.counter(
                "fleet_sessions_total", state=session.state.value
            ).inc()
        if self.auditor is not None:
            self.auditor.on_session_complete(session)
        self._admit()

    def _admit(self) -> None:
        while self._ready and (
            self.max_in_flight is None or self._active < self.max_in_flight
        ):
            start, label = self._ready.popleft()
            self._start(start, label)

    # --------------------------------------------------- deadline wheel

    def _watch_time(self, session: MeasurementSession) -> float:
        if session.deadline is not None:
            return session.deadline + self.stall_grace
        return self.simulator.now + self.session_timeout

    def _watch(self, session: MeasurementSession) -> None:
        at = self._watch_time(session)
        bucket = int(math.ceil(at / self.wheel_resolution))
        watched = self._wheel.get(bucket)
        if watched is None:
            self._wheel[bucket] = [session]
            self.simulator.schedule_at(
                bucket * self.wheel_resolution, self._check_bucket, bucket
            )
        else:
            watched.append(session)

    def _check_bucket(self, bucket: int) -> None:
        for session in self._wheel.pop(bucket, []):
            if session.done:
                continue
            at = self._watch_time(session)
            if at > self.simulator.now:
                # Deadline moved (failover bought a fresh window) or the
                # session was filed early — re-file, don't raise.
                self._watch(session)
                continue
            raise SessionStalled(
                session,
                "fleet watchdog: session still live past its deadline "
                f"(+{self.stall_grace:.0f}s grace)",
                events=self._recent_events(),
                context=self.stall_context(session),
            )

    # ------------------------------------------------------------- run

    def _recent_events(self) -> list[str] | None:
        recent = getattr(self.simulator, "recent_event_lines", None)
        return recent() if recent is not None else None

    def stall_context(self, session: MeasurementSession | None = None) -> dict:
        """Scheduler state for :class:`SessionStalled` diagnostics."""
        context = {
            "sim_now": round(self.simulator.now, 3),
            "active": self._active,
            "ready": len(self._ready),
            "scheduled": self._scheduled,
            "completed": len(self.completed),
            "launch_failures": len(self.launch_failures),
        }
        if self.ledger is not None:
            context["subscriptions"] = self.ledger.events.subscription_count()
            if session is not None and session.client_application:
                context["shard"] = self.ledger.objects.shard_of(
                    ObjectId.from_hex(session.client_application)
                )
        return context

    def outstanding(self) -> int:
        """Launches and sessions that have not reached a terminal state."""
        return self._scheduled + self._active + len(self._ready)

    def run(self, *, until: float | None = None) -> list[MeasurementSession]:
        """Drain the fleet: pump the simulator until every launched
        session is terminal. Returns the completed sessions.

        Raises :class:`SessionStalled` when the simulator goes idle with
        sessions outstanding, when ``until`` simulated time passes first,
        or when the deadline wheel finds a wedged session.
        """
        while self.outstanding():
            if until is not None and self.simulator.now >= until:
                raise SessionStalled(
                    self._first_live_session(),
                    f"fleet did not drain by t={until}",
                    events=self._recent_events(),
                    context=self.stall_context(self._first_live_session()),
                )
            if not self.simulator.step():
                if not self.outstanding():  # last event completed the fleet
                    break
                session = self._first_live_session()
                raise SessionStalled(
                    session,
                    "simulator idle with fleet sessions outstanding",
                    events=self._recent_events(),
                    context=self.stall_context(session),
                )
        return self.completed

    def _first_live_session(self) -> MeasurementSession | None:
        for session in self.sessions:
            if not session.done:
                return session
        return None
