"""Executor fleet management: lifecycle, admission scope, liveness (§VI).

The marketplace so far ran off a *static* executor population: agents were
registered at testbed build time and stayed registered forever. This
module adds the control-plane layer that makes the population dynamic —
the piece the paper's §VI (decentralized discovery, incremental
deployment) presumes and the ROADMAP names "executor fleet management":

- a **lifecycle** per executor — ``registered → active → draining →
  retired`` on the happy path, with sim-clock heartbeats, missed-heartbeat
  suspicion and eviction on the liveness path, and re-registration after a
  crash. Eviction is deliberately distinct from *slashing* (DESIGN.md
  §13): a silent executor is delisted and its unsold inventory withdrawn,
  but its stake is untouched — only the auditor's on-chain conviction
  burns stake. Liveness is not misbehavior.

- **capability-scoped admission** in the "Runners v1" allowlist posture
  (SNIPPETS.md): every fleet member carries a :class:`CapabilityRecord`
  (protocols, host-op allowlist, fuel/memory ceilings, contact-AS scope)
  and every program is checked against the *verifier-inferred* facts —
  :class:`~repro.sandbox.verifier.VerificationReport` capabilities, host
  ops, and worst-case fuel — at registration preflight, at purchase
  preflight, and again at submit time (the manager wraps
  ``executor.admit``). Every decision, admit or deny, lands in an
  auditable per-executor admission log.

- **liveness monitoring**: members heartbeat on the simulator clock;
  a manager sweep marks members ``suspected`` after ``suspect_beats``
  silent intervals and ``evicted`` after ``evict_beats``. A crashed
  executor misses beats (its daemon died with it); a restarted one that
  beats again before eviction recovers to ``active`` without ceremony.
  The chaos layer injects pure heartbeat loss (healthy executor, silent
  control channel) via :meth:`~repro.chaos.ChaosInjector.lose_heartbeats`.

- **graceful drain**: :meth:`FleetManager.drain` withdraws unsold slots
  on-chain (stop selling) while in-flight and already-sold work keeps
  running; the sweep retires the member — and deregisters it on-chain via
  ``deregister_executor`` — only once the executor is idle and every
  application it handled is settled (result published, rejected, or
  refunded).

Everything is scheduled on the simulator clock with no RNG, so same-seed
runs produce byte-identical observability exports. Heartbeat and sweep
timers run until :meth:`FleetManager.stop` — call it (or use
:meth:`FleetManager.run_until`) before ``run_until_idle`` style draining.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import (
    ChainError,
    ConfigurationError,
    DebugletError,
    PolicyViolation,
)
from repro.core.application import DebugletApplication
from repro.sandbox.manifest import KNOWN_CAPABILITIES
from repro.sandbox.verifier import verify_module

#: Every host operation the executor runtime implements (see
#: ``Executor._perform``). A capability record allowlists a subset.
ALL_HOST_OPS = (
    "log_i64",
    "net_recv",
    "net_reply",
    "net_send",
    "now_us",
    "rand_u32",
    "result_i64",
    "result_bytes",
    "sleep_until_us",
)

#: The "Runners v1" safe default posture: observe and report, never
#: transmit. Registration under this allowlist admits passive telemetry
#: programs only; active probing requires the full allowlist.
READ_ONLY_HOST_OPS = tuple(
    op for op in ALL_HOST_OPS if op not in ("net_send", "net_reply")
)


class ExecutorState(enum.Enum):
    """Lifecycle states of a fleet member."""

    REGISTERED = "registered"  # admitted to the fleet; no heartbeat yet
    ACTIVE = "active"  # heartbeating; sellable
    SUSPECTED = "suspected"  # missed beats; not sellable, not yet evicted
    DRAINING = "draining"  # finishing in-flight work; not selling
    RETIRED = "retired"  # graceful exit; deregistered on-chain (terminal)
    EVICTED = "evicted"  # liveness eviction; may re-register


#: States a member never heartbeats out of by itself.
TERMINAL_STATES = frozenset({ExecutorState.RETIRED, ExecutorState.EVICTED})

#: States in which the manager will hand the member new sessions.
SELLABLE_STATES = frozenset({ExecutorState.ACTIVE})


@dataclass(frozen=True)
class CapabilityRecord:
    """What one fleet member is allowed to run (allowlist posture).

    Checked against verifier-inferred program facts, not against what a
    manifest merely *claims*: a program whose bytecode can reach
    ``net_send`` is refused by a read-only record even if its manifest
    understates its needs.
    """

    protocols: tuple[str, ...] = KNOWN_CAPABILITIES
    host_ops: tuple[str, ...] = ALL_HOST_OPS
    max_fuel: int = 100_000_000
    max_memory_bytes: int = 16 * 1024 * 1024
    region: str = ""
    #: ASes this member may be asked to contact; empty = unrestricted.
    contact_asns: tuple[int, ...] = ()
    #: admit native (non-sandboxed, hence unverifiable) programs?
    allow_native: bool = False

    @classmethod
    def from_policy(cls, policy, **overrides) -> "CapabilityRecord":
        """Derive a record from an :class:`ExecutorPolicy`'s ceilings."""
        defaults = dict(
            protocols=tuple(
                getattr(policy, "offered_capabilities", KNOWN_CAPABILITIES)
            ),
            max_fuel=getattr(policy, "max_instructions", 100_000_000),
            max_memory_bytes=getattr(
                policy, "max_memory_bytes", 16 * 1024 * 1024
            ),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def read_only(cls, **overrides) -> "CapabilityRecord":
        """The Runners-v1 safe default: tight, passive allowlist."""
        defaults = dict(host_ops=READ_ONLY_HOST_OPS)
        defaults.update(overrides)
        return cls(**defaults)


@dataclass(frozen=True)
class AdmissionDecision:
    """One auditable entry of a member's admission log."""

    time: float
    subject: str  # program name, or "registration"
    source: str  # "registration" | "purchase" | "submit"
    admitted: bool
    reason: str = ""


@dataclass
class FleetMember:
    """One executor's fleet-side record."""

    vantage: tuple[int, int]
    agent: object  # ExecutorAgent or a duck-typed stand-in
    capabilities: CapabilityRecord
    state: ExecutorState = ExecutorState.REGISTERED
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    beats: int = 0
    missed_evictions: int = 0
    registrations: int = 1
    admission_log: list[AdmissionDecision] = field(default_factory=list)
    history: list[tuple[float, str, str, str]] = field(default_factory=list)
    #: chaos hook: when set and truthy for ``now``, the beat is suppressed.
    heartbeat_gate: Callable[[float], bool] | None = None
    _hb_handle: object = field(default=None, repr=False)
    _drain_span: object = field(default=None, repr=False)
    _guard_installed: bool = field(default=False, repr=False)

    @property
    def executor(self):
        return self.agent.executor

    @property
    def sellable(self) -> bool:
        return self.state in SELLABLE_STATES


def executor_in_flight(executor) -> int:
    """How many executions the executor still owes (scheduled, queued,
    running). Works for both :class:`~repro.core.executor.Executor` and
    the loadgen's synthetic stand-in."""
    count = 0
    for attr in ("_pending_starts", "_waiting", "_live", "_pending"):
        value = getattr(executor, attr, None)
        if value:
            count += len(value)
    return count


class FleetManager:
    """Registration, liveness, drain, and admission for an executor fleet.

    One manager per marketplace. ``market`` (the
    :class:`~repro.contracts.debuglet_market.DebugletMarket` instance) is
    optional but enables settled-work checks during drain and on-chain
    deregistration at retire time.
    """

    def __init__(
        self,
        simulator,
        *,
        market=None,
        heartbeat_interval: float = 5.0,
        suspect_beats: int = 2,
        evict_beats: int = 4,
        sweep_interval: float | None = None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if not 1 <= suspect_beats < evict_beats:
            raise ConfigurationError(
                "need 1 <= suspect_beats < evict_beats"
            )
        self.simulator = simulator
        self.market = market
        self.heartbeat_interval = heartbeat_interval
        self.suspect_beats = suspect_beats
        self.evict_beats = evict_beats
        self.sweep_interval = sweep_interval or heartbeat_interval
        self.members: dict[tuple[int, int], FleetMember] = {}
        #: every transition, fleet-wide: (time, vantage, from, to, reason)
        self.lifecycle_log: list[tuple[float, tuple[int, int], str, str, str]] = []
        self.heartbeats_seen = 0
        self.heartbeats_missed = 0
        self._sweep_handle = None
        self._stopped = False

    # ------------------------------------------------------------- obs

    @property
    def _obs(self):
        return getattr(self.simulator, "obs", None)

    def _emit_gauges(self) -> None:
        obs = self._obs
        if obs is None:
            return
        counts: dict[str, int] = {state.value: 0 for state in ExecutorState}
        for member in self.members.values():
            counts[member.state.value] += 1
        for state, count in counts.items():
            obs.metrics.gauge("fleet_members", state=state).set(count)

    def _transition(
        self, member: FleetMember, state: ExecutorState, reason: str = ""
    ) -> None:
        previous = member.state
        member.state = state
        now = self.simulator.now
        member.history.append((now, previous.value, state.value, reason))
        self.lifecycle_log.append(
            (now, member.vantage, previous.value, state.value, reason)
        )
        obs = self._obs
        if obs is not None:
            obs.metrics.counter(
                "fleet_lifecycle_transitions_total",
                from_state=previous.value,
                to_state=state.value,
            ).inc()
            obs.tracer.event(
                "fleetmgr.transition",
                component="fleetmgr",
                vantage=f"{member.vantage[0]}:{member.vantage[1]}",
                from_state=previous.value,
                to_state=state.value,
                reason=reason,
            )
            self._emit_gauges()

    # ------------------------------------------------------ registration

    def register(
        self,
        agent,
        *,
        capabilities: CapabilityRecord | None = None,
        stake: int = 0,
    ) -> FleetMember:
        """Admit ``agent`` to the fleet and start its lifecycle.

        Registers the executor on-chain (with ``stake`` attached) unless
        the agent already holds a live event subscription, installs the
        capability admission guard around ``executor.admit``, records the
        registration decision, and arms the heartbeat timer. The first
        heartbeat is sent immediately (daemons beat as part of
        registering), so a healthy member is ``active`` on return.
        """
        vantage = (agent.asn, agent.interface)
        existing = self.members.get(vantage)
        if existing is not None and existing.state not in TERMINAL_STATES:
            raise ConfigurationError(
                f"executor {vantage[0]}:{vantage[1]} is already a fleet "
                f"member in state {existing.state.value}"
            )
        record = capabilities
        if record is None:
            policy = getattr(agent.executor, "policy", None)
            record = (
                CapabilityRecord.from_policy(policy)
                if policy is not None
                else CapabilityRecord()
            )
        self._validate_record(agent, record)
        now = self.simulator.now
        if existing is not None:
            member = existing
            member.capabilities = record
            member.registrations += 1
            member.registered_at = now
            member.last_heartbeat = now
            # member.heartbeat_gate survives re-registration: a severed
            # control channel does not heal because the daemon restarted.
            self._transition(member, ExecutorState.REGISTERED, "re-registration")
        else:
            member = FleetMember(
                vantage=vantage,
                agent=agent,
                capabilities=record,
                registered_at=now,
                last_heartbeat=now,
            )
            self.members[vantage] = member
            self.lifecycle_log.append(
                (now, vantage, "-", ExecutorState.REGISTERED.value, "registration")
            )
            obs = self._obs
            if obs is not None:
                obs.tracer.event(
                    "fleetmgr.transition",
                    component="fleetmgr",
                    vantage=f"{vantage[0]}:{vantage[1]}",
                    from_state="-",
                    to_state=ExecutorState.REGISTERED.value,
                    reason="registration",
                )
                self._emit_gauges()
        if getattr(agent, "_subscription", None) is None:
            agent.register(stake=stake)
        self._install_guard(member)
        self._admit_log(
            member, "registration", "registration", True,
            f"capability record accepted ({len(record.host_ops)} host ops, "
            f"protocols: {', '.join(record.protocols) or 'none'})",
        )
        self._arm_heartbeat(member)
        self._beat(member)  # registration carries the first heartbeat
        if self._sweep_handle is None and not self._stopped:
            self._sweep_handle = self.simulator.schedule(
                self.sweep_interval, self._sweep
            )
        return member

    def reregister(
        self,
        vantage: tuple[int, int],
        *,
        capabilities: CapabilityRecord | None = None,
        stake: int = 0,
    ) -> FleetMember:
        """Bring an evicted or retired member back into the fleet.

        The executor must be up (a crashed process cannot register).
        """
        member = self._member(vantage)
        if member.state not in TERMINAL_STATES:
            raise ConfigurationError(
                f"member {vantage[0]}:{vantage[1]} is {member.state.value}; "
                "only evicted or retired members re-register"
            )
        if getattr(member.executor, "crashed", False):
            raise ConfigurationError(
                f"executor {vantage[0]}:{vantage[1]} is down; restart it "
                "before re-registering"
            )
        return self.register(
            member.agent,
            capabilities=capabilities or member.capabilities,
            stake=stake,
        )

    def _validate_record(self, agent, record: CapabilityRecord) -> None:
        """A record may not promise more than the executor policy offers."""
        policy = getattr(agent.executor, "policy", None)
        offered = tuple(
            getattr(policy, "offered_capabilities", KNOWN_CAPABILITIES)
        )
        excess = set(record.protocols) - set(offered)
        if excess:
            raise ConfigurationError(
                f"capability record offers protocols the executor policy "
                f"does not: {sorted(excess)}"
            )
        unknown = set(record.host_ops) - set(ALL_HOST_OPS)
        if unknown:
            raise ConfigurationError(
                f"capability record allowlists unknown host ops: "
                f"{sorted(unknown)}"
            )

    def _member(self, vantage: tuple[int, int]) -> FleetMember:
        member = self.members.get(vantage)
        if member is None:
            raise ConfigurationError(
                f"executor {vantage[0]}:{vantage[1]} is not a fleet member"
            )
        return member

    # -------------------------------------------------------- heartbeats

    def _arm_heartbeat(self, member: FleetMember) -> None:
        if member._hb_handle is not None:
            member._hb_handle.cancel()
        member._hb_handle = self.simulator.schedule(
            self.heartbeat_interval, self._heartbeat, member
        )

    def _heartbeat(self, member: FleetMember) -> None:
        member._hb_handle = None
        if self._stopped or member.state in TERMINAL_STATES:
            return  # timer dies; re-registration re-arms it
        member._hb_handle = self.simulator.schedule(
            self.heartbeat_interval, self._heartbeat, member
        )
        if getattr(member.executor, "crashed", False):
            self._miss(member, "crashed")
            return
        gate = member.heartbeat_gate
        if gate is not None and gate(self.simulator.now):
            self._miss(member, "heartbeat lost")
            return
        self._beat(member)

    def _beat(self, member: FleetMember) -> None:
        member.last_heartbeat = self.simulator.now
        member.beats += 1
        self.heartbeats_seen += 1
        obs = self._obs
        if obs is not None:
            obs.metrics.counter("fleet_heartbeats_total", status="ok").inc()
        if member.state is ExecutorState.REGISTERED:
            self._transition(member, ExecutorState.ACTIVE, "first heartbeat")
        elif member.state is ExecutorState.SUSPECTED:
            self._transition(member, ExecutorState.ACTIVE, "heartbeat resumed")

    def _miss(self, member: FleetMember, why: str) -> None:
        self.heartbeats_missed += 1
        obs = self._obs
        if obs is not None:
            obs.metrics.counter(
                "fleet_heartbeats_total", status="missed"
            ).inc()
        del why  # recorded at suspicion/eviction time, not per miss

    # ------------------------------------------------------------ sweeps

    def _sweep(self) -> None:
        self._sweep_handle = None
        if self._stopped:
            return
        now = self.simulator.now
        for vantage in sorted(self.members):
            member = self.members[vantage]
            if member.state in TERMINAL_STATES:
                continue
            silent = now - member.last_heartbeat
            if silent >= self.evict_beats * self.heartbeat_interval:
                self._evict(
                    member,
                    reason=f"missed heartbeats for {silent:.1f}s "
                    f"(eviction threshold "
                    f"{self.evict_beats * self.heartbeat_interval:.1f}s)",
                )
                continue
            if silent >= self.suspect_beats * self.heartbeat_interval:
                if member.state in (
                    ExecutorState.REGISTERED,
                    ExecutorState.ACTIVE,
                ):
                    self._transition(
                        member,
                        ExecutorState.SUSPECTED,
                        f"no heartbeat for {silent:.1f}s",
                    )
            if member.state is ExecutorState.DRAINING and self._drained(member):
                self._retire(member)
        if any(
            member.state not in TERMINAL_STATES
            for member in self.members.values()
        ):
            self._sweep_handle = self.simulator.schedule(
                self.sweep_interval, self._sweep
            )

    # --------------------------------------------------- drain and retire

    def drain(self, vantage: tuple[int, int]) -> FleetMember:
        """Stop selling new slots; finish in-flight work; retire when idle.

        Withdraws the member's unsold slot inventory on-chain immediately.
        Already-sold applications keep running and publishing; the sweep
        retires (and deregisters) the member once everything is settled.
        """
        member = self._member(vantage)
        if member.state in TERMINAL_STATES or member.state is ExecutorState.DRAINING:
            raise ConfigurationError(
                f"member {vantage[0]}:{vantage[1]} is {member.state.value}; "
                "cannot drain"
            )
        self._withdraw_inventory(member)
        obs = self._obs
        if obs is not None:
            member._drain_span = obs.tracer.begin(
                "fleetmgr.drain",
                component="fleetmgr",
                vantage=f"{vantage[0]}:{vantage[1]}",
            )
        self._transition(member, ExecutorState.DRAINING, "drain requested")
        return member

    def _withdraw_inventory(self, member: FleetMember) -> None:
        try:
            member.agent.withdraw_slots()
        except ChainError:
            pass  # not registered on-chain, or nothing left to withdraw

    def _drained(self, member: FleetMember) -> bool:
        if getattr(member.executor, "crashed", False):
            return False  # crashed mid-drain: the eviction path owns it
        if executor_in_flight(member.executor):
            return False
        return not self._unsettled(member)

    def _unsettled(self, member: FleetMember) -> list[str]:
        """Applications the member handled whose escrow is still open."""
        agent = member.agent
        handled = getattr(agent, "handled_applications", None)
        if not handled or self.market is None:
            return []
        results = self.market.state["results_map"]
        closed = {app_id for app_id, _ in agent.rejected_applications}
        closed.update(app_id for app_id, _ in agent.failed_publications)
        closed.update(agent.dropped_publications)
        return [
            app_id
            for app_id in handled
            if app_id not in results and app_id not in closed
        ]

    def _retire(self, member: FleetMember) -> None:
        self._transition(member, ExecutorState.RETIRED, "drain complete")
        if member._hb_handle is not None:
            member._hb_handle.cancel()
            member._hb_handle = None
        self._deregister_on_chain(member)
        subscription = getattr(member.agent, "_subscription", None)
        if subscription is not None:
            member.agent.ledger.events.unsubscribe(subscription)
            member.agent._subscription = None
        obs = self._obs
        if obs is not None and member._drain_span is not None:
            obs.tracer.finish(member._drain_span, outcome="retired")
            member._drain_span = None

    def _deregister_on_chain(self, member: FleetMember) -> None:
        agent = member.agent
        wallet = getattr(agent, "wallet", None)
        if wallet is None:
            return
        asn, interface = member.vantage
        try:
            wallet.must_call(
                agent.market, "deregister_executor", asn, interface
            )
        except ChainError:
            pass  # never registered, or already deregistered

    # ---------------------------------------------------------- eviction

    def evict(self, vantage: tuple[int, int], *, reason: str) -> FleetMember:
        """Operator-forced eviction (the sweep calls the internal path)."""
        member = self._member(vantage)
        if member.state in TERMINAL_STATES:
            raise ConfigurationError(
                f"member {vantage[0]}:{vantage[1]} is already "
                f"{member.state.value}"
            )
        self._evict(member, reason=reason)
        return member

    def _evict(self, member: FleetMember, *, reason: str) -> None:
        """Liveness eviction: delist, withdraw inventory, stop the timer.

        Deliberately does NOT touch stake or convictions — eviction
        punishes silence with lost sales, not lost collateral. Slashing
        remains the auditor's monopoly (DESIGN.md §13), so a flaky-but-
        honest executor can restart, re-register, and withdraw its stake.
        """
        member.missed_evictions += 1
        if member._hb_handle is not None:
            member._hb_handle.cancel()
            member._hb_handle = None
        self._withdraw_inventory(member)
        if member._drain_span is not None:
            obs = self._obs
            if obs is not None:
                obs.tracer.finish(member._drain_span, outcome="evicted")
            member._drain_span = None
        self._transition(member, ExecutorState.EVICTED, reason)

    # --------------------------------------------------------- admission

    def _install_guard(self, member: FleetMember) -> None:
        if member._guard_installed:
            return
        member._guard_installed = True
        executor = member.executor
        original = executor.admit

        def guarded_admit(application: DebugletApplication) -> None:
            self.check_program(member.vantage, application, source="submit")
            original(application)

        executor.admit = guarded_admit

    def check_program(
        self,
        vantage: tuple[int, int],
        application: DebugletApplication,
        *,
        source: str = "purchase",
    ) -> None:
        """Capability-scope check; raises :class:`PolicyViolation` on deny.

        The decision — either way — is appended to the member's admission
        log. Facts come from the verifier where possible (capabilities,
        host ops, worst-case fuel), from the manifest otherwise.
        """
        member = self._member(vantage)
        record = member.capabilities
        manifest = application.manifest
        reasons: list[str] = []
        claimed = set(manifest.capabilities) - set(record.protocols)
        if claimed:
            reasons.append(
                f"manifest protocols outside capability record: "
                f"{sorted(claimed)}"
            )
        if manifest.max_memory_bytes > record.max_memory_bytes:
            reasons.append(
                f"memory {manifest.max_memory_bytes} > record ceiling "
                f"{record.max_memory_bytes}"
            )
        if record.contact_asns:
            foreign = {
                contact.asn
                for contact in manifest.contacts
                if contact.asn not in record.contact_asns
            }
            if foreign:
                reasons.append(
                    f"contacts outside serviced ASes: {sorted(foreign)}"
                )
        module = application.module
        if module is None:
            if not record.allow_native:
                reasons.append(
                    "native program refused: nothing to verify against "
                    "the allowlist"
                )
        else:
            report = verify_module(module, manifest)
            if report.capabilities_derivable:
                inferred = set(report.capabilities) - set(record.protocols)
                if inferred:
                    reasons.append(
                        f"verifier-inferred protocols outside capability "
                        f"record: {sorted(inferred)}"
                    )
            rogue = set(report.host_ops) - set(record.host_ops)
            if rogue:
                reasons.append(
                    f"host ops outside allowlist: {sorted(rogue)}"
                )
            if report.fuel is None or not report.fuel.is_bounded:
                reasons.append("worst-case fuel not provably bounded")
            elif report.fuel.bound > record.max_fuel:
                reasons.append(
                    f"worst-case fuel {report.fuel.bound} > record ceiling "
                    f"{record.max_fuel}"
                )
        admitted = not reasons
        self._admit_log(
            member, application.name, source, admitted, "; ".join(reasons)
        )
        if not admitted:
            raise PolicyViolation(
                f"fleet admission denied for {application.name!r} at "
                f"{vantage[0]}:{vantage[1]}: " + "; ".join(reasons)
            )

    def preflight(
        self,
        vantage: tuple[int, int],
        application: DebugletApplication,
    ) -> bool:
        """Purchase-time check: is the member sellable and in scope?

        Returns False (after logging, where a member exists) rather than
        raising, so schedulers can fall through to the next candidate.
        """
        member = self.members.get(vantage)
        if member is None:
            return False
        if not member.sellable:
            self._admit_log(
                member,
                application.name,
                "purchase",
                False,
                f"member is {member.state.value}, not sellable",
            )
            return False
        try:
            self.check_program(vantage, application, source="purchase")
        except PolicyViolation:
            return False
        return True

    def _admit_log(
        self,
        member: FleetMember,
        subject: str,
        source: str,
        admitted: bool,
        reason: str,
    ) -> None:
        member.admission_log.append(
            AdmissionDecision(
                time=self.simulator.now,
                subject=subject,
                source=source,
                admitted=admitted,
                reason=reason,
            )
        )
        obs = self._obs
        if obs is not None:
            obs.metrics.counter(
                "fleet_admissions_total",
                verdict="admitted" if admitted else "denied",
                source=source,
            ).inc()
            if not admitted:
                obs.tracer.event(
                    "fleetmgr.admission_denied",
                    component="fleetmgr",
                    vantage=f"{member.vantage[0]}:{member.vantage[1]}",
                    subject=subject,
                    source=source,
                    reason=reason,
                )

    # ----------------------------------------------------------- queries

    def get(self, vantage: tuple[int, int]) -> FleetMember:
        return self._member(vantage)

    def state_of(self, vantage: tuple[int, int]) -> ExecutorState:
        return self._member(vantage).state

    def is_sellable(self, vantage: tuple[int, int]) -> bool:
        member = self.members.get(vantage)
        return member is not None and member.sellable

    def sellable_vantages(self) -> list[tuple[int, int]]:
        return sorted(v for v, m in self.members.items() if m.sellable)

    def members_in(self, *states: ExecutorState) -> list[FleetMember]:
        wanted = set(states)
        return [
            self.members[v]
            for v in sorted(self.members)
            if self.members[v].state in wanted
        ]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for member in self.members.values():
            out[member.state.value] = out.get(member.state.value, 0) + 1
        return dict(sorted(out.items()))

    def admission_log_of(
        self, vantage: tuple[int, int]
    ) -> list[AdmissionDecision]:
        return list(self._member(vantage).admission_log)

    # --------------------------------------------------------- run/stop

    def run_until(self, t: float) -> None:
        """Pump the shared simulator until simulated time ``t``.

        Liveness timers keep the simulator permanently non-idle, so
        ``run_until_idle`` never returns while a manager is live; tests
        and demos advance bounded windows with this instead. A fence
        event at ``t`` keeps the last step from overshooting into events
        scheduled past the target.
        """
        fence = self.simulator.schedule_at(t, lambda: None)
        while self.simulator.now < t and self.simulator.step():
            pass
        fence.cancel()

    def stop(self) -> None:
        """Cancel every timer. After this the manager is inert (queries
        still work) and ``run_until_idle`` drains normally."""
        self._stopped = True
        if self._sweep_handle is not None:
            self._sweep_handle.cancel()
            self._sweep_handle = None
        for member in self.members.values():
            if member._hb_handle is not None:
                member._hb_handle.cancel()
                member._hb_handle = None


__all__ = [
    "ALL_HOST_OPS",
    "READ_ONLY_HOST_OPS",
    "AdmissionDecision",
    "CapabilityRecord",
    "ExecutorState",
    "FleetManager",
    "FleetMember",
    "SELLABLE_STATES",
    "TERMINAL_STATES",
    "executor_in_flight",
]
