"""Fault localization over Debuglet segment measurements.

Implements the paper's measurement-selection strategies (§IV-B, §VI-D):

- **exhaustive** — measure every consecutive inter-domain link plus the
  whole path, then attribute residual degradation to AS interiors by
  decomposition (the Fig 6 procedure generalized);
- **binary** — the §VI-D binary search: split the path at its midpoint,
  recurse into faulty halves; interior faults of the split AS are inferred
  when a faulty interval has two clean halves;
- **linear** — scan growing prefixes from the client side, then
  disambiguate link vs interior with one extra link measurement.

A :class:`FaultJudge` compares each measurement against a baseline
expectation (analytic from the topology, or calibrated), and the localizer
returns a report with suspects, the measurements spent, and time-to-locate
— the §VI-D cost/time trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.core.locplans import SuspectSpec, drive_plan, make_plan
from repro.core.probing import SegmentMeasurement, SegmentProber, Vantage
from repro.netsim.faults import FaultLocation
from repro.netsim.packet import Protocol
from repro.netsim.topology import Topology
from repro.pathaware.segments import PathSegment


def estimate_baseline_rtt(
    topology: Topology,
    segment: PathSegment,
    *,
    sandbox_overhead: float = 300e-6,
) -> float:
    """Analytic no-fault RTT for a D2D measurement over ``segment``.

    Sums propagation both ways over the inter-domain links and the
    interior delays of transit ASes, plus the sandbox host-switch
    overhead. Queueing under benign load is not included — judges should
    allow slack on top of this.
    """
    total = sandbox_overhead
    for a, b in segment.inter_domain_links():
        total += topology.channel_between(a, b).base_delay
        total += topology.channel_between(b, a).base_delay
    hops = segment.as_list()
    for hop in hops:
        asys = topology.autonomous_system(hop.asn)
        if hop.ingress is not None and hop.egress is not None:
            total += 2 * asys.internal_delay  # transit both directions
    return total


@dataclass
class SegmentVerdict:
    """One judged measurement."""

    measurement: SegmentMeasurement
    baseline_rtt_ms: float
    faulty: bool
    reasons: list[str] = field(default_factory=list)


@dataclass
class FaultJudge:
    """Decides whether a segment measurement indicates a fault.

    A segment is faulty when loss exceeds ``loss_threshold``, or the mean
    RTT exceeds baseline by both the absolute slack and the relative
    factor (both must trip, so short segments are not flagged by noise).
    """

    loss_threshold: float = 0.02
    rtt_slack_ms: float = 2.0
    rtt_factor: float = 1.3

    def judge(
        self, measurement: SegmentMeasurement, baseline_rtt_ms: float
    ) -> SegmentVerdict:
        reasons: list[str] = []
        if not measurement.ok:
            reasons.append("execution failed")
            return SegmentVerdict(measurement, baseline_rtt_ms, True, reasons)
        loss = measurement.loss_rate()
        if loss > self.loss_threshold:
            reasons.append(f"loss {loss:.3f} > {self.loss_threshold}")
        mean = measurement.mean_rtt_ms()
        threshold = max(
            baseline_rtt_ms + self.rtt_slack_ms, baseline_rtt_ms * self.rtt_factor
        )
        if not math.isnan(mean) and mean > threshold:
            reasons.append(
                f"rtt {mean:.3f} ms > threshold {threshold:.3f} ms "
                f"(baseline {baseline_rtt_ms:.3f})"
            )
        return SegmentVerdict(measurement, baseline_rtt_ms, bool(reasons), reasons)


@dataclass
class LocalizationReport:
    """What a localization run concluded and what it cost."""

    path: PathSegment
    strategy: str
    suspects: list[FaultLocation]
    verdicts: list[SegmentVerdict]
    started_at: float
    finished_at: float

    @property
    def measurements_used(self) -> int:
        return len(self.verdicts)

    @property
    def time_to_locate(self) -> float:
        return self.finished_at - self.started_at

    def found(self, location: FaultLocation) -> bool:
        """Did the report name ``location`` (link matched either way)?"""
        for suspect in self.suspects:
            if suspect == location:
                return True
            if (
                suspect.link is not None
                and location.link is not None
                and set(suspect.link) == set(location.link)
            ):
                return True
        return False


class FaultLocalizer:
    """Runs a strategy of segment measurements to localize path faults.

    The strategy decision logic lives in :mod:`repro.core.locplans` as
    engine-neutral measurement plans; this class drives a plan against
    the event-driven :class:`~repro.core.probing.SegmentProber`. The
    fast and sharded campaign engines (:mod:`repro.core.fastprobe`,
    :mod:`repro.perf.shardloop`) drive the *same* plans, which is what
    keeps all three engines' measurement sequences identical.
    """

    STRATEGIES = ("exhaustive", "binary", "linear", "guided")

    def __init__(
        self,
        prober: SegmentProber,
        *,
        judge: FaultJudge | None = None,
        protocol: Protocol = Protocol.UDP,
        baseline: Callable[[PathSegment], float] | None = None,
    ) -> None:
        self.prober = prober
        self.judge = judge or FaultJudge()
        self.protocol = protocol
        topology = prober.network.topology
        self._baseline = baseline or (
            lambda segment: estimate_baseline_rtt(topology, segment)
        )

    # ------------------------------------------------------ vantage math

    @staticmethod
    def _client_vantage(path: PathSegment, index: int) -> Vantage:
        hop = path.hops[index]
        interface = hop.egress if hop.egress is not None else hop.ingress
        if interface is None:
            raise ConfigurationError(f"AS {hop.asn} has no on-path interface")
        return (hop.asn, interface)

    @staticmethod
    def _server_vantage(path: PathSegment, index: int) -> Vantage:
        hop = path.hops[index]
        interface = hop.ingress if hop.ingress is not None else hop.egress
        if interface is None:
            raise ConfigurationError(f"AS {hop.asn} has no on-path interface")
        return (hop.asn, interface)

    def _measure(self, path: PathSegment, i: int, j: int) -> SegmentVerdict:
        """Measure the sub-path between on-path AS indices ``i < j``."""
        asns = path.asns()
        segment = path.subsegment(asns[i], asns[j])
        client = self._client_vantage(path, i)
        server = self._server_vantage(path, j)
        measurement = self.prober.measure_sync(
            client, server, segment, protocol=self.protocol
        )
        baseline_ms = self._baseline(segment) * 1e3
        return self.judge.judge(measurement, baseline_ms)

    # -------------------------------------------------------- strategies

    def localize(
        self,
        path: PathSegment,
        *,
        strategy: str = "binary",
        hint: FaultLocation | None = None,
    ) -> LocalizationReport:
        """Run ``strategy`` over ``path`` and report suspects.

        The ``guided`` strategy (§VI-D: "educated initial guesses,
        historical data") checks ``hint`` first with the minimal bracketing
        measurements and falls back to binary search when the hint does
        not pan out.
        """
        if strategy not in self.STRATEGIES:
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        if strategy == "guided" and hint is None:
            raise ConfigurationError("guided strategy requires a hint")
        if path.length < 1:
            raise ConfigurationError("path must cross at least one link")
        started = self.prober.network.simulator.now
        verdicts: list[SegmentVerdict] = []

        def measure(i: int, j: int) -> bool:
            verdict = self._measure(path, i, j)
            verdicts.append(verdict)
            return verdict.faulty

        plan = make_plan(
            strategy,
            path.length,
            hint=hint_spec_for(path, hint) if hint is not None else None,
        )
        specs = drive_plan(plan, measure)
        suspects = [self._location_for(path, spec) for spec in specs]
        finished = self.prober.network.simulator.now
        return LocalizationReport(
            path=path,
            strategy=strategy,
            suspects=suspects,
            verdicts=verdicts,
            started_at=started,
            finished_at=finished,
        )

    def _location_for(self, path: PathSegment, spec: SuspectSpec) -> FaultLocation:
        kind, index = spec
        if kind == "link":
            return self._link_location(path, index)
        return self._interior_location(path, index)

    def _link_location(self, path: PathSegment, i: int) -> FaultLocation:
        egress, ingress = path.inter_domain_links()[i]
        return FaultLocation(link=(egress, ingress))

    @staticmethod
    def _interior_location(path: PathSegment, index: int) -> FaultLocation:
        return FaultLocation(asn=path.hops[index].asn)


def hint_spec_for(path: PathSegment, hint: FaultLocation) -> SuspectSpec | None:
    """Resolve a :class:`FaultLocation` hint to on-path plan indices.

    Returns ``("link", i)`` when the hint names the path's i-th crossed
    link (either direction), ``("interior", k)`` when it names the k-th
    on-path AS, or ``None`` when the hint is off-path (the guided plan
    then degenerates to binary search).
    """
    if hint.link is not None:
        for index, (a, b) in enumerate(path.inter_domain_links()):
            if {a, b} == set(hint.link):
                return ("link", index)
        return None
    if hint.asn is not None:
        asns = path.asns()
        if hint.asn in asns:
            return ("interior", asns.index(hint.asn))
    return None
