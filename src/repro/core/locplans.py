"""Measurement plans: localization strategies as engine-neutral generators.

The §VI-D strategies (exhaustive, binary, linear, guided) used to live as
recursive methods inside :class:`~repro.core.localization.FaultLocalizer`,
hard-wired to the event-driven :class:`~repro.core.probing.SegmentProber`.
PR 10 needs the *same* decision logic driven by three different
measurement engines — event-driven VM probing, the vectorized fast path,
and the region-sharded campaign loop — so the strategies are factored out
as coroutine **plans**:

- a plan ``yield``\\ s a measurement request ``(i, j)`` — "measure the
  sub-path between on-path hop indices ``i < j``";
- the driver ``send``\\ s back the judged boolean (*faulty or not*);
- the plan ``return``\\ s its suspects as :class:`SuspectSpec` tuples
  (``("link", i)`` — the i-th crossed link; ``("interior", k)`` — the
  interior of the k-th on-path AS).

Plans are pure index arithmetic over a path of ``n`` links: no probing,
no topology, no randomness. That is what guarantees the fast and sharded
campaign engines reproduce the event-driven engine's measurement sequence
exactly — they all run this one generator — and it is what the
serial-vs-sharded digest equality test ultimately rests on.

The sharded loop additionally exploits that a plan between two ``yield``\\ s
is *suspended state*: thousands of concurrent episodes each hold a plan,
and the epoch barrier resumes them in deterministic order.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.common.errors import ConfigurationError

#: ``("link", i)`` or ``("interior", k)`` — resolved to concrete
#: :class:`~repro.netsim.faults.FaultLocation` values by the caller, which
#: knows the path.
SuspectSpec = tuple[str, int]

#: A measurement plan: yields ``(i, j)`` requests, receives ``faulty``
#: booleans, returns suspect specs.
Plan = Generator[tuple[int, int], bool, list[SuspectSpec]]

STRATEGIES = ("exhaustive", "binary", "linear", "guided")


def plan_binary(n: int) -> Plan:
    """The §VI-D binary search over a path of ``n`` links.

    Splits the faulty interval at its midpoint and recurses into faulty
    halves; an interval that is faulty while both halves are clean pins
    the split AS's interior (which neither half traverses).
    """

    def search(lo: int, hi: int) -> Plan:
        faulty = yield (lo, hi)
        if not faulty:
            return []
        if hi - lo == 1:
            return [("link", lo)]
        mid = (lo + hi) // 2
        left = yield from search(lo, mid)
        right = yield from search(mid, hi)
        if not left and not right:
            return [("interior", mid)]
        return left + right

    return (yield from search(0, n))


def plan_linear(n: int) -> Plan:
    """Prefix scan from the client side, restarted past each fault.

    When the prefix ``(base, k)`` turns faulty, one extra link
    measurement disambiguates the link entering AS ``k`` from the
    interior of AS ``k-1``.
    """
    suspects: list[SuspectSpec] = []
    base = 0
    k = 1
    while k <= n:
        faulty = yield (base, k)
        if not faulty:
            k += 1
            continue
        if k - base == 1:
            suspects.append(("link", base))
        else:
            link_faulty = yield (k - 1, k)
            if link_faulty:
                suspects.append(("link", k - 1))
            else:
                suspects.append(("interior", k - 1))
        base = k
        k += 1
    return suspects


def plan_exhaustive(n: int) -> Plan:
    """Every link, then the Fig 6 interior decomposition per transit AS."""
    suspects: list[SuspectSpec] = []
    link_faulty: list[bool] = []
    for i in range(n):
        faulty = yield (i, i + 1)
        link_faulty.append(faulty)
        if faulty:
            suspects.append(("link", i))
    for k in range(1, n):
        faulty = yield (k - 1, k + 1)
        if faulty and not (link_faulty[k - 1] or link_faulty[k]):
            suspects.append(("interior", k))
    return suspects


def plan_guided(n: int, hint: SuspectSpec | None) -> Plan:
    """Check a hinted location first, then fall back to binary search.

    ``hint`` is a :class:`SuspectSpec` already resolved to on-path
    indices (or ``None`` when the hint is off-path, in which case this
    degenerates to plain binary search).
    """
    if hint is not None:
        kind, index = hint
        if kind == "link":
            faulty = yield (index, index + 1)
            if faulty:
                return [("link", index)]
        elif kind == "interior" and 0 < index < n:
            whole = yield (index - 1, index + 1)
            if whole:
                left = yield (index - 1, index)
                right = yield (index, index + 1)
                if not (left or right):
                    return [("interior", index)]
                suspects: list[SuspectSpec] = []
                if left:
                    suspects.append(("link", index - 1))
                if right:
                    suspects.append(("link", index))
                return suspects
    return (yield from plan_binary(n))


def make_plan(strategy: str, n: int, *, hint: SuspectSpec | None = None) -> Plan:
    """Instantiate the plan generator for ``strategy`` over ``n`` links."""
    if strategy == "binary":
        return plan_binary(n)
    if strategy == "linear":
        return plan_linear(n)
    if strategy == "exhaustive":
        return plan_exhaustive(n)
    if strategy == "guided":
        return plan_guided(n, hint)
    raise ConfigurationError(f"unknown strategy {strategy!r}")


def drive_plan(
    plan: Plan, measure: Callable[[int, int], bool]
) -> list[SuspectSpec]:
    """Run ``plan`` to completion against a synchronous measure function."""
    try:
        request = next(plan)
        while True:
            request = plan.send(measure(*request))
    except StopIteration as stop:
        return stop.value or []
