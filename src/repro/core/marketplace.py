"""Marketplace runtime: wiring executors and initiators to the chain.

Implements the five-step measurement flow of §IV-A over the
:class:`~repro.contracts.debuglet_market.DebugletMarket` contract:

1. an endpoint (here: the initiator itself) wants a measurement;
2. the initiator generates Debuglet applications and looks up slots;
3. it purchases the slots, escrowing tokens with the bytecode on-chain;
4. executor agents — subscribed to ``ApplicationSubmitted`` events for
   their ``<AS, interface>`` — fetch, admit, and run the applications at
   the purchased window;
5. each agent publishes its certified result with ``result_ready``,
   collecting the escrowed payment; the initiator is notified through
   ``ResultReady`` events.

Result payloads on-chain are JSON: the raw result bytes (hex), the
execution status, and the executor's :class:`ResultCertificate` fields, so
any third party can run :mod:`repro.core.verification` against them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.chain.events import Event
from repro.chain.ledger import Ledger, Wallet
from repro.common.errors import ChainError, DebugletError
from repro.common.ids import ObjectId
from repro.contracts.debuglet_market import APPLICATION_KIND, ExecutionSlot
from repro.core.application import DebugletApplication
from repro.core.executor import ExecutionRecord, Executor, ResultCertificate
from repro.core.offchain import OffChainCodeStore


def encode_result_payload(record: ExecutionRecord) -> bytes:
    """The on-chain result blob: result bytes + status + certificate."""
    certificate = record.certificate
    if certificate is None:
        raise DebugletError("execution record has no certificate")
    payload = {
        "result": record.result.hex(),
        "status": record.status,
        "packets_sent": record.packets_sent,
        "packets_received": record.packets_received,
        "certificate": {
            "asn": certificate.asn,
            "interface": certificate.interface,
            "code_hash": certificate.code_hash.hex(),
            "result_hash": certificate.result_hash.hex(),
            "started_at": certificate.started_at,
            "finished_at": certificate.finished_at,
            "public_key": certificate.executor_public_key.hex(),
            "signature": certificate.signature.hex(),
        },
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_result_payload(blob: bytes) -> tuple[bytes, str, ResultCertificate]:
    """Inverse of :func:`encode_result_payload`."""
    try:
        payload = json.loads(blob.decode("utf-8"))
        cert = payload["certificate"]
        certificate = ResultCertificate(
            asn=cert["asn"],
            interface=cert["interface"],
            code_hash=bytes.fromhex(cert["code_hash"]),
            result_hash=bytes.fromhex(cert["result_hash"]),
            started_at=cert["started_at"],
            finished_at=cert["finished_at"],
            executor_public_key=bytes.fromhex(cert["public_key"]),
            signature=bytes.fromhex(cert["signature"]),
        )
        return bytes.fromhex(payload["result"]), payload["status"], certificate
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise DebugletError(f"malformed result payload: {exc}") from exc


class ExecutorAgent:
    """An executor's on-chain presence (steps 3–5 of the flow)."""

    def __init__(
        self,
        executor: Executor,
        ledger: Ledger,
        *,
        market: str = "debuglet_market",
        gas_funding: int = 10_000_000_000,
        code_store: "OffChainCodeStore | None" = None,
    ) -> None:
        self.executor = executor
        self.ledger = ledger
        self.market = market
        self.wallet = Wallet(ledger, executor.keypair)
        if ledger.balance_of(self.wallet.address) < gas_funding:
            ledger.faucet(self.wallet.address, gas_funding)
        self.code_store = code_store
        self.handled_applications: list[str] = []
        self.rejected_applications: list[tuple[str, str]] = []
        self._subscription = None

    @property
    def asn(self) -> int:
        return self.executor.asn

    @property
    def interface(self) -> int:
        return self.executor.interface

    def register(self) -> None:
        """RegisterExecutor + start watching for purchased applications."""
        self.wallet.must_call(self.market, "register_executor", self.asn, self.interface)
        self._subscription = self.ledger.events.subscribe(
            "ApplicationSubmitted",
            self._on_application,
            asn=self.asn,
            interface=self.interface,
        )

    def offer_slots(self, slots: list[ExecutionSlot]) -> None:
        """RegisterTimeSlot for this executor."""
        self.wallet.must_call(
            self.market,
            "register_time_slot",
            self.asn,
            self.interface,
            [slot.as_dict() for slot in slots],
        )

    def offer_standing_slots(
        self,
        *,
        horizon: float = 3600.0,
        price: int = 50_000_000,
        cores: int = 2,
        memory_mb: int = 512,
        bandwidth_mbps: int = 100,
        count: int = 16,
    ) -> None:
        """Offer ``count`` back-to-back slots covering the next ``horizon``
        seconds — the standing IaaS-style availability the paper expects
        ISPs to provision (§V-B)."""
        now = self.ledger.now
        width = horizon / count
        slots = [
            ExecutionSlot(
                cores=cores,
                memory_mb=memory_mb,
                bandwidth_mbps=bandwidth_mbps,
                start=now + i * width,
                end=now + (i + 1) * width,
                price=price,
            )
            for i in range(count)
        ]
        self.offer_slots(slots)

    # ------------------------------------------------------ event handling

    def _on_application(self, event: Event) -> None:
        application_id = event.get("application_id")
        self.handled_applications.append(application_id)
        obj = self.ledger.objects.get(ObjectId.from_hex(application_id))
        if obj.kind != APPLICATION_KIND:
            return
        try:
            wire = self._fetch_wire(obj.data)
            application = DebugletApplication.from_wire(wire)
            self.executor.admit(application)
        except DebugletError as exc:
            # Inadmissible or unfetchable application: never run; the
            # initiator's escrow stays locked (a real deployment would add
            # a refund path).
            self.rejected_applications.append((application_id, str(exc)))
            return
        window_start = obj.data["window"]["start"]
        start_at = max(window_start, self.executor.simulator.now)

        def on_complete(record: ExecutionRecord) -> None:
            self._publish_result(application_id, record)

        self.executor.submit(application, start_at=start_at, on_complete=on_complete)

    def _fetch_wire(self, data: dict) -> bytes:
        """The on-chain bytecode, or the off-chain blob verified against
        the on-chain hash (§V-B optimization)."""
        if "bytecode" in data:
            return data["bytecode"]
        digest = data.get("bytecode_hash")
        if digest is None:
            raise DebugletError("application object carries no code nor hash")
        if self.code_store is None:
            raise DebugletError("hash-only application but no off-chain store")
        return self.code_store.get_verified(digest)

    def _publish_result(self, application_id: str, record: ExecutionRecord) -> None:
        self.wallet.must_call(
            self.market,
            "result_ready",
            application_id,
            encode_result_payload(record),
        )


@dataclass
class MeasurementOutcome:
    """One side's published result, decoded."""

    application_id: str
    result: bytes = b""
    status: str = ""
    certificate: ResultCertificate | None = None


@dataclass
class MeasurementSession:
    """A purchased client/server measurement awaiting results."""

    client_application: str
    server_application: str
    window_start: float
    window_end: float
    total_price: int
    purchase_digest: bytes
    requested_at: float
    outcomes: dict[str, MeasurementOutcome] = field(default_factory=dict)
    completed_at: float | None = None
    on_complete: Callable[["MeasurementSession"], None] | None = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def client_outcome(self) -> MeasurementOutcome:
        return self.outcomes["client"]

    @property
    def server_outcome(self) -> MeasurementOutcome:
        return self.outcomes["server"]

    @property
    def delay_to_measurement(self) -> float:
        """Request-to-window-start latency (§V-B delay-to-measurement)."""
        return self.window_start - self.requested_at


class Initiator:
    """The requesting side: generates Debuglets, buys slots, awaits results."""

    def __init__(
        self,
        ledger: Ledger,
        wallet: Wallet,
        *,
        market: str = "debuglet_market",
    ) -> None:
        self.ledger = ledger
        self.wallet = wallet
        self.market = market
        self.sessions: list[MeasurementSession] = []

    def request_measurement(
        self,
        client_app: DebugletApplication,
        server_app: DebugletApplication,
        client_vantage: tuple[int, int],
        server_vantage: tuple[int, int],
        *,
        duration: float,
        cores: int = 1,
        memory_mb: int = 128,
        bandwidth_mbps: int = 10,
        earliest: float | None = None,
        on_complete: Callable[[MeasurementSession], None] | None = None,
        code_store: OffChainCodeStore | None = None,
    ) -> MeasurementSession:
        """Steps 2–3: LookupSlot then PurchaseSlot with escrowed tokens.

        ``earliest`` defaults to now plus two finality latencies and a
        small margin — the soonest the executors can have learned of the
        purchase (both critical-path transactions must finalize).

        With ``code_store`` set, the applications ship off-chain and only
        their hashes are purchased on-chain (§V-B's ~1-cent optimization);
        the executor agents must share the same store.
        """
        requested_at = self.ledger.now
        if earliest is None:
            earliest = requested_at + 2 * self.ledger.finality_latency + 0.1
        asn_c, intf_c = client_vantage
        asn_s, intf_s = server_vantage

        lookup = self.wallet.must_call(
            self.market,
            "lookup_slot",
            asn_c,
            intf_c,
            asn_s,
            intf_s,
            cores,
            memory_mb,
            bandwidth_mbps,
            duration,
            earliest,
        ).return_value

        if code_store is None:
            client_payload = client_app.to_wire()
            server_payload = server_app.to_wire()
            purchase_function = "purchase_slot"
        else:
            client_payload = code_store.put(client_app.to_wire())
            server_payload = code_store.put(server_app.to_wire())
            purchase_function = "purchase_slot_hashed"
        purchase = self.wallet.must_call(
            self.market,
            purchase_function,
            asn_c,
            intf_c,
            asn_s,
            intf_s,
            lookup["client_slot_start"],
            lookup["server_slot_start"],
            lookup["start"],
            lookup["end"],
            client_payload,
            client_app.manifest.as_dict(),
            server_payload,
            server_app.manifest.as_dict(),
            value=lookup["total_price"],
        )
        apps = purchase.return_value
        session = MeasurementSession(
            client_application=apps["client_application"],
            server_application=apps["server_application"],
            window_start=lookup["start"],
            window_end=lookup["end"],
            total_price=apps["total_price"],
            purchase_digest=purchase.digest,
            requested_at=requested_at,
            on_complete=on_complete,
        )
        session.outcomes["client"] = MeasurementOutcome(apps["client_application"])
        session.outcomes["server"] = MeasurementOutcome(apps["server_application"])
        self.sessions.append(session)
        for role, app_id in (
            ("client", apps["client_application"]),
            ("server", apps["server_application"]),
        ):
            self.ledger.events.subscribe(
                "ResultReady",
                lambda event, role=role, session=session: self._on_result(
                    session, role, event
                ),
                application_id=app_id,
            )
        return session

    def _on_result(self, session: MeasurementSession, role: str, event: Event) -> None:
        if session.done:
            return
        outcome = session.outcomes[role]
        if outcome.status:
            return  # already recorded
        lookup = self.wallet.must_call(
            self.market, "lookup_result", outcome.application_id
        ).return_value
        result, status, certificate = decode_result_payload(lookup["result"])
        outcome.result = result
        outcome.status = status
        outcome.certificate = certificate
        if all(o.status for o in session.outcomes.values()):
            session.completed_at = self.ledger.now
            if session.on_complete is not None:
                session.on_complete(session)

    @staticmethod
    def run_until_done(session: MeasurementSession, simulator) -> MeasurementSession:
        """Pump the simulator until the session completes."""
        while not session.done:
            if not simulator.step():
                raise ChainError("simulation idle before session completion")
        return session
