"""Marketplace runtime: wiring executors and initiators to the chain.

Implements the five-step measurement flow of §IV-A over the
:class:`~repro.contracts.debuglet_market.DebugletMarket` contract:

1. an endpoint (here: the initiator itself) wants a measurement;
2. the initiator generates Debuglet applications and looks up slots;
3. it purchases the slots, escrowing tokens with the bytecode on-chain;
4. executor agents — subscribed to ``ApplicationSubmitted`` events for
   their ``<AS, interface>`` — fetch, admit, and run the applications at
   the purchased window;
5. each agent publishes its certified result with ``result_ready``,
   collecting the escrowed payment; the initiator is notified through
   ``ResultReady`` events.

Result payloads on-chain are JSON: the raw result bytes (hex), the
execution status, and the executor's :class:`ResultCertificate` fields, so
any third party can run :mod:`repro.core.verification` against them.

Robustness layer (§IV-C failure handling; exercised by ``tests/chaos``):
every session walks an explicit :class:`SessionState` machine, transient
ledger outages (:class:`~repro.common.errors.LedgerUnavailable`) are
retried with seeded exponential backoff + jitter on both sides, sessions
can carry a hard deadline after which the initiator reclaims its escrow
(``refund_expired``) or fails over to a fresh slot, and
:meth:`Initiator.run_until_done` raises
:class:`~repro.common.errors.SessionStalled` instead of spinning forever.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Callable

from repro.chain.events import Event
from repro.chain.ledger import Ledger, Wallet
from repro.common.errors import (
    ChainError,
    DebugletError,
    LedgerUnavailable,
    SessionStalled,
)
from repro.common.ids import ObjectId
from repro.common.rng import derive_rng
from repro.contracts.debuglet_market import APPLICATION_KIND, ExecutionSlot
from repro.core.application import DebugletApplication
from repro.core.executor import ExecutionRecord, Executor, ResultCertificate
from repro.core.offchain import OffChainCodeStore


def encode_result_payload(record: ExecutionRecord) -> bytes:
    """The on-chain result blob: result bytes + status + certificate."""
    certificate = record.certificate
    if certificate is None:
        raise DebugletError("execution record has no certificate")
    payload = {
        "result": record.result.hex(),
        "status": record.status,
        "packets_sent": record.packets_sent,
        "packets_received": record.packets_received,
        "certificate": {
            "asn": certificate.asn,
            "interface": certificate.interface,
            "code_hash": certificate.code_hash.hex(),
            "result_hash": certificate.result_hash.hex(),
            "started_at": certificate.started_at,
            "finished_at": certificate.finished_at,
            "public_key": certificate.executor_public_key.hex(),
            "signature": certificate.signature.hex(),
        },
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_result_payload(blob: bytes) -> tuple[bytes, str, ResultCertificate]:
    """Inverse of :func:`encode_result_payload`."""
    try:
        payload = json.loads(blob.decode("utf-8"))
        cert = payload["certificate"]
        certificate = ResultCertificate(
            asn=cert["asn"],
            interface=cert["interface"],
            code_hash=bytes.fromhex(cert["code_hash"]),
            result_hash=bytes.fromhex(cert["result_hash"]),
            started_at=cert["started_at"],
            finished_at=cert["finished_at"],
            executor_public_key=bytes.fromhex(cert["public_key"]),
            signature=bytes.fromhex(cert["signature"]),
        )
        return bytes.fromhex(payload["result"]), payload["status"], certificate
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise DebugletError(f"malformed result payload: {exc}") from exc


class ExecutorAgent:
    """An executor's on-chain presence (steps 3–5 of the flow).

    Result publication survives transient ledger outages: on
    :class:`LedgerUnavailable` the agent retries with seeded exponential
    backoff + jitter (up to ``publish_retries`` times). Permanent reverts
    (e.g. the application was refunded after its window expired) are
    recorded in ``failed_publications`` rather than raised into the
    simulator loop. The ``publication_gate`` hook is the chaos layer's
    entry point for dropping or delaying publications.
    """

    def __init__(
        self,
        executor: Executor,
        ledger: Ledger,
        *,
        market: str = "debuglet_market",
        gas_funding: int = 10_000_000_000,
        code_store: "OffChainCodeStore | None" = None,
        publish_retries: int = 6,
        retry_base: float = 0.2,
        retry_jitter: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.executor = executor
        self.ledger = ledger
        self.market = market
        self.wallet = Wallet(ledger, executor.keypair)
        if ledger.balance_of(self.wallet.address) < gas_funding:
            ledger.faucet(self.wallet.address, gas_funding)
        self.code_store = code_store
        self.publish_retries = publish_retries
        self.retry_base = retry_base
        self.retry_jitter = retry_jitter
        self._retry_rng = derive_rng(
            seed, "agent-retry", executor.asn, executor.interface
        )
        self.handled_applications: list[str] = []
        self.rejected_applications: list[tuple[str, str]] = []
        # Gate consulted before each publication attempt: returns "publish",
        # "drop", or ("delay", seconds). Installed by repro.chaos.
        self.publication_gate: (
            Callable[[str, ExecutionRecord], object] | None
        ) = None
        self.dropped_publications: list[str] = []
        self.failed_publications: list[tuple[str, str]] = []
        self.publication_retries = 0
        self._subscription = None

    @property
    def asn(self) -> int:
        return self.executor.asn

    @property
    def interface(self) -> int:
        return self.executor.interface

    @property
    def _obs(self):
        obs = self.executor.simulator.obs
        if obs is not None:
            return obs
        return getattr(self.ledger, "obs", None)

    def register(self, *, stake: int = 0) -> None:
        """RegisterExecutor + start watching for purchased applications.

        ``stake`` tokens (if any) are attached to the registration and
        escrowed as slashable collateral: burned by ``slash_executor`` on
        an audit conviction, withdrawable via ``withdraw_stake``
        otherwise (DESIGN.md §13).
        """
        self.wallet.must_call(
            self.market, "register_executor", self.asn, self.interface,
            value=stake,
        )
        self._subscription = self.ledger.events.subscribe(
            "ApplicationSubmitted",
            self._on_application,
            asn=self.asn,
            interface=self.interface,
        )

    def offer_slots(self, slots: list[ExecutionSlot]) -> None:
        """RegisterTimeSlot for this executor."""
        self.wallet.must_call(
            self.market,
            "register_time_slot",
            self.asn,
            self.interface,
            [slot.as_dict() for slot in slots],
        )

    def offer_standing_slots(
        self,
        *,
        horizon: float = 3600.0,
        price: int = 50_000_000,
        cores: int = 2,
        memory_mb: int = 512,
        bandwidth_mbps: int = 100,
        count: int = 16,
    ) -> None:
        """Offer ``count`` back-to-back slots covering the next ``horizon``
        seconds — the standing IaaS-style availability the paper expects
        ISPs to provision (§V-B)."""
        now = self.ledger.now
        width = horizon / count
        slots = [
            ExecutionSlot(
                cores=cores,
                memory_mb=memory_mb,
                bandwidth_mbps=bandwidth_mbps,
                start=now + i * width,
                end=now + (i + 1) * width,
                price=price,
            )
            for i in range(count)
        ]
        self.offer_slots(slots)

    def withdraw_slots(self) -> int:
        """Withdraw all still-advertised slots (renege on unsold inventory)."""
        receipt = self.wallet.must_call(
            self.market, "withdraw_time_slots", self.asn, self.interface
        )
        return receipt.return_value

    # ------------------------------------------------------ event handling

    def _on_application(self, event: Event) -> None:
        application_id = event.get("application_id")
        self.handled_applications.append(application_id)
        obj = self.ledger.objects.get(ObjectId.from_hex(application_id))
        if obj.kind != APPLICATION_KIND:
            return
        try:
            wire = self._fetch_wire(obj.data)
            application = DebugletApplication.from_wire(wire)
            self.executor.admit(application)
        except DebugletError as exc:
            # Inadmissible or unfetchable application: never run. The
            # initiator's escrow stays locked until it reclaims it with
            # refund_expired after the window passes.
            self.rejected_applications.append((application_id, str(exc)))
            return
        window_start = obj.data["window"]["start"]
        start_at = max(window_start, self.executor.simulator.now)

        def on_complete(record: ExecutionRecord) -> None:
            self._publish_result(application_id, record)

        try:
            self.executor.submit(application, start_at=start_at, on_complete=on_complete)
        except DebugletError as exc:
            # Down (crashed) or otherwise unable to schedule: treat like a
            # rejection — the session-level deadline handles recovery.
            self.rejected_applications.append((application_id, str(exc)))

    def _fetch_wire(self, data: dict) -> bytes:
        """The on-chain bytecode, or the off-chain blob verified against
        the on-chain hash (§V-B optimization)."""
        if "bytecode" in data:
            return data["bytecode"]
        digest = data.get("bytecode_hash")
        if digest is None:
            raise DebugletError("application object carries no code nor hash")
        if self.code_store is None:
            raise DebugletError("hash-only application but no off-chain store")
        return self.code_store.get_verified(digest)

    def _publish_result(
        self,
        application_id: str,
        record: ExecutionRecord,
        retries_left: int | None = None,
    ) -> None:
        if retries_left is None:
            retries_left = self.publish_retries
        obs = self._obs
        if self.publication_gate is not None:
            verdict = self.publication_gate(application_id, record)
            if verdict == "drop":
                self.dropped_publications.append(application_id)
                if obs is not None:
                    obs.metrics.counter(
                        "marketplace_publications_total", status="dropped"
                    ).inc()
                    obs.tracer.event(
                        "marketplace.publication_dropped",
                        component="marketplace",
                        application_id=application_id,
                        vantage=f"{self.asn}:{self.interface}",
                    )
                return
            if isinstance(verdict, tuple) and verdict[0] == "delay":
                self.executor.simulator.schedule(
                    max(float(verdict[1]), 0.0),
                    self._publish_result,
                    application_id,
                    record,
                    retries_left,
                )
                return
        try:
            self.wallet.must_call(
                self.market,
                "result_ready",
                application_id,
                encode_result_payload(record),
            )
        except LedgerUnavailable as exc:
            if retries_left > 0:
                attempt = self.publish_retries - retries_left
                delay = self.retry_base * (2**attempt) + float(
                    self._retry_rng.uniform(0.0, self.retry_jitter)
                )
                self.publication_retries += 1
                if obs is not None:
                    obs.metrics.counter(
                        "marketplace_retries_total", kind="publish"
                    ).inc()
                self.executor.simulator.schedule(
                    delay, self._publish_result, application_id, record,
                    retries_left - 1,
                )
            else:
                self.failed_publications.append(
                    (application_id, f"gave up after retries: {exc}")
                )
                if obs is not None:
                    obs.metrics.counter(
                        "marketplace_publications_total", status="failed"
                    ).inc()
        except ChainError as exc:
            self.failed_publications.append((application_id, str(exc)))
            if obs is not None:
                obs.metrics.counter(
                    "marketplace_publications_total", status="reverted"
                ).inc()
        else:
            if obs is not None:
                obs.metrics.counter(
                    "marketplace_publications_total", status="published"
                ).inc()


class SessionState(enum.Enum):
    """Lifecycle states of a :class:`MeasurementSession` (§IV-C)."""

    PENDING = "pending"  # request made; purchase not (yet) finalized
    PURCHASED = "purchased"  # slots bought, escrow locked, window ahead
    RUNNING = "running"  # execution window open, awaiting results
    CERTIFIED = "certified"  # both certified results decoded (terminal)
    TIMED_OUT = "timed-out"  # deadline missed; refund/failover under way
    REFUNDED = "refunded"  # escrow reclaimed after timeout (terminal)
    FAILED = "failed"  # no recovery possible (terminal)


#: States from which a session never moves again.
TERMINAL_STATES = frozenset(
    {SessionState.CERTIFIED, SessionState.REFUNDED, SessionState.FAILED}
)


@dataclass
class MeasurementOutcome:
    """One side's published result, decoded."""

    application_id: str
    result: bytes = b""
    status: str = ""
    certificate: ResultCertificate | None = None
    failure: str = ""  # why no result arrived, when the session degraded


@dataclass
class _RequestPlan:
    """Everything needed to (re-)purchase a session's slots."""

    client_app: DebugletApplication
    server_app: DebugletApplication
    vantages: list[tuple[tuple[int, int], tuple[int, int]]]
    duration: float
    cores: int
    memory_mb: int
    bandwidth_mbps: int
    earliest: float | None
    code_store: OffChainCodeStore | None
    deadline_margin: float | None
    tx_retries: int
    retry_base: float
    retry_jitter: float

    def vantage_for(self, attempt: int) -> tuple[tuple[int, int], tuple[int, int]]:
        return self.vantages[min(attempt - 1, len(self.vantages) - 1)]


@dataclass
class MeasurementSession:
    """A purchased client/server measurement awaiting results."""

    client_application: str = ""
    server_application: str = ""
    window_start: float = 0.0
    window_end: float = 0.0
    total_price: int = 0
    purchase_digest: bytes = b""
    requested_at: float = 0.0
    outcomes: dict[str, MeasurementOutcome] = field(default_factory=dict)
    completed_at: float | None = None
    on_complete: Callable[["MeasurementSession"], None] | None = None
    # Robustness layer.
    state: SessionState = SessionState.PENDING
    state_history: list[tuple[float, SessionState]] = field(default_factory=list)
    failure_reason: str = ""
    deadline: float | None = None
    attempt: int = 1
    max_attempts: int = 1
    purchase_retries: int = 0
    refunds: dict[str, int] = field(default_factory=dict)
    superseded_applications: list[str] = field(default_factory=list)
    plan: _RequestPlan | None = field(default=None, repr=False)
    # Internal bookkeeping (not part of the public API).
    _subscriptions: list = field(default_factory=list, repr=False)
    _deadline_handle: object = field(default=None, repr=False)
    _span: object = field(default=None, repr=False)
    _corr: str = field(default="", repr=False)
    _refunds_outstanding: int = field(default=0, repr=False)
    _settle_paid: int = field(default=0, repr=False)
    _refund_failures: list = field(default_factory=list, repr=False)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def partial(self) -> bool:
        """Terminal, but with at least one side's result missing."""
        return self.done and any(not o.status for o in self.outcomes.values())

    @property
    def client_outcome(self) -> MeasurementOutcome:
        return self.outcomes["client"]

    @property
    def server_outcome(self) -> MeasurementOutcome:
        return self.outcomes["server"]

    @property
    def state_names(self) -> list[str]:
        """The state trajectory, for assertions and demos."""
        return [state.value for _, state in self.state_history]

    @property
    def delay_to_measurement(self) -> float:
        """Request-to-window-start latency (§V-B delay-to-measurement)."""
        return self.window_start - self.requested_at


class Initiator:
    """The requesting side: generates Debuglets, buys slots, awaits results.

    With a ``simulator`` attached (as :class:`MarketplaceTestbed` does),
    the initiator becomes failure-aware: transient ledger outages during
    purchase, result fetch, and refund are retried on the simulator clock
    with seeded exponential backoff + jitter; sessions given a
    ``deadline_margin`` time out, reclaim their escrow, and optionally
    fail over to a fresh slot.
    """

    def __init__(
        self,
        ledger: Ledger,
        wallet: Wallet,
        *,
        market: str = "debuglet_market",
        simulator=None,
        seed: int = 0,
    ) -> None:
        self.ledger = ledger
        self.wallet = wallet
        self.market = market
        self.simulator = simulator
        self._retry_rng = derive_rng(seed, "initiator-retry")
        self.sessions: list[MeasurementSession] = []

    @property
    def _obs(self):
        """The testbed's observability bundle, if one is wired up."""
        if self.simulator is not None and self.simulator.obs is not None:
            return self.simulator.obs
        return getattr(self.ledger, "obs", None)

    def request_measurement(
        self,
        client_app: DebugletApplication,
        server_app: DebugletApplication,
        client_vantage: tuple[int, int],
        server_vantage: tuple[int, int],
        *,
        duration: float,
        cores: int = 1,
        memory_mb: int = 128,
        bandwidth_mbps: int = 10,
        earliest: float | None = None,
        on_complete: Callable[[MeasurementSession], None] | None = None,
        code_store: OffChainCodeStore | None = None,
        deadline_margin: float | None = None,
        max_attempts: int = 1,
        failover_vantages: (
            list[tuple[tuple[int, int], tuple[int, int]]] | None
        ) = None,
        tx_retries: int = 4,
        retry_base: float = 0.2,
        retry_jitter: float = 0.1,
    ) -> MeasurementSession:
        """Steps 2–3: LookupSlot then PurchaseSlot with escrowed tokens.

        ``earliest`` defaults to now plus two finality latencies and a
        small margin — the soonest the executors can have learned of the
        purchase (both critical-path transactions must finalize).

        With ``code_store`` set, the applications ship off-chain and only
        their hashes are purchased on-chain (§V-B's ~1-cent optimization);
        the executor agents must share the same store.

        ``deadline_margin`` arms a per-session deadline at
        ``window_end + margin``: when it fires with results still missing
        the session transitions to ``timed-out`` and the initiator either
        fails over to a fresh slot (while ``max_attempts`` allows; later
        attempts use ``failover_vantages`` when given, else the original
        vantage pair) or refunds the unserved escrow. Transient ledger
        failures are retried up to ``tx_retries`` times with exponential
        backoff (``retry_base * 2**k``) plus seeded jitter. Without a
        ``deadline_margin`` the legacy behaviour is preserved: the session
        waits indefinitely and :meth:`run_until_done` is the backstop.
        """
        plan = _RequestPlan(
            client_app=client_app,
            server_app=server_app,
            vantages=[(client_vantage, server_vantage)]
            + list(failover_vantages or []),
            duration=duration,
            cores=cores,
            memory_mb=memory_mb,
            bandwidth_mbps=bandwidth_mbps,
            earliest=earliest,
            code_store=code_store,
            deadline_margin=deadline_margin,
            tx_retries=tx_retries,
            retry_base=retry_base,
            retry_jitter=retry_jitter,
        )
        session = MeasurementSession(
            requested_at=self.ledger.now,
            on_complete=on_complete,
            max_attempts=max(max_attempts, 1),
            plan=plan,
        )
        self.sessions.append(session)
        session._corr = f"session:{len(self.sessions)}"
        obs = self._obs
        if obs is not None:
            session._span = obs.tracer.begin(
                "marketplace.session",
                component="marketplace",
                corr=session._corr,
                client_app=client_app.name,
                server_app=server_app.name,
                client_vantage=f"{client_vantage[0]}:{client_vantage[1]}",
                server_vantage=f"{server_vantage[0]}:{server_vantage[1]}",
            )
        self._record(session, SessionState.PENDING)
        self._attempt_purchase(session, plan.tx_retries, first=True)
        return session

    # ----------------------------------------------------- state machine

    def _record(
        self, session: MeasurementSession, state: SessionState, reason: str = ""
    ) -> None:
        previous = session.state
        session.state = state
        session.state_history.append((self.ledger.now, state))
        if reason:
            session.failure_reason = reason
        obs = self._obs
        if obs is not None:
            obs.metrics.counter(
                "marketplace_session_transitions_total", state=state.value
            ).inc()
            obs.tracer.event(
                "marketplace.session_state",
                component="marketplace",
                corr=session._corr,
                from_state=previous.value,
                to_state=state.value,
                attempt=session.attempt,
                reason=reason,
            )
            if state in TERMINAL_STATES and session._span is not None:
                obs.tracer.finish(
                    session._span,
                    state=state.value,
                    attempts=session.attempt,
                    total_price=session.total_price,
                    refunds=len(session.refunds),
                    purchase_retries=session.purchase_retries,
                )
                session._span = None

    def _backoff(self, plan: _RequestPlan, attempt: int) -> float:
        return plan.retry_base * (2**attempt) + float(
            self._retry_rng.uniform(0.0, plan.retry_jitter)
        )

    # --------------------------------------------------------- purchasing

    def _attempt_purchase(
        self, session: MeasurementSession, retries_left: int, first: bool = False
    ) -> None:
        if session.done:
            return
        plan = session.plan
        (asn_c, intf_c), (asn_s, intf_s) = plan.vantage_for(session.attempt)
        now = self.ledger.now
        if plan.earliest is not None and plan.earliest > now:
            earliest = plan.earliest
        else:
            earliest = now + 2 * self.ledger.finality_latency + 0.1
        try:
            lookup = self.wallet.must_call(
                self.market,
                "lookup_slot",
                asn_c,
                intf_c,
                asn_s,
                intf_s,
                plan.cores,
                plan.memory_mb,
                plan.bandwidth_mbps,
                plan.duration,
                earliest,
            ).return_value
            if plan.code_store is None:
                client_payload = plan.client_app.to_wire()
                server_payload = plan.server_app.to_wire()
                purchase_function = "purchase_slot"
            else:
                client_payload = plan.code_store.put(plan.client_app.to_wire())
                server_payload = plan.code_store.put(plan.server_app.to_wire())
                purchase_function = "purchase_slot_hashed"
            purchase = self.wallet.must_call(
                self.market,
                purchase_function,
                asn_c,
                intf_c,
                asn_s,
                intf_s,
                lookup["client_slot_start"],
                lookup["server_slot_start"],
                lookup["start"],
                lookup["end"],
                client_payload,
                plan.client_app.manifest.as_dict(),
                server_payload,
                plan.server_app.manifest.as_dict(),
                value=lookup["total_price"],
            )
        except LedgerUnavailable as exc:
            if self.simulator is not None and retries_left > 0:
                session.purchase_retries += 1
                obs = self._obs
                if obs is not None:
                    obs.metrics.counter(
                        "marketplace_retries_total", kind="purchase"
                    ).inc()
                delay = self._backoff(plan, plan.tx_retries - retries_left)
                self.simulator.schedule(
                    delay, self._attempt_purchase, session, retries_left - 1
                )
                return
            if first:
                raise
            self._record(
                session,
                SessionState.FAILED,
                f"purchase failed after retries: {exc}",
            )
            # Terminal: notify like every other terminal transition, so
            # fleet-level schedulers see the completion.
            if session.on_complete is not None:
                session.on_complete(session)
            return
        except ChainError as exc:
            if first:
                raise
            self._record(
                session, SessionState.FAILED, f"failover purchase failed: {exc}"
            )
            if session.on_complete is not None:
                session.on_complete(session)
            return
        self._activate(session, lookup, purchase)

    def _activate(self, session: MeasurementSession, lookup, purchase) -> None:
        apps = purchase.return_value
        for subscription in session._subscriptions:
            self.ledger.events.unsubscribe(subscription)
        session._subscriptions = []
        if session.client_application:
            session.superseded_applications.extend(
                [session.client_application, session.server_application]
            )
        session.client_application = apps["client_application"]
        session.server_application = apps["server_application"]
        session.window_start = lookup["start"]
        session.window_end = lookup["end"]
        session.total_price = apps["total_price"]
        session.purchase_digest = purchase.digest
        session.outcomes = {
            "client": MeasurementOutcome(apps["client_application"]),
            "server": MeasurementOutcome(apps["server_application"]),
        }
        obs = self._obs
        if obs is not None:
            obs.metrics.counter("marketplace_purchases_total").inc()
            obs.metrics.counter("marketplace_escrow_locked_total").inc(
                session.total_price
            )
            obs.tracer.event(
                "marketplace.purchased",
                component="marketplace",
                corr=session._corr,
                attempt=session.attempt,
                total_price=session.total_price,
                window_start=session.window_start,
                window_end=session.window_end,
            )
        self._record(session, SessionState.PURCHASED)
        for role, app_id in (
            ("client", apps["client_application"]),
            ("server", apps["server_application"]),
        ):
            subscription = self.ledger.events.subscribe(
                "ResultReady",
                lambda event, role=role, session=session, app_id=app_id: (
                    self._on_result(session, role, app_id, event)
                ),
                application_id=app_id,
            )
            session._subscriptions.append(subscription)
        if self.simulator is not None:
            attempt = session.attempt
            self.simulator.schedule_at(
                max(self.simulator.now, session.window_start),
                self._mark_running,
                session,
                attempt,
            )
            if session.plan.deadline_margin is not None:
                session.deadline = session.window_end + session.plan.deadline_margin
                session._deadline_handle = self.simulator.schedule_at(
                    session.deadline, self._on_deadline, session, attempt
                )

    def _mark_running(self, session: MeasurementSession, attempt: int) -> None:
        if session.state is SessionState.PURCHASED and session.attempt == attempt:
            self._record(session, SessionState.RUNNING)

    # ------------------------------------------------------------ results

    def _on_result(
        self, session: MeasurementSession, role: str, application_id: str, event: Event
    ) -> None:
        if session.done or session.state is SessionState.TIMED_OUT:
            return
        outcome = session.outcomes.get(role)
        if outcome is None or outcome.application_id != application_id:
            return  # superseded by failover
        if outcome.status:
            return  # already recorded
        retries = session.plan.tx_retries if session.plan is not None else 0
        self._fetch_result(session, role, application_id, retries)

    def _fetch_result(
        self,
        session: MeasurementSession,
        role: str,
        application_id: str,
        retries_left: int,
    ) -> None:
        if session.done or session.state is SessionState.TIMED_OUT:
            return
        outcome = session.outcomes.get(role)
        if outcome is None or outcome.application_id != application_id:
            return
        if outcome.status:
            return
        try:
            lookup = self.wallet.must_call(
                self.market, "lookup_result", application_id
            ).return_value
        except LedgerUnavailable as exc:
            if self.simulator is not None and retries_left > 0:
                plan = session.plan
                obs = self._obs
                if obs is not None:
                    obs.metrics.counter(
                        "marketplace_retries_total", kind="fetch"
                    ).inc()
                delay = self._backoff(plan, plan.tx_retries - retries_left)
                self.simulator.schedule(
                    delay, self._fetch_result, session, role, application_id,
                    retries_left - 1,
                )
                return
            outcome.failure = f"result fetch failed: {exc}"
            return
        result, status, certificate = decode_result_payload(lookup["result"])
        outcome.result = result
        outcome.status = status
        outcome.certificate = certificate
        outcome.failure = ""
        if all(o.status for o in session.outcomes.values()):
            session.completed_at = self.ledger.now
            self._record(session, SessionState.CERTIFIED)
            if session._deadline_handle is not None:
                session._deadline_handle.cancel()
                session._deadline_handle = None
            if session.on_complete is not None:
                session.on_complete(session)

    # ----------------------------------------------- deadlines & refunds

    def _on_deadline(self, session: MeasurementSession, attempt: int) -> None:
        if session.done or session.attempt != attempt:
            return
        missing = [role for role, o in session.outcomes.items() if not o.status]
        for role in missing:
            session.outcomes[role].failure = (
                "no certified result before the session deadline"
            )
        self._record(
            session,
            SessionState.TIMED_OUT,
            f"deadline t={session.deadline:.3f} missed; "
            f"waiting on: {', '.join(missing) or 'nothing'}",
        )
        plan = session.plan
        if session.attempt < session.max_attempts:
            # Fail over: reclaim what this attempt escrowed, then buy a
            # fresh slot (possibly at an alternate vantage pair).
            for role in missing:
                self._refund(
                    session,
                    session.outcomes[role].application_id,
                    plan.tx_retries,
                    settle=False,
                )
            session.attempt += 1
            self._record(session, SessionState.PENDING)
            self._attempt_purchase(session, plan.tx_retries)
        else:
            pending = [session.outcomes[role].application_id for role in missing]
            session._refunds_outstanding = len(pending)
            session._settle_paid = 0
            if not pending:  # pragma: no cover - defensive
                self._finalize_timeout(session)
                return
            for app_id in pending:
                self._refund(session, app_id, plan.tx_retries, settle=True)

    def _refund(
        self,
        session: MeasurementSession,
        application_id: str,
        retries_left: int,
        *,
        settle: bool,
    ) -> None:
        if session.state is SessionState.CERTIFIED:
            return  # a result landed between scheduling and firing
        try:
            receipt = self.wallet.must_call(
                self.market, "refund_expired", application_id
            )
        except LedgerUnavailable as exc:
            if self.simulator is not None and retries_left > 0:
                plan = session.plan
                obs = self._obs
                if obs is not None:
                    obs.metrics.counter(
                        "marketplace_retries_total", kind="refund"
                    ).inc()
                delay = self._backoff(plan, plan.tx_retries - retries_left)
                self.simulator.schedule(
                    delay, self._refund, session, application_id,
                    retries_left - 1, settle=settle,
                )
                return
            session._refund_failures.append((application_id, str(exc)))
        except ChainError as exc:
            # Permanent: e.g. the executor published after the deadline
            # after all (escrow already paid out) — conservation holds.
            session._refund_failures.append((application_id, str(exc)))
        else:
            session.refunds[application_id] = receipt.return_value
            obs = self._obs
            if obs is not None:
                obs.metrics.counter("marketplace_refunds_total").inc()
                obs.metrics.counter("marketplace_escrow_refunded_total").inc(
                    receipt.return_value
                )
                obs.tracer.event(
                    "marketplace.refund",
                    component="marketplace",
                    corr=session._corr,
                    application_id=application_id,
                    amount=receipt.return_value,
                )
            if settle:
                session._settle_paid += 1
        if settle:
            session._refunds_outstanding -= 1
            if session._refunds_outstanding <= 0:
                self._finalize_timeout(session)

    def _finalize_timeout(self, session: MeasurementSession) -> None:
        if session.done:
            return
        failures = list(session._refund_failures)
        if session._settle_paid > 0:
            reason = (
                f"timed out after {session.attempt} attempt(s); "
                f"escrow refunded for {session._settle_paid} application(s)"
            )
            if failures:
                reason += f"; {len(failures)} refund(s) failed"
            self._record(session, SessionState.REFUNDED, reason)
        else:
            detail = "; ".join(msg for _, msg in failures) or "no refunds possible"
            self._record(
                session,
                SessionState.FAILED,
                f"timed out after {session.attempt} attempt(s) and could not "
                f"reclaim escrow: {detail}",
            )
        if session.on_complete is not None:
            session.on_complete(session)

    # -------------------------------------------------------- run helper

    @staticmethod
    def run_until_done(
        session: MeasurementSession,
        simulator,
        *,
        timeout: float | None = 600.0,
    ) -> MeasurementSession:
        """Pump the simulator until the session reaches a terminal state.

        Raises :class:`SessionStalled` — with the session attached — if
        the simulator goes idle first, or once ``timeout`` simulated
        seconds elapse (pass ``timeout=None`` to wait without bound).
        """
        limit = None if timeout is None else simulator.now + timeout
        recent = getattr(simulator, "recent_event_lines", None)
        while not session.done:
            if limit is not None and simulator.now >= limit:
                raise SessionStalled(
                    session,
                    f"session did not reach a terminal state within "
                    f"{timeout} simulated seconds",
                    events=recent() if recent is not None else None,
                )
            if not simulator.step():
                raise SessionStalled(
                    session,
                    "simulation idle before session completion",
                    events=recent() if recent is not None else None,
                )
        return session
