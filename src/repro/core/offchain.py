"""Off-chain code storage with on-chain hashes (§V-B optimization).

Table II shows on-chain application storage costs growing linearly with
bytecode size. The paper: "the cost can be significantly lowered by
storing applications or results off-chain and only storing a link to the
stored data and a hash of data on the chain, so that the data can be
verified against the on-chain hash... the Sui transaction fees amount to
about 1 cent."

:class:`OffChainCodeStore` is that side channel: a content-addressed blob
store (think a CDN or the initiator's own server). The marketplace's
``purchase_slot_hashed`` entry stores only the 32-byte hashes; executor
agents fetch the bytecode out of band and verify it against the on-chain
hash before admitting it.
"""

from __future__ import annotations

import hashlib

from repro.common.errors import DebugletError


class OffChainCodeStore:
    """A content-addressed store for application wire blobs."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def put(self, blob: bytes) -> bytes:
        """Store ``blob``; returns its sha256 digest (the on-chain link)."""
        digest = hashlib.sha256(blob).digest()
        self._blobs[digest.hex()] = blob
        return digest

    def get(self, digest: bytes) -> bytes:
        """Fetch a blob by digest; raises if unknown."""
        blob = self._blobs.get(digest.hex())
        if blob is None:
            raise DebugletError(f"no off-chain blob for {digest.hex()}")
        return blob

    def get_verified(self, digest: bytes) -> bytes:
        """Fetch and re-verify the content hash (defends against a
        tampering store operator)."""
        blob = self.get(digest)
        if hashlib.sha256(blob).digest() != digest:
            raise DebugletError("off-chain blob does not match its hash")
        return blob

    def __len__(self) -> int:
        return len(self._blobs)
