"""Path-aware placement scheduling for localization campaigns (§VI).

Given a campaign's path (a chain of ASes), pick which vantage executors
to engage so that segment coverage — measured by the same
indistinguishability partition as :mod:`repro.core.deployment` — is
maximized at minimum cost. The paper's §VI names two deployment
alternatives, which become two placement *qualities* here:

- **border-router co-location** ("border"): the executor sits at the AS's
  border router facing the measured segment, so a measurement anchored
  there brackets exactly the links and transit interiors between the two
  vantages (the :func:`~repro.core.deployment._covered` model).

- **in-AS host** ("in_as"): the executor is an ordinary host inside the
  AS. Cheaper to deploy (no router real estate), but traffic to/from it
  traverses only *part* of its own AS interior, so every measurement it
  anchors carries unreliable information about that interior: a clean
  measurement cannot exonerate it (the fault may sit in the untraversed
  part) and a faulty one cannot separate it from the measured segment.
  The host's own interior therefore stays *confusable* with any element
  that only the host's measurements would have told apart — in practice
  the two adjacent inter-domain links — and the suspect sets around an
  in-AS vantage are coarser than around a border one.

Strategies are pluggable and deterministic:

- ``border`` — greedy marginal-coverage-per-cost over border candidates;
- ``in_as`` — the same greedy over in-AS candidates;
- ``random`` — seeded random selection within budget (the baseline the
  acceptance bench compares against).

"Millions of Little Minions" motivates the objective: vantage diversity
along the path, not vantage count, is what buys localization power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng
from repro.core.deployment import Element, path_elements

#: Placement qualities, ordered best-first.
BORDER = "border"
IN_AS = "in_as"
STRATEGIES = ("border", "in_as", "random")


@dataclass(frozen=True)
class VantageCandidate:
    """One executor (real or prospective) that could anchor measurements.

    ``position`` is the AS's 0-based index along the campaign path;
    ``kind`` is the placement quality (:data:`BORDER` or :data:`IN_AS`);
    ``price`` is the per-campaign cost of engaging it (slot price for an
    advertised executor, deployment cost for a prospective one).
    """

    asn: int
    interface: int
    kind: str
    price: int
    position: int

    def __post_init__(self) -> None:
        if self.kind not in (BORDER, IN_AS):
            raise ConfigurationError(f"unknown placement kind {self.kind!r}")
        if self.price < 0:
            raise ConfigurationError("price must be non-negative")


def _covered(element: Element, i: int, j: int) -> bool:
    """Is ``element`` definitely inside a measurement between vantage
    positions i < j? (:func:`repro.core.deployment._covered` semantics:
    links i..j-1 and transit interiors i+1..j-1.)"""
    if element.kind == "link":
        return i <= element.index < j
    return i < element.index < j


@dataclass
class PlacementPlan:
    """The outcome of one strategy run over one candidate pool."""

    strategy: str
    n_ases: int
    budget: int
    chosen: tuple[VantageCandidate, ...]
    cost: int
    exact_isolation_rate: float
    mean_suspect_set: float
    group_sizes: dict[Element, int] = field(default_factory=dict, repr=False)

    @property
    def positions(self) -> list[int]:
        return sorted({c.position for c in self.chosen})

    def as_row(self) -> dict:
        """A flat record for benches (BENCH_fleet.json) and EXPERIMENTS."""
        return {
            "strategy": self.strategy,
            "n_ases": self.n_ases,
            "budget": self.budget,
            "chosen": len(self.chosen),
            "cost": self.cost,
            "exact_isolation_rate": round(self.exact_isolation_rate, 4),
            "mean_suspect_set": round(self.mean_suspect_set, 4),
            "positions": self.positions,
        }


def score_placement(
    n_ases: int, vantages: dict[int, str]
) -> tuple[float, float, dict[Element, int]]:
    """Score one vantage selection by worst-case suspect sets.

    ``vantages`` maps path position → quality for every selected vantage.
    The two path endpoints are always measurable at border quality (the
    initiator's own networks, as in ``analyze_deployment``); a selected
    vantage at an endpoint position can only keep that quality.

    Signatures use the strict border semantics for every pair — what a
    measurement *definitely* brackets. The in-AS quality discount is a
    confusability pass on top: a pair anchored at an in-AS vantage ``p``
    carries unreliable information about interior ``p`` (the host's
    traffic traverses only part of it), so interior ``p`` remains in the
    suspect set of any element whose signature matches once the pairs
    anchored at ``p`` are discounted — and vice versa. With only border
    vantages the result is exactly ``analyze_deployment``'s partition.

    Returns ``(exact_isolation_rate, mean_suspect_set, suspect_sizes)``.
    """
    if n_ases < 2:
        raise ConfigurationError("need at least two ASes")
    quality = dict(vantages)
    quality[0] = BORDER
    quality[n_ases - 1] = BORDER
    measurable = sorted(p for p in quality if 0 <= p < n_ases)
    elements = path_elements(n_ases)
    pairs = list(combinations(measurable, 2))
    signatures = {
        element: frozenset(
            (i, j) for i, j in pairs if _covered(element, i, j)
        )
        for element in elements
    }
    in_as = [
        p
        for p, kind in quality.items()
        if kind == IN_AS and 0 < p < n_ases - 1
    ]
    anchored = {
        p: frozenset(pair for pair in pairs if p in pair) for p in in_as
    }
    suspect_sizes: dict[Element, int] = {}
    for element in elements:
        signature = signatures[element]
        suspects = {
            other for other in elements if signatures[other] == signature
        }
        for p in in_as:
            interior = Element("interior", p)
            if element == interior:
                # Any element only p's own measurements would have told
                # apart from interior p stays suspect.
                suspects |= {
                    other
                    for other in elements
                    if signatures[other] - anchored[p] == signature
                }
            elif signature - anchored[p] == signatures[interior]:
                suspects.add(interior)
        suspect_sizes[element] = len(suspects)
    sizes = list(suspect_sizes.values())
    if not sizes:
        return float("nan"), float("nan"), suspect_sizes
    exact = sum(1 for size in sizes if size == 1) / len(sizes)
    mean = sum(sizes) / len(sizes)
    return exact, mean, suspect_sizes


def _plan(
    strategy: str,
    n_ases: int,
    chosen: list[VantageCandidate],
    budget: int,
) -> PlacementPlan:
    exact, mean, groups = score_placement(
        n_ases, {c.position: c.kind for c in chosen}
    )
    return PlacementPlan(
        strategy=strategy,
        n_ases=n_ases,
        budget=budget,
        chosen=tuple(chosen),
        cost=sum(c.price for c in chosen),
        exact_isolation_rate=exact,
        mean_suspect_set=mean,
        group_sizes=groups,
    )


def _greedy(
    strategy: str,
    n_ases: int,
    pool: list[VantageCandidate],
    budget: int,
) -> PlacementPlan:
    """Greedy set-cover flavor: repeatedly take the candidate with the
    best marginal coverage gain per token, within budget.

    Coverage gain is mean-suspect-set shrinkage first, exact-isolation
    improvement second. Mean shrinkage is the better greedy signal: it
    always favors splitting the largest indistinguishable group, which
    spreads picks along the path, whereas exact-rate gain is myopic —
    endpoint-adjacent picks isolate two elements immediately but cluster
    the plan. Remaining ties break by price then (asn, interface), so
    the plan is fully deterministic. One candidate per position — a
    second vantage in the same AS adds no new measurement-pair
    endpoints.
    """
    chosen: list[VantageCandidate] = []
    taken_positions: set[int] = set()
    spent = 0
    current_exact, current_mean, _ = score_placement(n_ases, {})
    remaining = sorted(pool, key=lambda c: (c.price, c.asn, c.interface))
    while True:
        best = None
        best_key = None
        best_scores = (current_exact, current_mean)
        for candidate in remaining:
            if candidate.position in taken_positions:
                continue
            if spent + candidate.price > budget:
                continue
            exact, mean, _ = score_placement(
                n_ases,
                {c.position: c.kind for c in chosen}
                | {candidate.position: candidate.kind},
            )
            exact_gain = exact - current_exact
            mean_gain = current_mean - mean
            if exact_gain <= 0 and mean_gain <= 0:
                continue
            price = max(candidate.price, 1)
            key = (
                -mean_gain / price,
                -exact_gain / price,
                candidate.price,
                candidate.asn,
                candidate.interface,
            )
            if best_key is None or key < best_key:
                best, best_key, best_scores = candidate, key, (exact, mean)
        if best is None:
            break
        chosen.append(best)
        taken_positions.add(best.position)
        spent += best.price
        current_exact, current_mean = best_scores
    return _plan(strategy, n_ases, chosen, budget)


def _random(
    n_ases: int,
    pool: list[VantageCandidate],
    budget: int,
    seed: int,
) -> PlacementPlan:
    """Seeded random baseline: shuffle, take affordable candidates."""
    rng = derive_rng(seed, "placement", "random")
    order = sorted(pool, key=lambda c: (c.asn, c.interface, c.kind))
    perm = rng.permutation(len(order))
    chosen: list[VantageCandidate] = []
    taken_positions: set[int] = set()
    spent = 0
    for idx in perm.tolist():
        candidate = order[idx]
        if candidate.position in taken_positions:
            continue
        if spent + candidate.price > budget:
            continue
        chosen.append(candidate)
        taken_positions.add(candidate.position)
        spent += candidate.price
    return _plan("random", n_ases, chosen, budget)


def plan_placement(
    n_ases: int,
    candidates: list[VantageCandidate],
    *,
    strategy: str,
    budget: int,
    seed: int = 0,
) -> PlacementPlan:
    """Run one strategy over the candidate pool. Deterministic per seed."""
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    for candidate in candidates:
        if not 0 <= candidate.position < n_ases:
            raise ConfigurationError(
                f"candidate {candidate.asn}:{candidate.interface} position "
                f"{candidate.position} outside path of {n_ases} ASes"
            )
    if strategy == "random":
        return _random(n_ases, list(candidates), budget, seed)
    wanted = BORDER if strategy == "border" else IN_AS
    pool = [c for c in candidates if c.kind == wanted]
    return _greedy(strategy, n_ases, pool, budget)


def evaluate_strategies(
    n_ases: int,
    candidates: list[VantageCandidate],
    *,
    budget: int,
    seed: int = 0,
) -> dict[str, PlacementPlan]:
    """All three strategies over the same pool and budget — the
    coverage-vs-cost comparison the bench and EXPERIMENTS.md record."""
    return {
        strategy: plan_placement(
            n_ases, candidates, strategy=strategy, budget=budget, seed=seed
        )
        for strategy in STRATEGIES
    }


def synthetic_candidates(
    n_ases: int,
    *,
    border_price: int = 100,
    in_as_price: int = 60,
    interface: int = 1,
    base_asn: int = 64512,
) -> list[VantageCandidate]:
    """A full prospective pool: one border and one in-AS candidate per
    transit AS. In-AS hosting is priced cheaper (no router real estate),
    reflecting the §VI trade-off the strategies navigate."""
    pool: list[VantageCandidate] = []
    for position in range(1, n_ases - 1):
        asn = base_asn + position
        pool.append(
            VantageCandidate(
                asn=asn,
                interface=interface,
                kind=BORDER,
                price=border_price,
                position=position,
            )
        )
        pool.append(
            VantageCandidate(
                asn=asn,
                interface=interface,
                kind=IN_AS,
                price=in_as_price,
                position=position,
            )
        )
    return pool


def candidates_from_directory(directory, segment) -> list[VantageCandidate]:
    """Border candidates from live executor advertisements on a path.

    Every advertised executor at one of the segment's interfaces becomes
    a border-quality candidate priced at its advertised slot price —
    placement over the *actual* fleet rather than a prospective pool.
    """
    positions = {asn: idx for idx, asn in enumerate(segment.asns())}
    pool: list[VantageCandidate] = []
    for advertisement in directory.executors_on_path(segment):
        position = positions.get(advertisement.asn)
        if position is None:
            continue
        pool.append(
            VantageCandidate(
                asn=advertisement.asn,
                interface=advertisement.interface,
                kind=BORDER,
                price=advertisement.price,
                position=position,
            )
        )
    return sorted(pool, key=lambda c: (c.position, c.price, c.asn, c.interface))


__all__ = [
    "BORDER",
    "IN_AS",
    "STRATEGIES",
    "PlacementPlan",
    "VantageCandidate",
    "candidates_from_directory",
    "evaluate_strategies",
    "plan_placement",
    "score_placement",
    "synthetic_candidates",
]
