"""Private measurement results (§IV-C).

"An initiator may want to keep the results private by encrypting the
results in the client and server applications using a cryptographic key
embedded in the applications. In that case, the results are not readable
by third parties."

:class:`ResultSealer` implements the scheme: a symmetric keystream derived
from the embedded key (SHA-256 in counter mode) XOR-masks the result
bytes *inside the application*, before they ever reach the executor's
output buffer. The executor certifies the ciphertext — verifiability is
preserved — while only key holders can decode the measurement.
:func:`sealed_native_echo_client` is a stock client with sealing applied.
"""

from __future__ import annotations

import hashlib

from repro.common.errors import DebugletError
from repro.netsim.packet import Protocol
from repro.sandbox.program import NativeBody, NativeProgram


class ResultSealer:
    """Symmetric result sealing with a key embedded in the application."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise DebugletError("sealing key must be at least 16 bytes")
        self.key = key

    def _keystream(self, length: int) -> bytes:
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < length:
            blocks.append(
                hashlib.sha256(
                    self.key + counter.to_bytes(8, "little")
                ).digest()
            )
            counter += 1
        return b"".join(blocks)[:length]

    def seal(self, plaintext: bytes) -> bytes:
        stream = self._keystream(len(plaintext))
        return bytes(a ^ b for a, b in zip(plaintext, stream))

    def unseal(self, ciphertext: bytes) -> bytes:
        return self.seal(ciphertext)  # XOR is its own inverse

    def seal_i64(self, index: int, value: int) -> int:
        """Seal one i64 result word at stream position ``index``."""
        mask = int.from_bytes(
            self._keystream((index + 1) * 8)[index * 8 : (index + 1) * 8],
            "little",
        )
        return (value ^ mask) & ((1 << 64) - 1)

    def unseal_pairs(self, result: bytes) -> list[tuple[int, int]]:
        """Decode a sealed (key, value) i64-pair result."""
        from repro.sandbox.programs import decode_result_pairs

        return decode_result_pairs(self.unseal(result))


def sealed_native_echo_client(
    protocol: Protocol,
    sealer: ResultSealer,
    *,
    count: int,
    interval_us: int = 1_000_000,
    size: int = 64,
    dst_port: int = 7,
    timeout_us: int = 2_000_000,
    drain_us: int = 2_000_000,
) -> NativeProgram:
    """An echo client whose (seq, rtt) results leave the sandbox sealed."""
    proto = protocol.wire_number
    payload = bytes(size)

    def body() -> NativeBody:
        send_times: dict[int, int] = {}
        emitted = 0

        def sealed_emit(value: int):
            nonlocal emitted
            word = sealer.seal_i64(emitted, value)
            emitted += 1
            return ("result_i64", (word,), None)

        start, _ = yield ("now_us", (), None)
        for i in range(count):
            now, _ = yield ("now_us", (), None)
            send_times[i] = now
            yield ("net_send", (proto, 0, dst_port, i, size), payload)
            code, data = yield ("net_recv", (proto, timeout_us), None)
            if code >= 0 and data is not None and data.seq in send_times:
                now, _ = yield ("now_us", (), None)
                yield sealed_emit(data.seq)
                yield sealed_emit(now - send_times[data.seq])
            yield ("sleep_until_us", (start + (i + 1) * interval_us,), None)
        while True:
            code, data = yield ("net_recv", (proto, drain_us), None)
            if code < 0 or data is None:
                break
            if data.seq in send_times:
                now, _ = yield ("now_us", (), None)
                yield sealed_emit(data.seq)
                yield sealed_emit(now - send_times[data.seq])
        return 0

    return NativeProgram(body)
