"""Segment probing: D2D measurements between executor vantage points.

Debuglet's measurement primitive (§IV-B, Fig 6): deploy an echo *client*
Debuglet at one ``<AS, interface>`` executor and an echo *server* at
another, pin the forwarding path between them (and its reverse), and run
real data-plane probes. :class:`ExecutorFleet` manages the deployed
executors; :class:`SegmentProber` packages one such measurement, either
asynchronously (callback) or synchronously (pumping the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError, SimulationError
from repro.core.application import DebugletApplication
from repro.core.executor import ExecutionRecord, Executor, ResultCertificate
from repro.core.results import EchoMeasurement, ServerReport
from repro.netsim.network import Network
from repro.netsim.packet import Protocol
from repro.pathaware.segments import PathSegment
from repro.sandbox.programs import echo_client, echo_server

Vantage = tuple[int, int]  # (ASN, interface)


class ExecutorFleet:
    """The set of executors an operator (or many operators) deployed."""

    def __init__(self, network: Network, *, seed: int = 0, **executor_kwargs) -> None:
        self.network = network
        self.seed = seed
        self.executor_kwargs = executor_kwargs
        self._executors: dict[Vantage, Executor] = {}

    def deploy(self, asn: int, interface: int, **overrides) -> Executor:
        """Deploy one executor co-located with ``<asn, interface>``."""
        vantage = (asn, interface)
        if vantage in self._executors:
            raise ConfigurationError(f"executor already deployed at {vantage}")
        kwargs = dict(self.executor_kwargs)
        kwargs.update(overrides)
        executor = Executor(self.network, asn, interface, seed=self.seed, **kwargs)
        self._executors[vantage] = executor
        return executor

    def deploy_full(self) -> None:
        """Co-locate an executor with every border router (Fig 6 model)."""
        for asn, asys in sorted(self.network.topology.ases.items()):
            for interface in sorted(asys.routers):
                if (asn, interface) not in self._executors:
                    self.deploy(asn, interface)

    def has(self, asn: int, interface: int) -> bool:
        return (asn, interface) in self._executors

    def get(self, asn: int, interface: int) -> Executor:
        executor = self._executors.get((asn, interface))
        if executor is None:
            raise SimulationError(f"no executor deployed at ({asn}, {interface})")
        return executor

    def vantages(self) -> list[Vantage]:
        return sorted(self._executors)

    def __len__(self) -> int:
        return len(self._executors)


@dataclass
class SegmentMeasurement:
    """Outcome of one client/server Debuglet pair run over a segment."""

    client: Vantage
    server: Vantage
    protocol: Protocol
    segment: PathSegment
    probes: int
    echo: EchoMeasurement | None = None
    server_report: ServerReport | None = None
    client_record: ExecutionRecord | None = None
    server_record: ExecutionRecord | None = None
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            self.client_record is not None
            and self.client_record.completed
            and self.echo is not None
        )

    def mean_rtt_ms(self) -> float:
        if self.echo is None:
            return float("nan")
        return self.echo.mean_rtt_ms()

    def loss_rate(self) -> float:
        if self.echo is None:
            return 1.0
        return self.echo.loss_rate()

    def certificates(self) -> list[ResultCertificate]:
        certs = []
        for record in (self.client_record, self.server_record):
            if record is not None and record.certificate is not None:
                certs.append(record.certificate)
        return certs


class SegmentProber:
    """Runs paired echo Debuglets between fleet vantage points."""

    def __init__(
        self,
        fleet: ExecutorFleet,
        *,
        probes: int = 40,
        interval_us: int = 20_000,
        probe_size: int = 64,
        base_port: int = 7700,
    ) -> None:
        self.fleet = fleet
        self.probes = probes
        self.interval_us = interval_us
        self.probe_size = probe_size
        self._port_counter = base_port
        self.measurements_run = 0

    @property
    def network(self) -> Network:
        return self.fleet.network

    def _next_port(self) -> int:
        self._port_counter += 1
        return self._port_counter

    def measure(
        self,
        client: Vantage,
        server: Vantage,
        segment: PathSegment,
        *,
        protocol: Protocol = Protocol.UDP,
        probes: int | None = None,
        start_at: float | None = None,
        on_complete: Callable[[SegmentMeasurement], None] | None = None,
    ) -> SegmentMeasurement:
        """Launch a D2D echo measurement from ``client`` to ``server``.

        ``segment`` must run from the client's AS to the server's AS; its
        reverse is pinned for the echo replies. The returned measurement
        fills in once both executions complete (use ``on_complete`` or
        :meth:`measure_sync`).
        """
        if segment.src_asn != client[0] or segment.dst_asn != server[0]:
            raise ConfigurationError("segment does not join the two vantage points")
        count = self.probes if probes is None else probes
        client_executor = self.fleet.get(*client)
        server_executor = self.fleet.get(*server)
        port = self._next_port()
        sim = self.network.simulator
        start = sim.now if start_at is None else start_at

        idle_us = int(2e6 + count * self.interval_us)
        server_stock = echo_server(
            protocol, max_echoes=count, idle_timeout_us=idle_us, size=self.probe_size
        )
        server_app = DebugletApplication.from_stock(
            f"seg-srv-{self.measurements_run}",
            server_stock,
            listen_port=port,
            path=segment.reversed().as_list(),
        )
        client_stock = echo_client(
            protocol,
            server_executor.data_address,
            count=count,
            interval_us=self.interval_us,
            size=self.probe_size,
            dst_port=port,
        )
        client_app = DebugletApplication.from_stock(
            f"seg-cli-{self.measurements_run}",
            client_stock,
            path=segment.as_list(),
        )
        self.measurements_run += 1

        measurement = SegmentMeasurement(
            client=client,
            server=server,
            protocol=protocol,
            segment=segment,
            probes=count,
            started_at=start,
        )

        def on_server(record: ExecutionRecord) -> None:
            measurement.server_record = record
            if record.completed:
                measurement.server_report = ServerReport.from_result(record.result)
            _maybe_finish()

        def on_client(record: ExecutionRecord) -> None:
            measurement.client_record = record
            if record.completed:
                measurement.echo = EchoMeasurement.from_result(
                    record.result, probes_sent=count
                )
            _maybe_finish()

        def _maybe_finish() -> None:
            if measurement.client_record is None or measurement.server_record is None:
                return
            measurement.finished_at = sim.now
            if on_complete is not None:
                on_complete(measurement)

        # Server starts slightly earlier so its sockets are bound before
        # the first probe arrives.
        server_executor.submit(server_app, start_at=start, on_complete=on_server)
        client_executor.submit(
            client_app, start_at=start + 0.05, on_complete=on_client
        )
        return measurement

    def measure_sync(
        self,
        client: Vantage,
        server: Vantage,
        segment: PathSegment,
        **kwargs,
    ) -> SegmentMeasurement:
        """Run :meth:`measure` and pump the simulator until it finishes."""
        measurement = self.measure(client, server, segment, **kwargs)
        sim = self.network.simulator
        while measurement.finished_at == 0.0:
            if not sim.step():
                raise SimulationError("simulator went idle before completion")
        return measurement
