"""Decoding and summarizing Debuglet execution results.

Stock programs emit (key, value) i64 pairs (see
:mod:`repro.sandbox.programs`). This module turns those raw bytes into
measurement summaries: RTT/loss for echo clients, per-direction delay for
one-way pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import DebugletError
from repro.sandbox.programs import decode_result_pairs


@dataclass
class EchoMeasurement:
    """Summary of an echo-client result: RTTs in microseconds by seq."""

    probes_sent: int
    rtts_us: dict[int, int]

    @classmethod
    def from_result(cls, result: bytes, *, probes_sent: int) -> "EchoMeasurement":
        pairs = decode_result_pairs(result)
        rtts: dict[int, int] = {}
        for seq, rtt_us in pairs:
            if seq < 0 or seq >= probes_sent:
                raise DebugletError(f"result contains out-of-range seq {seq}")
            rtts[seq] = rtt_us
        return cls(probes_sent=probes_sent, rtts_us=rtts)

    @property
    def received(self) -> int:
        return len(self.rtts_us)

    @property
    def lost(self) -> int:
        return self.probes_sent - self.received

    def loss_rate(self) -> float:
        if self.probes_sent == 0:
            return 0.0
        return self.lost / self.probes_sent

    def rtts_ms(self) -> np.ndarray:
        return np.array(sorted(self.rtts_us.values())) / 1e3  # us -> ms

    def mean_rtt_ms(self) -> float:
        if not self.rtts_us:
            return float("nan")
        return float(np.mean(list(self.rtts_us.values()))) / 1e3

    def std_rtt_ms(self) -> float:
        if len(self.rtts_us) < 2:
            return 0.0
        return float(np.std(list(self.rtts_us.values()), ddof=1)) / 1e3

    def summary(self) -> dict:
        return {
            "sent": self.probes_sent,
            "received": self.received,
            "mean_rtt_ms": self.mean_rtt_ms(),
            "std_rtt_ms": self.std_rtt_ms(),
            "loss_rate": self.loss_rate(),
        }

    def offset_corrected(self, sandbox_overhead_us: float) -> "EchoMeasurement":
        """Subtract the known sandbox overhead from every RTT.

        §V-B: the sandbox "does introduce some noise to the measurements,
        but an almost constant delay, which can be offset from the results
        if the execution environment is known, thus enabling extraction of
        the ground truth measurement results." For the default executor
        configuration the D2D overhead is 5 host-switch crossings
        (3 client-side + 2 server-side).
        """
        corrected = {
            seq: max(0, round(rtt - sandbox_overhead_us))
            for seq, rtt in self.rtts_us.items()
        }
        return EchoMeasurement(probes_sent=self.probes_sent, rtts_us=corrected)


@dataclass
class ServerReport:
    """Summary of an echo-server result: how many probes it saw."""

    echoes: int

    @classmethod
    def from_result(cls, result: bytes) -> "ServerReport":
        pairs = decode_result_pairs(result)
        if len(pairs) != 1 or pairs[0][0] != 0:
            raise DebugletError("malformed echo-server result")
        return cls(echoes=pairs[0][1])


@dataclass
class OneWayMeasurement:
    """Per-direction delay/loss from a sender/receiver result pair.

    This is Debuglet's unidirectional measurement (§III): forward-path
    performance isolated from the reverse path.
    """

    sent: int
    delays_us: dict[int, int]  # seq -> one-way delay

    @classmethod
    def combine(cls, sender_result: bytes, receiver_result: bytes) -> "OneWayMeasurement":
        send_times = dict(decode_result_pairs(sender_result))
        arrivals = dict(decode_result_pairs(receiver_result))
        delays: dict[int, int] = {}
        for seq, arrival_us in arrivals.items():
            if seq not in send_times:
                raise DebugletError(f"receiver saw unknown seq {seq}")
            delays[seq] = arrival_us - send_times[seq]
        return cls(sent=len(send_times), delays_us=delays)

    @property
    def received(self) -> int:
        return len(self.delays_us)

    def loss_rate(self) -> float:
        if self.sent == 0:
            return 0.0
        return (self.sent - self.received) / self.sent

    def mean_delay_ms(self) -> float:
        if not self.delays_us:
            return float("nan")
        return float(np.mean(list(self.delays_us.values()))) / 1e3

    def std_delay_ms(self) -> float:
        if len(self.delays_us) < 2:
            return 0.0
        return float(np.std(list(self.delays_us.values()), ddof=1)) / 1e3

    def summary(self) -> dict:
        return {
            "sent": self.sent,
            "received": self.received,
            "mean_delay_ms": self.mean_delay_ms(),
            "std_delay_ms": self.std_delay_ms(),
            "loss_rate": self.loss_rate(),
        }
