"""Third-party verification of published measurement results.

The paper's verifiability story (§III, §IV-C): results live on a
blockchain whose history nobody can silently rewrite, and each result is
certified by the executor that produced it. A verifier holding the ledger
can therefore check, for any application ID:

1. the result object exists and was created by a recorded, signed
   ``result_ready`` transaction included in the checkpoint chain;
2. the transaction's sender is the executor registered on-chain for the
   application's ``<AS, interface>``;
3. the certificate inside the result payload is validly signed, its
   result hash matches the published bytes, and its code hash matches the
   bytecode the initiator purchased — so the executor ran *that* code and
   produced *these* bytes at *that* vantage point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.crypto import sha256, verify_signature
from repro.chain.ledger import Ledger
from repro.chain.merkle import MerkleTree, verify_inclusion
from repro.common.errors import VerificationError
from repro.common.ids import ObjectId
from repro.contracts.debuglet_market import (
    APPLICATION_KIND,
    RESULT_KIND,
    DebugletMarket,
    slot_key,
)
from repro.core.application import DebugletApplication
from repro.core.executor import ResultCertificate
from repro.core.marketplace import decode_result_payload


def verify_certificate(
    certificate: ResultCertificate,
    *,
    result: bytes,
    expected_code_hash: bytes | None = None,
    expected_vantage: tuple[int, int] | None = None,
    expected_window: tuple[float, float] | None = None,
    window_slack: float = 0.0,
) -> None:
    """Check one certificate against the result bytes it claims to cover.

    ``expected_window`` additionally requires the certified execution
    interval to sit inside ``[start - slack, end + slack]`` — the defense
    against stale-certificate reuse (DESIGN.md §13): an old certificate
    re-published for a new purchase carries timestamps from the earlier
    window and fails containment.
    """
    if sha256(result) != certificate.result_hash:
        raise VerificationError("result bytes do not match certificate hash")
    if expected_code_hash is not None and certificate.code_hash != expected_code_hash:
        raise VerificationError("certificate covers different code")
    if expected_vantage is not None and (
        certificate.asn,
        certificate.interface,
    ) != expected_vantage:
        raise VerificationError("certificate names a different vantage point")
    if expected_window is not None:
        start, end = expected_window
        if (
            certificate.started_at < start - window_slack
            or certificate.finished_at > end + window_slack
        ):
            raise VerificationError(
                f"certificate covers [{certificate.started_at:.3f}, "
                f"{certificate.finished_at:.3f}], outside the purchased "
                f"window [{start:.3f}, {end:.3f}] (slack {window_slack})"
            )
    if not verify_signature(
        certificate.executor_public_key,
        certificate.signing_payload(),
        certificate.signature,
    ):
        raise VerificationError("certificate signature is invalid")


@dataclass
class VerifiedResult:
    """Everything a verifier established about one published result."""

    application_id: str
    result: bytes
    status: str
    certificate: ResultCertificate
    executor_address: str
    vantage: tuple[int, int]
    checkpoint_index: int


class ChainVerifier:
    """Verifies published results against the full ledger history.

    ``code_store`` is needed only for applications purchased with the
    §V-B hash-only optimization: the verifier fetches the code off-chain
    and checks it against the on-chain hash before comparing code hashes.
    """

    def __init__(
        self,
        ledger: Ledger,
        market: DebugletMarket,
        *,
        code_store=None,
        enforce_window: float | None = None,
    ) -> None:
        self.ledger = ledger
        self.market = market
        self.code_store = code_store
        # Opt-in window containment: when set, certificates must cover an
        # interval inside the application's purchased window plus this
        # many seconds of slack (anti stale-certificate, §13). None keeps
        # the legacy checks only.
        self.enforce_window = enforce_window

    def verify_result(self, application_id_hex: str) -> VerifiedResult:
        """Run all checks for one application's published result."""
        app_obj = self.ledger.objects.get(ObjectId.from_hex(application_id_hex))
        if app_obj.kind != APPLICATION_KIND:
            raise VerificationError("application object has wrong kind")
        result_hex = self.market.state["results_map"].get(application_id_hex)
        if result_hex is None:
            raise VerificationError("no published result for this application")
        result_obj = self.ledger.objects.get(ObjectId.from_hex(result_hex))
        if result_obj.kind != RESULT_KIND:
            raise VerificationError("result object has wrong kind")

        # (1) The creating transaction is signed and on the checkpoint chain.
        result_id = ObjectId.from_hex(result_hex)
        receipt = None
        tx = None
        for candidate_tx, candidate_receipt in zip(
            self.ledger.transactions, self.ledger.receipts
        ):
            if result_id in candidate_receipt.created_objects:
                tx, receipt = candidate_tx, candidate_receipt
                break
        if tx is None or receipt is None:
            raise VerificationError("no transaction created the result object")
        tx.verify()
        checkpoint = self.ledger.checkpoints[receipt.checkpoint]
        tree = MerkleTree(list(checkpoint.tx_digests))
        index = checkpoint.tx_digests.index(tx.digest())
        if not verify_inclusion(tx.digest(), tree.proof(index), checkpoint.merkle_root):
            raise VerificationError("transaction not included in its checkpoint")

        # (2) The sender is the registered executor for the vantage point.
        asn = app_obj.data["asn"]
        interface = app_obj.data["interface"]
        registered = self.market.state["executor_address_map"].get(
            slot_key(asn, interface)
        )
        if registered != tx.sender:
            raise VerificationError(
                "result published by an address other than the registered executor"
            )

        # (3) The certificate covers these bytes and this code.
        result, status, certificate = decode_result_payload(
            result_obj.data["result"]
        )
        if "bytecode" in app_obj.data:
            wire = app_obj.data["bytecode"]
        else:
            if self.code_store is None:
                raise VerificationError(
                    "hash-only application: verifier needs the off-chain store"
                )
            wire = self.code_store.get_verified(app_obj.data["bytecode_hash"])
        purchased = DebugletApplication.from_wire(wire)
        expected_window = None
        if self.enforce_window is not None:
            window = app_obj.data.get("window")
            if window is not None:
                expected_window = (window["start"], window["end"])
        verify_certificate(
            certificate,
            result=result,
            expected_code_hash=purchased.code_hash(),
            expected_vantage=(asn, interface),
            expected_window=expected_window,
            window_slack=self.enforce_window or 0.0,
        )
        return VerifiedResult(
            application_id=application_id_hex,
            result=result,
            status=status,
            certificate=certificate,
            executor_address=tx.sender,
            vantage=(asn, interface),
            checkpoint_index=receipt.checkpoint,
        )
