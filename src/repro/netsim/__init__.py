"""Packet-level inter-domain network simulator.

This subpackage is the testbed substrate for the Debuglet reproduction: a
deterministic discrete-event simulator whose forwarding devices apply
*protocol-differential treatment* (priority queues, ECMP granularity,
congestion-coupled drops), the phenomenon the paper's motivation study
(§II) measures on the real Internet.
"""

from repro.netsim.conduit import DirectedChannel, FaultOverlay, Link, TransitOutcome
from repro.netsim.congestion import (
    Burst,
    CongestionConfig,
    CongestionProcess,
    calm_congestion,
)
from repro.netsim.ecmp import EcmpGroup, HashGranularity, Route, evenly_spread, single_route
from repro.netsim.endhost import Host, Socket
from repro.netsim.engine import EventHandle, Simulator
from repro.netsim.faults import FaultInjector, FaultKind, FaultLocation, InjectedFault
from repro.netsim.internet import (
    GaoRexfordRouter,
    InternetConfig,
    InternetTopology,
    Relation,
    generate_internet,
)
from repro.netsim.network import Network, NetworkStats
from repro.netsim.packet import Address, IcmpType, Packet, Protocol
from repro.netsim.routechurn import (
    RouteChurnProcess,
    RouteShift,
    attach_churn_ensemble,
    no_churn,
)
from repro.netsim.topology import (
    AutonomousSystem,
    BorderRouter,
    InterfaceId,
    PathHop,
    Topology,
)
from repro.netsim.trace import MeasurementTrace, ProbeRecord
from repro.netsim.traffic import (
    MultiProtocolProber,
    OneWayProbeTrain,
    PoissonTraffic,
    ProbeTrain,
    RoundRobinProber,
    TrafficMatrix,
)
from repro.netsim.treatment import ProtocolTreatment, TreatmentProfile

__all__ = [
    "Address",
    "AutonomousSystem",
    "BorderRouter",
    "Burst",
    "CongestionConfig",
    "CongestionProcess",
    "DirectedChannel",
    "EcmpGroup",
    "EventHandle",
    "FaultInjector",
    "FaultKind",
    "FaultLocation",
    "FaultOverlay",
    "GaoRexfordRouter",
    "HashGranularity",
    "Host",
    "IcmpType",
    "InjectedFault",
    "InterfaceId",
    "InternetConfig",
    "InternetTopology",
    "Link",
    "MeasurementTrace",
    "MultiProtocolProber",
    "Network",
    "NetworkStats",
    "OneWayProbeTrain",
    "Packet",
    "PathHop",
    "PoissonTraffic",
    "ProbeRecord",
    "ProbeTrain",
    "RoundRobinProber",
    "Protocol",
    "ProtocolTreatment",
    "Relation",
    "Route",
    "RouteChurnProcess",
    "RouteShift",
    "Simulator",
    "Socket",
    "Topology",
    "TrafficMatrix",
    "TransitOutcome",
    "TreatmentProfile",
    "attach_churn_ensemble",
    "calm_congestion",
    "evenly_spread",
    "generate_internet",
    "no_churn",
    "single_route",
]
