"""Conduits: the unidirectional delay/loss channels packets traverse.

A :class:`DirectedChannel` composes every forwarding effect the paper's
motivation study exposes — propagation delay, transmission time,
self-induced queueing (Lindley recursion per service class), stochastic
cross-traffic queueing from a :class:`~repro.netsim.congestion.CongestionProcess`,
ECMP route choice at a protocol-dependent granularity, route churn, and
protocol-differential drops — into a single ``transit`` call that yields a
:class:`TransitOutcome`.

Channels are used both for individual inter-domain/intra-AS links and, with
larger parameters, for aggregate Internet paths between distant cities
(the §II experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.rng import BufferedRng, derive_rng
from repro.netsim.congestion import CongestionProcess, calm_congestion
from repro.netsim.ecmp import EcmpGroup, single_route
from repro.netsim.packet import Packet, Protocol
from repro.netsim.routechurn import RouteChurnProcess, no_churn
from repro.netsim.treatment import TreatmentProfile


@dataclass(frozen=True)
class FaultOverlay:
    """A fault-injected modifier active on a channel during ``[start, end)``.

    ``protocols`` of ``None`` applies to all protocols.
    """

    start: float
    end: float
    extra_delay: float = 0.0
    extra_loss: float = 0.0
    blackhole: bool = False
    extra_jitter: float = 0.0
    protocols: frozenset[Protocol] | None = None

    def applies(self, t: float, protocol: Protocol) -> bool:
        if not self.start <= t < self.end:
            return False
        return self.protocols is None or protocol in self.protocols


@dataclass
class TransitOutcome:
    """Result of pushing one packet through a channel."""

    delivered: bool
    delay: float = 0.0
    route_index: int = 0
    drop_reason: str | None = None

    @classmethod
    def dropped(cls, reason: str) -> "TransitOutcome":
        return cls(delivered=False, drop_reason=reason)


class DirectedChannel:
    """One direction of a link or aggregate path.

    All stochastic draws come from a stream derived from ``seed`` and the
    channel ``name``, so rebuilding the same topology reproduces identical
    packet fates.
    """

    def __init__(
        self,
        name: str,
        *,
        base_delay: float,
        bandwidth_bps: float = 10e9,
        jitter_std: float = 0.0,
        treatment: TreatmentProfile | None = None,
        congestion: CongestionProcess | None = None,
        ecmp: "EcmpGroup | dict[Protocol, EcmpGroup] | None" = None,
        churn: RouteChurnProcess | None = None,
        seed: int = 0,
    ) -> None:
        if base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        self.name = name
        self.base_delay = base_delay
        self.bandwidth_bps = bandwidth_bps
        self.jitter_std = jitter_std
        # Per-protocol caches, invalidated by the ``treatment`` setter and
        # kept out of the priority-address rewrite path.
        self._treatment_cache: dict[Protocol, object] = {}
        self._ecmp_cache: dict[Protocol, EcmpGroup] = {}
        self.treatment = treatment or TreatmentProfile.uniform()
        self.congestion = congestion or calm_congestion(seed, f"{name}/congestion")
        # ECMP groups may differ per protocol (different protocols really
        # do take different route sets); a plain group applies to all.
        if ecmp is None:
            self._ecmp_by_protocol: dict[Protocol | None, EcmpGroup] = {}
        elif isinstance(ecmp, EcmpGroup):
            self._ecmp_by_protocol = {None: ecmp}
        else:
            self._ecmp_by_protocol = dict(ecmp)
        self._default_route = single_route()
        self.churn = churn or no_churn()
        self.overlays: list[FaultOverlay] = []
        # Addresses whose packets get priority treatment regardless of
        # protocol — the §VI-E "ISP prioritizes executor traffic" attack.
        self.priority_addresses: set = set()
        # BufferedRng preserves the bare generator's draw sequence exactly
        # (see common.rng), so seeded traces are identical with or without
        # the buffering layer.
        self._rng = BufferedRng(derive_rng(seed, "channel", name))
        # Lindley recursion state: when the serializer frees up, per class.
        self._busy_until = {True: 0.0, False: 0.0}  # keyed by priority flag
        self.packets_in = 0
        self.packets_dropped = 0

    @property
    def treatment(self) -> TreatmentProfile:
        return self._treatment

    @treatment.setter
    def treatment(self, value: TreatmentProfile) -> None:
        self._treatment = value
        self._treatment_cache = {}

    def add_overlay(self, overlay: FaultOverlay) -> None:
        self.overlays.append(overlay)

    def remove_overlay(self, overlay: FaultOverlay) -> None:
        self.overlays.remove(overlay)

    def transmission_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.bandwidth_bps

    def ecmp_for(self, protocol: Protocol) -> EcmpGroup:
        """The route set ``protocol`` is balanced over on this channel."""
        group = self._ecmp_cache.get(protocol)
        if group is None:
            group = self._ecmp_by_protocol.get(protocol)
            if group is None:
                group = self._ecmp_by_protocol.get(None)
            if group is None:
                group = self._default_route
            self._ecmp_cache[protocol] = group
        return group

    def transit(self, packet: Packet, t: float) -> TransitOutcome:
        """Push ``packet`` into the channel at time ``t``.

        Returns the transit outcome; on delivery, ``delay`` is the total
        time until the packet exits the far end.
        """
        self.packets_in += 1
        treatment = self._treatment_cache.get(packet.protocol)
        if treatment is None:
            treatment = self._treatment.for_protocol(packet.protocol)
            self._treatment_cache[packet.protocol] = treatment
        if self.priority_addresses and (
            packet.src in self.priority_addresses
            or packet.dst in self.priority_addresses
        ):
            treatment = replace(treatment, priority=True, drop_multiplier=0.0)
        # Overlays are empty in the common case: skip the per-packet list
        # build and both aggregation passes entirely.
        if self.overlays:
            active = [o for o in self.overlays if o.applies(t, packet.protocol)]
        else:
            active = ()

        # Drop decision: protocol floor + congestion loss + fault overlays.
        drop_probability = treatment.base_drop
        drop_probability += self.congestion.drop_probability(
            t, multiplier=treatment.drop_multiplier
        )
        if active:
            if any(overlay.blackhole for overlay in active):
                self.packets_dropped += 1
                return TransitOutcome.dropped("blackhole")
            drop_probability += sum(overlay.extra_loss for overlay in active)
        if drop_probability > 0 and self._rng.random() < min(drop_probability, 1.0):
            self.packets_dropped += 1
            return TransitOutcome.dropped("loss")

        ecmp = self.ecmp_for(packet.protocol)
        route_index = ecmp.select(packet, t, treatment.ecmp_granularity)
        route = ecmp.route(route_index)

        transmission = self.transmission_time(packet.size)
        self_queue = max(0.0, self._busy_until[treatment.priority] - t)
        self._busy_until[treatment.priority] = t + self_queue + transmission

        cross_queue = self.congestion.sample_queue_delay(
            t, self._rng, priority=treatment.priority
        )

        jitter_scale = self.jitter_std + route.jitter + treatment.extra_jitter
        jitter = abs(float(self._rng.normal(0.0, jitter_scale))) if jitter_scale else 0.0

        delay = (
            self.base_delay
            + transmission
            + self_queue
            + cross_queue
            + route.delay_offset
            + (self.churn.offset(t, packet.protocol) if self.churn.shifts else 0.0)
            + treatment.extra_delay
            + jitter
        )
        if active:
            delay += sum(overlay.extra_delay for overlay in active)
            for overlay in active:
                if overlay.extra_jitter:
                    delay += abs(float(self._rng.normal(0.0, overlay.extra_jitter)))
        return TransitOutcome(delivered=True, delay=delay, route_index=route_index)

    @property
    def loss_fraction(self) -> float:
        """Observed drop fraction since construction."""
        if self.packets_in == 0:
            return 0.0
        return self.packets_dropped / self.packets_in


class Link:
    """A bidirectional link: two independent directed channels."""

    def __init__(self, forward: DirectedChannel, reverse: DirectedChannel) -> None:
        self.forward = forward
        self.reverse = reverse

    @classmethod
    def symmetric(
        cls,
        name: str,
        *,
        base_delay: float,
        seed: int = 0,
        **channel_kwargs,
    ) -> "Link":
        """Build a link whose two directions share parameters (not RNG)."""
        forward = DirectedChannel(
            f"{name}/fwd", base_delay=base_delay, seed=seed, **channel_kwargs
        )
        reverse = DirectedChannel(
            f"{name}/rev", base_delay=base_delay, seed=seed, **channel_kwargs
        )
        return cls(forward, reverse)

    def channel(self, direction: str) -> DirectedChannel:
        if direction == "forward":
            return self.forward
        if direction == "reverse":
            return self.reverse
        raise ValueError(f"unknown direction {direction!r}")
