"""Time-varying link congestion.

A :class:`CongestionProcess` models the utilization ``u(t)`` of a link (or
aggregate Internet path) as a deterministic diurnal baseline plus randomly
placed bursts. Queueing-delay samples and drop probabilities are derived
from the utilization at the query instant, with priority classes seeing a
fraction of the backlog — this is the mechanism behind the paper's
observation that ICMP (priority-queued) shows lower jitter than UDP/TCP.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.common.rng import RngStream, derive_buffered_rng

DAY = 86400.0


@dataclass(frozen=True)
class Burst:
    """A transient utilization increase on a link."""

    start: float
    duration: float
    magnitude: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class CongestionConfig:
    """Parameters of a congestion process.

    ``base_utilization`` is the average fraction of capacity in use;
    ``diurnal_amplitude`` adds a sinusoid with a one-day period;
    bursts arrive as a Poisson process with the given rate (per second),
    exponential durations, and uniform magnitudes.
    """

    base_utilization: float = 0.30
    diurnal_amplitude: float = 0.10
    diurnal_phase: float = 0.0
    burst_rate: float = 1.0 / 3600.0
    burst_mean_duration: float = 120.0
    burst_magnitude_range: tuple[float, float] = (0.15, 0.45)
    queue_service_time: float = 0.4e-3
    queue_shape: float = 2.0
    priority_backlog_fraction: float = 0.12
    drop_threshold: float = 0.70
    drop_scale: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_utilization < 1.0:
            raise ValueError("base_utilization must be in [0, 1)")
        if self.queue_service_time <= 0:
            raise ValueError("queue_service_time must be positive")


class CongestionProcess:
    """Deterministic, seedable utilization process over a fixed horizon.

    The burst schedule is materialized up front for ``horizon`` seconds so
    that ``utilization(t)`` is a pure function of construction parameters —
    queries never mutate state and the process can be shared by many
    packets.
    """

    def __init__(
        self,
        config: CongestionConfig,
        *,
        seed: int = 0,
        label: str = "congestion",
        horizon: float = 2 * DAY,
    ) -> None:
        self.config = config
        self.horizon = horizon
        self._bursts: list[Burst] = []
        self._burst_starts: list[float] = []
        self._extra: list[Burst] = []  # fault-injected bursts, kept separate
        # Memo for the last-queried instant: transit() asks for the drop
        # probability and the queue mean at the same ``t``, so the second
        # lookup is free. NaN compares unequal to everything, including
        # itself, so the memo starts (and can be reset to) always-miss.
        self._memo_t = float("nan")
        self._memo_u = 0.0
        # The buffered stream serves the identical draw sequence as a bare
        # generator (see common.rng), so burst schedules are unchanged.
        rng = derive_buffered_rng(seed, label, "bursts")
        self._generate_bursts(rng)

    def _generate_bursts(self, rng: RngStream) -> None:
        config = self.config
        if config.burst_rate <= 0:
            return
        time = 0.0
        low, high = config.burst_magnitude_range
        while True:
            time += float(rng.exponential(1.0 / config.burst_rate))
            if time >= self.horizon:
                break
            duration = float(rng.exponential(config.burst_mean_duration))
            magnitude = float(rng.uniform(low, high))
            self._bursts.append(Burst(time, duration, magnitude))
        self._burst_starts = [burst.start for burst in self._bursts]

    def inject_burst(self, start: float, duration: float, magnitude: float) -> Burst:
        """Add a fault-injected congestion episode (used by fault injection)."""
        burst = Burst(start, duration, magnitude)
        self._extra.append(burst)
        self._memo_t = float("nan")
        return burst

    def clear_injected(self) -> None:
        """Remove all fault-injected bursts."""
        self._extra.clear()
        self._memo_t = float("nan")

    def utilization(self, t: float) -> float:
        """Utilization in [0, 0.99] at simulated time ``t``."""
        if t == self._memo_t:
            return self._memo_u
        config = self.config
        value = config.base_utilization
        if config.diurnal_amplitude:
            value += config.diurnal_amplitude * math.sin(
                2.0 * math.pi * t / DAY + config.diurnal_phase
            )
        # Natural bursts: only those starting at or before t can be active.
        index = bisect.bisect_right(self._burst_starts, t)
        for burst in self._bursts[max(0, index - 64) : index]:
            if burst.start <= t < burst.end:
                value += burst.magnitude
        for burst in self._extra:
            if burst.start <= t < burst.end:
                value += burst.magnitude
        value = min(max(value, 0.0), 0.99)
        self._memo_t = t
        self._memo_u = value
        return value

    def mean_queue_delay(self, t: float, *, priority: bool = False) -> float:
        """Expected queueing delay at ``t`` for the given service class.

        Uses the M/M/1-style ``u / (1 - u)`` backlog growth; priority
        traffic only sees ``priority_backlog_fraction`` of the backlog.
        """
        u = self.utilization(t)
        backlog = u / (1.0 - u)
        if priority:
            backlog *= self.config.priority_backlog_fraction
        return backlog * self.config.queue_service_time

    def sample_queue_delay(
        self, t: float, rng: RngStream, *, priority: bool = False
    ) -> float:
        """Draw a queueing delay with the class-appropriate mean."""
        mean = self.mean_queue_delay(t, priority=priority)
        if mean <= 0.0:
            return 0.0
        shape = self.config.queue_shape
        return float(rng.gamma(shape, mean / shape))

    def drop_probability(self, t: float, *, multiplier: float = 1.0) -> float:
        """Congestion-loss probability at ``t``.

        Zero below ``drop_threshold`` utilization, then grows quadratically.
        ``multiplier`` applies protocol-differential treatment (e.g. routers
        deprioritizing TCP on congested links, per §II).
        """
        u = self.utilization(t)
        excess = u - self.config.drop_threshold
        if excess <= 0.0:
            return 0.0
        probability = self.config.drop_scale * excess * excess * multiplier
        return min(probability, 1.0)


def calm_congestion(seed: int = 0, label: str = "calm") -> CongestionProcess:
    """A nearly idle link: negligible queueing, no natural bursts."""
    config = CongestionConfig(
        base_utilization=0.05,
        diurnal_amplitude=0.0,
        burst_rate=0.0,
        queue_service_time=0.05e-3,
    )
    return CongestionProcess(config, seed=seed, label=label)
