"""Equal-cost multi-path route selection.

Forwarding devices spread traffic across parallel routes by hashing packet
fields. The *granularity* of that hash is protocol-dependent in practice —
the paper's §II hypothesizes that UDP is balanced on a finer-than-flow
basis (explaining its multi-modal RTT clusters, Fig 2, and wide spread,
Fig 3), while TCP sticks to one route per flow. This module implements
those granularities over a set of routes with distinct delay offsets.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro.netsim.packet import Packet


class HashGranularity(enum.Enum):
    """How a load balancer keys its route hash."""

    SINGLE = "single"  # all traffic on one route
    PER_FLOW = "per_flow"  # classic 5-tuple hashing
    PER_FLOWLET = "per_flowlet"  # re-hash after an idle gap in the flow
    PER_PACKET = "per_packet"  # spray every packet independently
    PER_DEST = "per_dest"  # destination-only hashing


def _hash_to_unit(parts: tuple, salt: int) -> float:
    """Map a tuple of hashable parts to a float in [0, 1) deterministically."""
    hasher = hashlib.sha256(repr((salt,) + parts).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") / 2**64


@dataclass
class Route:
    """One member of an ECMP group.

    ``delay_offset`` is added on top of the conduit's base delay;
    ``jitter`` scales the per-packet noise on this route; ``weight``
    biases selection (WCMP).
    """

    delay_offset: float
    jitter: float = 0.0
    weight: float = 1.0
    name: str = ""


class EcmpGroup:
    """A weighted set of parallel routes with protocol-aware selection."""

    def __init__(
        self,
        routes: list[Route],
        *,
        salt: int = 0,
        flowlet_gap: float = 0.5,
    ) -> None:
        if not routes:
            raise ValueError("EcmpGroup requires at least one route")
        if any(route.weight <= 0 for route in routes):
            raise ValueError("route weights must be positive")
        self.routes = list(routes)
        self.salt = salt
        self.flowlet_gap = flowlet_gap
        total = sum(route.weight for route in self.routes)
        self._cumulative: list[float] = []
        acc = 0.0
        for route in self.routes:
            acc += route.weight / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0
        self._flowlet_state: dict[tuple, tuple[float, int]] = {}

    def __len__(self) -> int:
        return len(self.routes)

    def _pick(self, unit: float) -> int:
        for index, threshold in enumerate(self._cumulative):
            if unit < threshold:
                return index
        return len(self.routes) - 1

    def select(self, packet: Packet, t: float, granularity: HashGranularity) -> int:
        """Choose the route index for ``packet`` at time ``t``."""
        if granularity is HashGranularity.SINGLE or len(self.routes) == 1:
            return 0
        if granularity is HashGranularity.PER_PACKET:
            # Key on flow + sequence + send instant, not on any global
            # counter, so identical scenarios replay identically.
            key = packet.flow_key() + (packet.seq, t)
            return self._pick(_hash_to_unit(key, self.salt))
        if granularity is HashGranularity.PER_DEST:
            return self._pick(_hash_to_unit((packet.dst,), self.salt))
        if granularity is HashGranularity.PER_FLOW:
            return self._pick(_hash_to_unit(packet.flow_key(), self.salt))
        if granularity is HashGranularity.PER_FLOWLET:
            key = packet.flow_key()
            last = self._flowlet_state.get(key)
            if last is not None and t - last[0] <= self.flowlet_gap:
                self._flowlet_state[key] = (t, last[1])
                return last[1]
            # New flowlet: hash on the flow key plus a time-bucket nonce.
            nonce = int(t / max(self.flowlet_gap, 1e-9))
            index = self._pick(_hash_to_unit(key + (nonce,), self.salt))
            self._flowlet_state[key] = (t, index)
            return index
        raise ValueError(f"unknown granularity {granularity}")

    def route(self, index: int) -> Route:
        return self.routes[index]


def single_route(delay_offset: float = 0.0, jitter: float = 0.0) -> EcmpGroup:
    """An ECMP group with one route (no load balancing)."""
    return EcmpGroup([Route(delay_offset=delay_offset, jitter=jitter)])


def evenly_spread(
    count: int, spread: float, *, jitter: float = 0.0, salt: int = 0
) -> EcmpGroup:
    """``count`` routes whose delay offsets span ``[0, spread]`` evenly."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if count == 1:
        offsets = [0.0]
    else:
        offsets = [spread * i / (count - 1) for i in range(count)]
    routes = [
        Route(delay_offset=offset, jitter=jitter, name=f"route-{i}")
        for i, offset in enumerate(offsets)
    ]
    return EcmpGroup(routes, salt=salt)
