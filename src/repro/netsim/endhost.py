"""End hosts and their sockets.

Hosts attach to an AS at a named attachment point — either co-located with
a border interface (``"if<N>"``, where Debuglet executors live) or in the
AS interior (``"interior"``, where ordinary endpoints live). Sockets give
measurement applications the paper's four probe protocols with a uniform
send/receive interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import ConfigurationError, SimulationError
from repro.netsim.packet import Address, IcmpType, Packet, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.network import Network
    from repro.netsim.topology import PathHop

ReceiveCallback = Callable[[Packet, float], None]


class Socket:
    """A bound endpoint for one protocol (and, for UDP/TCP, one port)."""

    def __init__(self, host: "Host", protocol: Protocol, port: int = 0) -> None:
        self.host = host
        self.protocol = protocol
        self.port = port
        self.on_receive: ReceiveCallback | None = None
        self.received: list[tuple[Packet, float]] = []
        self.sent_count = 0
        self.closed = False

    def send(
        self,
        dst: Address,
        *,
        dst_port: int = 0,
        size: int = 64,
        seq: int = 0,
        payload: Any = None,
        ttl: int = 64,
        path: "list[PathHop] | None" = None,
        icmp_type: IcmpType | None = None,
    ) -> Packet:
        """Build and transmit a packet; returns it (send_time filled in)."""
        if self.closed:
            raise SimulationError("socket is closed")
        packet = Packet(
            src=self.host.address,
            dst=dst,
            protocol=self.protocol,
            size=size,
            src_port=self.port,
            dst_port=dst_port,
            seq=seq,
            ttl=ttl,
            payload=payload,
            icmp_type=icmp_type,
        )
        self.host.network.send(packet, path=path)
        self.sent_count += 1
        return packet

    def deliver(self, packet: Packet, t: float) -> None:
        """Called by the host stack when a matching packet arrives."""
        if self.closed:
            return
        if self.on_receive is not None:
            self.on_receive(packet, t)
        else:
            self.received.append((packet, t))

    def close(self) -> None:
        self.closed = True
        self.host._remove_socket(self)


class Host:
    """A network endpoint attached to one AS.

    ``echo_protocols`` lists the protocols the host's stack answers
    automatically with an echo reply (swapped src/dst, same seq) — the
    behaviour of the paper's Go echo server, plus the kernel's native ICMP
    echo handling.
    """

    def __init__(
        self,
        address: Address,
        *,
        attachment: str = "interior",
        echo_protocols: tuple[Protocol, ...] = (Protocol.ICMP,),
    ) -> None:
        self.address = address
        self.attachment = attachment
        self.echo_protocols = set(echo_protocols)
        self._network: "Network | None" = None
        self._sockets: dict[tuple[Protocol, int], Socket] = {}
        self.dropped_deliveries = 0

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise ConfigurationError(f"host {self.address} is not attached")
        return self._network

    def attach(self, network: "Network") -> None:
        self._network = network

    def open_socket(self, protocol: Protocol, port: int = 0) -> Socket:
        """Bind a socket. UDP/TCP require a port; ICMP/raw use port 0."""
        if protocol in (Protocol.UDP, Protocol.TCP) and port <= 0:
            raise ConfigurationError(f"{protocol.name} socket requires a port")
        key = (protocol, port)
        if key in self._sockets:
            raise ConfigurationError(
                f"{protocol.name} port {port} already bound on {self.address}"
            )
        sock = Socket(self, protocol, port)
        self._sockets[key] = sock
        return sock

    def open_udp(self, port: int) -> Socket:
        return self.open_socket(Protocol.UDP, port)

    def open_tcp(self, port: int) -> Socket:
        return self.open_socket(Protocol.TCP, port)

    def open_icmp(self) -> Socket:
        return self.open_socket(Protocol.ICMP, 0)

    def open_raw(self) -> Socket:
        return self.open_socket(Protocol.RAW_IP, 0)

    def _remove_socket(self, sock: Socket) -> None:
        self._sockets.pop((sock.protocol, sock.port), None)

    def deliver(self, packet: Packet, t: float) -> None:
        """Host stack demultiplexing, mirroring kernel behaviour."""
        # Automatic echo for configured protocols (ICMP echo by default).
        if packet.protocol in self.echo_protocols and self._is_echo_request(packet):
            self.network.send(packet.reply_to(payload=packet.payload))
            # ICMP echo requests are fully consumed by the stack; other
            # protocols still reach any bound socket (an app may observe).
            if packet.protocol is Protocol.ICMP:
                self._deliver_to_socket(packet, t, quiet=True)
                return
        self._deliver_to_socket(packet, t, quiet=False)

    def _is_echo_request(self, packet: Packet) -> bool:
        if packet.protocol is Protocol.ICMP:
            return packet.icmp_type is IcmpType.ECHO_REQUEST
        return True

    def _deliver_to_socket(self, packet: Packet, t: float, *, quiet: bool) -> None:
        key = (packet.protocol, packet.dst_port)
        sock = self._sockets.get(key)
        if sock is None and packet.protocol in (Protocol.ICMP, Protocol.RAW_IP):
            sock = self._sockets.get((packet.protocol, 0))
        if sock is not None:
            sock.deliver(packet, t)
        elif not quiet:
            self.dropped_deliveries += 1
