"""Discrete-event simulation engine.

A :class:`Simulator` owns a priority queue of timestamped events. Components
schedule callbacks; the run loop pops them in time order. Ties are broken by
insertion order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable

from repro.common.errors import SimulationError


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., None], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in seconds, starting at 0.0. Events scheduled for the
    same instant fire in the order they were scheduled.
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._sequence = count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._queue, (time, next(self._sequence), handle))
        return handle

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Fire the next non-cancelled event. Returns False when idle."""
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or simulated ``until`` passes.

        With ``until`` set, the clock is advanced to exactly ``until`` even
        if the last event fires earlier, so repeated ``run(until=...)``
        calls observe monotonically increasing time.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while self._queue:
                time, _, handle = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = time
                self._events_processed += 1
                handle.callback(*handle.args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self) -> None:
        """Run until no events remain."""
        self.run(until=None)
