"""Discrete-event simulation engine.

A :class:`Simulator` owns a priority queue of timestamped events. Components
schedule callbacks; the run loop pops them in time order. Ties are broken by
insertion order, which keeps runs fully deterministic.

Two scheduling paths exist. :meth:`Simulator.schedule_at` returns an
:class:`EventHandle` that can be cancelled. :meth:`Simulator.post` is the
hot path for fire-and-forget events (packet hops, probe sends): it stores
the callback directly in the heap entry tuple, skipping the handle
allocation entirely. Cancelled handles are counted live and the queue is
compacted lazily once more than half of it is dead.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Callable

from repro.common.errors import SimulationError

#: Queue compaction triggers only past this many live-cancelled entries, so
#: small simulations never pay the rebuild cost.
_COMPACT_MIN_CANCELLED = 64

#: With observability enabled, queue depth is sampled every this many
#: dispatched events (a histogram observation, not a trace event).
_OBS_SAMPLE_EVERY = 256

#: Size of the recent-dispatch ring kept for failure diagnostics
#: (:meth:`Simulator.recent_event_lines`, used by ``SessionStalled``).
_RECENT_RING = 64


def _callback_name(callback: Callable) -> str:
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = type(callback).__name__
    return name


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        sim: "Simulator | None" = None,
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once,
        including after the event already fired (then it is a no-op)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        self._sim = None
        if sim is not None:
            sim._note_cancelled()


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in seconds, starting at 0.0. Events scheduled for the
    same instant fire in the order they were scheduled.
    """

    def __init__(self) -> None:
        # Heap entries are either ``(time, seq, handle)`` for cancellable
        # events or ``(time, seq, None, callback, args)`` for events posted
        # on the fast path. ``(time, seq)`` is a unique prefix, so the
        # mixed tuple shapes never get compared beyond it.
        self._queue: list[tuple] = []
        self._sequence = count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled = 0
        # Observability (repro.obs). ``obs`` stays None unless a bundle is
        # attached; the run loop then switches to its instrumented twin.
        # ``_instrumented`` is True only for a *recording* bundle, so the
        # disabled (null-recorder) mode skips the ring/sampling work too.
        self.obs = None
        self._instrumented = False
        self._recent: deque | None = None
        self._obs_tick = 0

    def attach_observability(self, obs) -> None:
        """Attach a :class:`repro.obs.Observability` bundle.

        Binds the bundle's clock to this simulator and pre-resolves the
        engine's recorders so the run loop records with direct method
        calls (no registry lookups per event).
        """
        self.obs = obs
        obs.bind_clock(lambda: self._now)
        metrics = obs.metrics
        self._m_events = metrics.counter("engine_events_total")
        self._m_cancelled = metrics.counter("engine_events_cancelled_total")
        self._m_compactions = metrics.counter("engine_compactions_total")
        self._h_queue = metrics.histogram("engine_queue_depth")
        self._h_lead = metrics.histogram("engine_event_lead_seconds")
        self._instrumented = obs.record
        self._recent = deque(maxlen=_RECENT_RING) if obs.record else None

    def recent_event_lines(self, n: int = 10) -> list[str]:
        """The last ``n`` dispatched events as ``t=..s name`` strings.

        Empty unless a recording observability bundle is attached — the
        detached hot path keeps no history.
        """
        if not self._recent:
            return []
        return [f"t={t:.6f}s {name}" for t, name in list(self._recent)[-n:]]

    def _note_dispatch(self, time: float, callback: Callable) -> None:
        """Per-event bookkeeping on the instrumented path."""
        self._m_events.inc()
        self._recent.append((time, _callback_name(callback)))
        self._obs_tick += 1
        if self._obs_tick >= _OBS_SAMPLE_EVERY:
            self._obs_tick = 0
            self._h_queue.observe(len(self._queue) - self._cancelled)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued and able to fire.

        Cancelled-but-unpopped events are excluded: a live count is kept,
        incremented by :meth:`EventHandle.cancel` and decremented when a
        dead entry is popped or compacted away.
        """
        return len(self._queue) - self._cancelled

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        handle = EventHandle(time, callback, args, self)
        heapq.heappush(self._queue, (time, next(self._sequence), handle))
        if self._instrumented:
            self._h_lead.observe(time - self._now)
        return handle

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def post(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget event at absolute ``time``.

        The hot-path twin of :meth:`schedule_at`: the callback and args
        ride in the heap tuple itself, with no :class:`EventHandle`
        allocated. Use for events that are never cancelled (packet hops,
        probe sends); behaviour and ordering are otherwise identical.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        heapq.heappush(
            self._queue, (time, next(self._sequence), None, callback, args)
        )
        if self._instrumented:
            self._h_lead.observe(time - self._now)

    # ------------------------------------------------------- cancellation

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` while the entry is queued."""
        self._cancelled += 1
        if self._instrumented:
            self._m_cancelled.inc()
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (lazy compaction hook)."""
        # In-place so aliases held by a running loop stay valid.
        self._queue[:] = [
            entry
            for entry in self._queue
            if entry[2] is None or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0
        if self._instrumented:
            self._m_compactions.inc()
            self.obs.tracer.event(
                "engine.compaction", component="engine",
                queue_depth=len(self._queue),
            )

    # ---------------------------------------------------------- execution

    def step(self) -> bool:
        """Fire the next non-cancelled event. Returns False when idle."""
        instrumented = self._instrumented
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry[2]
            if handle is None:
                self._now = entry[0]
                self._events_processed += 1
                if instrumented:
                    self._note_dispatch(entry[0], entry[3])
                entry[3](*entry[4])
                return True
            if handle.cancelled:
                self._cancelled -= 1
                continue
            handle._sim = None
            self._now = entry[0]
            self._events_processed += 1
            if instrumented:
                self._note_dispatch(entry[0], handle.callback)
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or simulated ``until`` passes.

        With ``until`` set, the clock is advanced to exactly ``until`` even
        if the last event fires earlier, so repeated ``run(until=...)``
        calls observe monotonically increasing time.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        queue = self._queue
        try:
            if self._instrumented:
                self._run_instrumented(queue, until)
            else:
                while queue:
                    if until is not None and queue[0][0] > until:
                        break
                    entry = heapq.heappop(queue)
                    handle = entry[2]
                    if handle is None:
                        self._now = entry[0]
                        self._events_processed += 1
                        entry[3](*entry[4])
                        continue
                    if handle.cancelled:
                        self._cancelled -= 1
                        continue
                    handle._sim = None
                    self._now = entry[0]
                    self._events_processed += 1
                    handle.callback(*handle.args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def _run_instrumented(self, queue: list, until: float | None) -> None:
        """The run loop's recording twin: same semantics, plus per-event
        counters, the recent-dispatch ring, and sampled queue depth."""
        while queue:
            if until is not None and queue[0][0] > until:
                break
            entry = heapq.heappop(queue)
            handle = entry[2]
            if handle is None:
                self._now = entry[0]
                self._events_processed += 1
                self._note_dispatch(entry[0], entry[3])
                entry[3](*entry[4])
                continue
            if handle.cancelled:
                self._cancelled -= 1
                continue
            handle._sim = None
            self._now = entry[0]
            self._events_processed += 1
            self._note_dispatch(entry[0], handle.callback)
            handle.callback(*handle.args)

    def run_until_idle(self) -> None:
        """Run until no events remain."""
        self.run(until=None)
