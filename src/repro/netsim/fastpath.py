"""Vectorized fast path for open-loop probe studies.

The §II motivation experiments push millions of probes through
:meth:`DirectedChannel.transit`, paying several heap events and 2–4 scalar
RNG calls per packet. For *open-loop* probe trains — a fixed send schedule
with no feedback, exactly the :class:`~repro.netsim.traffic.MultiProtocolProber`
shape — every per-packet quantity is an independent function of the send
time, so an entire train can be simulated as numpy array operations.

**Equivalence contract.** :func:`simulate_cell` produces a
:class:`~repro.netsim.trace.MeasurementTrace` whose per-protocol
mean/std/loss statistics match the event-driven reference within sampling
tolerance (property-tested in ``tests/properties/test_prop_fastpath.py``).
It is *not* bit-identical: the fast path draws its randomness from a
per-cell stream derived via the standard ``derive_rng`` scheme, which also
makes every cell independent — serial and process-parallel execution give
identical results. The fast path deliberately skips two effects that are
negligible for paper-style probing and documented in DESIGN.md:

- the Lindley self-queueing term (probe interarrival ≫ transmission time
  for one-per-second 64-byte probes on multi-Gbps channels), and
- sub-RTT drift of the congestion/churn evaluation instant (processes
  vary over minutes-to-hours; a probe crosses a channel in milliseconds).

Channel features that *would* change results are refused with
:class:`FastPathUnsupported` — fault overlays, flowlet ECMP, expired TTL
budgets — so callers can fall back to the event-driven reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import derive_seed
from repro.netsim.conduit import DirectedChannel
from repro.netsim.ecmp import HashGranularity
from repro.netsim.packet import Address, Packet, Protocol
from repro.netsim.trace import MeasurementTrace

DAY = 86400.0


class FastPathUnsupported(SimulationError):
    """The scenario uses a feature the vectorized path cannot reproduce."""


@dataclass(frozen=True)
class CongestionParams:
    """Picklable snapshot of a :class:`CongestionProcess`."""

    base: float
    amplitude: float
    phase: float
    bursts: tuple[tuple[float, float, float], ...]  # (start, end, magnitude)
    queue_service_time: float
    queue_shape: float
    priority_fraction: float
    drop_threshold: float
    drop_scale: float

    def utilization(self, t: np.ndarray) -> np.ndarray:
        u = np.full(t.shape, self.base)
        if self.amplitude:
            u += self.amplitude * np.sin(2.0 * math.pi * t / DAY + self.phase)
        for start, end, magnitude in self.bursts:
            u += magnitude * ((t >= start) & (t < end))
        return np.clip(u, 0.0, 0.99)


@dataclass(frozen=True)
class OverlayWindow:
    """Picklable snapshot of a protocol-filtered :class:`FaultOverlay`.

    Fault overlays are *time windows*: a probe is only affected when its
    traversal instant falls inside ``[start, end)``. That makes them
    vectorizable with boolean masks — the generalization (PR 10) that
    lets the fast path run full localization campaigns, where injected
    faults are the entire point of the workload.
    """

    start: float
    end: float
    extra_delay: float = 0.0
    extra_loss: float = 0.0
    blackhole: bool = False
    extra_jitter: float = 0.0


@dataclass(frozen=True)
class ChannelStage:
    """One channel traversal of a probe's round trip, vectorizable."""

    base_delay: float
    transmission: float
    priority: bool
    extra_delay: float
    base_drop: float
    drop_multiplier: float
    jitter_base: float  # jitter_std + treatment.extra_jitter
    route_offsets: tuple[float, ...]
    route_jitters: tuple[float, ...]
    route_weights: tuple[float, ...]  # normalized; () when route is fixed
    fixed_route: int  # used when route_weights is empty
    congestion: CongestionParams
    churn: tuple[tuple[float, float, float], ...]  # (start, end, delta)
    overlays: tuple[OverlayWindow, ...] = ()


@dataclass(frozen=True)
class ProbeCell:
    """One (probe train) cell: schedule plus its round-trip stages."""

    label: str
    protocol: Protocol
    count: int
    interval: float
    start: float
    timeout: float
    seed: int
    stages: tuple[ChannelStage, ...]


# --------------------------------------------------------------- extraction


def _stage_from_channel(
    channel: DirectedChannel, packet: Packet, *, allow_overlays: bool = False
) -> ChannelStage:
    """Snapshot ``channel`` as seen by ``packet``'s protocol.

    ``allow_overlays`` opts in to vectorized fault-overlay windows (the
    localization fast path); the default preserves PR 1's refusal
    contract for callers that predate overlay support.
    """
    overlays: tuple[OverlayWindow, ...] = ()
    if channel.overlays:
        if not allow_overlays:
            raise FastPathUnsupported(
                f"channel {channel.name} has fault overlays; "
                "use the event-driven path"
            )
        overlays = tuple(
            OverlayWindow(
                start=o.start,
                end=o.end,
                extra_delay=o.extra_delay,
                extra_loss=o.extra_loss,
                blackhole=o.blackhole,
                extra_jitter=o.extra_jitter,
            )
            for o in channel.overlays
            if o.protocols is None or packet.protocol in o.protocols
        )
    treatment = channel.treatment.for_protocol(packet.protocol)
    if channel.priority_addresses and (
        packet.src in channel.priority_addresses
        or packet.dst in channel.priority_addresses
    ):
        treatment = replace(treatment, priority=True, drop_multiplier=0.0)

    ecmp = channel.ecmp_for(packet.protocol)
    granularity = treatment.ecmp_granularity
    offsets = tuple(route.delay_offset for route in ecmp.routes)
    jitters = tuple(route.jitter for route in ecmp.routes)
    if granularity is HashGranularity.PER_PACKET and len(ecmp) > 1:
        total = sum(route.weight for route in ecmp.routes)
        weights = tuple(route.weight / total for route in ecmp.routes)
        fixed = 0
    elif granularity is HashGranularity.PER_FLOWLET and len(ecmp) > 1:
        raise FastPathUnsupported(
            f"channel {channel.name}: flowlet ECMP is time-dependent"
        )
    else:
        # SINGLE always picks route 0; PER_FLOW / PER_DEST hash quantities
        # that are constant across an open-loop train, so the event-driven
        # selection is a fixed index we can compute exactly.
        weights = ()
        fixed = ecmp.select(packet, 0.0, granularity)

    congestion = channel.congestion
    config = congestion.config
    bursts = tuple(
        (burst.start, burst.end, burst.magnitude)
        for burst in (congestion._bursts + congestion._extra)
    )
    churn = tuple(
        (shift.start, shift.end, shift.delta)
        for shift in channel.churn.shifts
        if shift.protocols is None or packet.protocol in shift.protocols
    )
    return ChannelStage(
        base_delay=channel.base_delay,
        transmission=channel.transmission_time(packet.size),
        priority=treatment.priority,
        extra_delay=treatment.extra_delay,
        base_drop=treatment.base_drop,
        drop_multiplier=treatment.drop_multiplier,
        jitter_base=channel.jitter_std + treatment.extra_jitter,
        route_offsets=offsets,
        route_jitters=jitters,
        route_weights=weights,
        fixed_route=fixed,
        congestion=CongestionParams(
            base=config.base_utilization,
            amplitude=config.diurnal_amplitude,
            phase=config.diurnal_phase,
            bursts=bursts,
            queue_service_time=config.queue_service_time,
            queue_shape=config.queue_shape,
            priority_fraction=config.priority_backlog_fraction,
            drop_threshold=config.drop_threshold,
            drop_scale=config.drop_scale,
        ),
        churn=churn,
        overlays=overlays,
    )


def extract_probe_cell(
    network,
    client,
    server_address,
    protocol: Protocol,
    *,
    count: int,
    interval: float,
    start: float,
    size: int = 64,
    timeout: float = 5.0,
    src_port: int = 0,
    dst_port: int = 7,
    seed: int = 0,
    label: str = "",
) -> ProbeCell:
    """Snapshot one echo-probe train as a vectorizable :class:`ProbeCell`.

    Walks the same trails the event-driven path would use (probe out,
    echo reply back) and converts every traversed channel into a
    :class:`ChannelStage`. Raises :class:`FastPathUnsupported` when the
    scenario relies on effects only the event-driven path models.
    """
    if count <= 0:
        raise ConfigurationError("probe count must be positive")
    if interval <= 0:
        raise ConfigurationError("probe interval must be positive")
    server_host = network.hosts.get(server_address)
    if server_host is None:
        raise FastPathUnsupported(f"no host at {server_address}")
    if protocol not in server_host.echo_protocols:
        raise FastPathUnsupported(
            f"{server_address} does not echo {protocol.name}"
        )
    probe = Packet(
        src=client.address,
        dst=server_address,
        protocol=protocol,
        size=size,
        src_port=src_port,
        dst_port=dst_port,
    )
    reply = probe.reply_to()
    stages = []
    for packet in (probe, reply):
        trail = network._build_trail(packet, None)
        for segment in trail:
            stages.append(_stage_from_channel(segment.channel, packet))
    return ProbeCell(
        label=label,
        protocol=protocol,
        count=count,
        interval=interval,
        start=start,
        timeout=timeout,
        seed=seed,
        stages=tuple(stages),
    )


def _segment_stages(
    topology,
    hops,
    packet: Packet,
    src_attachment: str,
    dst_attachment: str,
    *,
    allow_overlays: bool,
) -> list[ChannelStage]:
    """Stages for one direction of a pinned segment traversal.

    Mirrors ``Network._build_trail`` exactly: source attachment to egress
    interface, the inter-domain channel per crossed link, ingress→egress
    interior channels at transit ASes, and ingress to the destination
    attachment at the final AS.
    """
    from repro.netsim.topology import InterfaceId

    stages: list[ChannelStage] = []
    if len(hops) == 1:
        asys = topology.autonomous_system(hops[0].asn)
        channel = asys.internal_channel(src_attachment, dst_attachment)
        stages.append(
            _stage_from_channel(channel, packet, allow_overlays=allow_overlays)
        )
        return stages

    first = hops[0]
    if first.egress is None:
        raise FastPathUnsupported("first hop has no egress interface")
    asys = topology.autonomous_system(first.asn)
    stages.append(
        _stage_from_channel(
            asys.internal_channel(src_attachment, f"if{first.egress}"),
            packet,
            allow_overlays=allow_overlays,
        )
    )
    for hop, nxt in zip(hops, hops[1:]):
        if hop.egress is None or nxt.ingress is None:
            raise FastPathUnsupported("missing interface on transit hop")
        channel = topology.channel_between(
            InterfaceId(hop.asn, hop.egress), InterfaceId(nxt.asn, nxt.ingress)
        )
        stages.append(
            _stage_from_channel(channel, packet, allow_overlays=allow_overlays)
        )
        next_as = topology.autonomous_system(nxt.asn)
        if nxt.egress is not None:
            interior = next_as.internal_channel(f"if{nxt.ingress}", f"if{nxt.egress}")
        else:
            interior = next_as.internal_channel(f"if{nxt.ingress}", dst_attachment)
        stages.append(
            _stage_from_channel(interior, packet, allow_overlays=allow_overlays)
        )
    return stages


def extract_segment_cell(
    topology,
    segment,
    protocol: Protocol,
    *,
    client_vantage: tuple[int, int],
    server_vantage: tuple[int, int],
    count: int,
    interval: float,
    start: float,
    size: int = 64,
    timeout: float = 5.0,
    dst_port: int = 7,
    seed: int = 0,
    label: str = "",
    allow_overlays: bool = True,
) -> ProbeCell:
    """Snapshot a D2D segment measurement as a vectorizable cell.

    The generalization of :func:`extract_probe_cell` to the localization
    workloads (§IV-B, Fig 6): a probe train between two border-router
    vantage points over a *pinned* :class:`~repro.pathaware.segments.PathSegment`,
    echoed back over its reverse — exactly the round trip
    :class:`~repro.core.probing.SegmentProber` runs with paired echo
    Debuglets. Fault overlays are vectorized by default here (a
    localization campaign is *about* injected faults); pass
    ``allow_overlays=False`` to restore the PR 1 refusal behavior.
    """
    if count <= 0:
        raise ConfigurationError("probe count must be positive")
    if interval <= 0:
        raise ConfigurationError("probe interval must be positive")
    hops = segment.as_list()
    if hops[0].asn != client_vantage[0] or hops[-1].asn != server_vantage[0]:
        raise ConfigurationError("segment does not join the two vantage points")
    client_attachment = f"if{client_vantage[1]}"
    server_attachment = f"if{server_vantage[1]}"
    probe = Packet(
        src=_vantage_address(client_vantage),
        dst=_vantage_address(server_vantage),
        protocol=protocol,
        size=size,
        dst_port=dst_port,
    )
    reply = probe.reply_to()
    stages = _segment_stages(
        topology,
        hops,
        probe,
        client_attachment,
        server_attachment,
        allow_overlays=allow_overlays,
    )
    stages += _segment_stages(
        topology,
        segment.reversed().as_list(),
        reply,
        server_attachment,
        client_attachment,
        allow_overlays=allow_overlays,
    )
    return ProbeCell(
        label=label,
        protocol=protocol,
        count=count,
        interval=interval,
        start=start,
        timeout=timeout,
        seed=seed,
        stages=tuple(stages),
    )


def _vantage_address(vantage: tuple[int, int]) -> "Address":
    """The data address an executor deployed at ``vantage`` would use.

    Mirrors ``repro.core.executor.executor_data_address`` (kept in sync
    by a unit test) rather than importing it: netsim sits below core in
    the layering.
    """
    asn, interface = vantage
    return Address(asn, f"exec{interface}")


# --------------------------------------------------------------- simulation


def simulate_cell_arrays(cell: ProbeCell) -> tuple[np.ndarray, np.ndarray]:
    """Simulate one open-loop probe train entirely as array operations.

    Returns ``(send_times, rtts)`` with NaN rtt marking a lost probe —
    the raw form :mod:`repro.perf.parallel` ships across process
    boundaries (two float arrays pickle far cheaper than per-probe record
    objects). Pure function of ``cell`` (including its embedded seed):
    calling it from any process or in any order yields bit-identical
    arrays, which is what makes the parallel fan-out safe.
    """
    rng = np.random.default_rng(cell.seed)
    n = cell.count
    send_times = cell.start + cell.interval * np.arange(n, dtype=np.float64)
    t = send_times.copy()  # arrival instant at the current stage
    delivered = np.ones(n, dtype=bool)

    for stage in cell.stages:
        congestion = stage.congestion
        u = congestion.utilization(t)

        # Fault-overlay activity masks: which probes traverse this
        # channel inside each overlay's [start, end) window.
        overlay_masks: list[tuple[OverlayWindow, np.ndarray]] = []
        if stage.overlays:
            overlay_masks = [
                (o, (t >= o.start) & (t < o.end)) for o in stage.overlays
            ]

        # Drop decision: protocol floor + congestion loss + overlays.
        drop_probability = np.full(n, stage.base_drop)
        excess = u - congestion.drop_threshold
        over = excess > 0.0
        if over.any():
            drop_probability = drop_probability + np.where(
                over,
                congestion.drop_scale * excess * excess * stage.drop_multiplier,
                0.0,
            )
        for overlay, mask in overlay_masks:
            if overlay.blackhole:
                delivered &= ~mask
            if overlay.extra_loss:
                drop_probability = drop_probability + overlay.extra_loss * mask
        if drop_probability.max() > 0.0:
            delivered &= rng.random(n) >= np.minimum(drop_probability, 1.0)

        # Route choice.
        if stage.route_weights:
            cumulative = np.cumsum(stage.route_weights)
            cumulative[-1] = 1.0
            indices = np.searchsorted(cumulative, rng.random(n), side="right")
            route_offset = np.asarray(stage.route_offsets)[indices]
            route_jitter = np.asarray(stage.route_jitters)[indices]
        else:
            route_offset = stage.route_offsets[stage.fixed_route]
            route_jitter = stage.route_jitters[stage.fixed_route]

        # Cross-traffic queueing (gamma with the class-appropriate mean).
        mean_queue = u / (1.0 - u) * congestion.queue_service_time
        if stage.priority:
            mean_queue = mean_queue * congestion.priority_fraction
        shape = congestion.queue_shape
        queue = rng.standard_gamma(shape, n) * (mean_queue / shape)

        # Per-packet jitter (folded normal), scale possibly per-route.
        jitter_scale = stage.jitter_base + route_jitter
        if np.any(jitter_scale > 0.0):
            jitter = np.abs(rng.standard_normal(n)) * jitter_scale
        else:
            jitter = 0.0

        # Route churn offset in effect at the traversal instant.
        churn_offset = 0.0
        if stage.churn:
            churn_offset = np.zeros(n)
            for start, end, delta in stage.churn:
                churn_offset += delta * ((t >= start) & (t < end))

        # Overlay delay/jitter, masked to each overlay's active window.
        overlay_delay = 0.0
        if overlay_masks:
            overlay_delay = np.zeros(n)
            for overlay, mask in overlay_masks:
                if overlay.extra_delay:
                    overlay_delay += overlay.extra_delay * mask
                if overlay.extra_jitter:
                    overlay_delay += (
                        np.abs(rng.standard_normal(n)) * overlay.extra_jitter * mask
                    )

        t = t + (
            stage.base_delay
            + stage.transmission
            + queue
            + route_offset
            + churn_offset
            + stage.extra_delay
            + overlay_delay
            + jitter
        )

    rtts = t - send_times
    rtts[~delivered | (rtts > cell.timeout)] = np.nan
    return send_times, rtts


def simulate_cell(cell: ProbeCell) -> MeasurementTrace:
    """Simulate ``cell`` and wrap the result as a :class:`MeasurementTrace`."""
    send_times, rtts = simulate_cell_arrays(cell)
    return MeasurementTrace.from_arrays(
        cell.protocol, send_times, rtts, label=cell.label
    )


def cell_seed(seed: int, *labels: str | int) -> int:
    """Per-cell seed via the standard derivation scheme.

    ``derive_seed(seed, "fastpath", *labels)`` — a pure function of the
    labels, so cells get the same stream whether simulated serially, in a
    different order, or in worker processes.
    """
    return derive_seed(seed, "fastpath", *labels)
