"""Fault injection with recorded ground truth.

Localization experiments need to (a) make a specific network segment
misbehave and (b) later score a localizer's verdict against what was
actually injected. :class:`FaultInjector` does both: every injection
returns a :class:`InjectedFault` carrying its ground-truth location.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netsim.conduit import DirectedChannel, FaultOverlay
from repro.netsim.topology import InterfaceId, Topology


class FaultKind(enum.Enum):
    CONGESTION = "congestion"
    LOSS = "loss"
    DELAY = "delay"
    BLACKHOLE = "blackhole"


@dataclass(frozen=True)
class FaultLocation:
    """Ground-truth location of a fault.

    Either an inter-domain link (both interfaces set) or an AS interior
    (``asn`` set, interfaces ``None``).
    """

    asn: int | None = None
    link: tuple[InterfaceId, InterfaceId] | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.link is not None:
            return f"link {self.link[0]}<->{self.link[1]}"
        return f"AS {self.asn} interior"


@dataclass
class InjectedFault:
    """A fault that was injected, with enough detail to score localizers."""

    kind: FaultKind
    location: FaultLocation
    start: float
    end: float
    magnitude: float
    overlays: list[tuple[DirectedChannel, FaultOverlay]]
    revoked: bool = False

    def revoke(self) -> None:
        """Remove the fault's effects from all channels. Idempotent.

        Removal is by overlay *identity*, not equality: two faults built
        from identical parameters produce equal (frozen) overlays, and an
        equality-based ``list.remove`` on the second revoke would strip
        the other fault's still-active overlay, silently restoring stale
        channel parameters.
        """
        if self.revoked:
            return
        self.revoked = True
        for channel, overlay in self.overlays:
            for index, existing in enumerate(channel.overlays):
                if existing is overlay:
                    del channel.overlays[index]
                    break


class FaultInjector:
    """Injects faults into a topology's channels."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.injected: list[InjectedFault] = []

    def _link_channels(
        self, a: InterfaceId, b: InterfaceId, *, directions: str = "both"
    ) -> list[DirectedChannel]:
        channels = []
        if directions in ("both", "forward"):
            channels.append(self.topology.channel_between(a, b))
        if directions in ("both", "reverse"):
            channels.append(self.topology.channel_between(b, a))
        return channels

    def _as_internal_channels(self, asn: int) -> list[DirectedChannel]:
        asys = self.topology.autonomous_system(asn)
        interfaces = sorted(asys.routers)
        points = [f"if{i}" for i in interfaces] + [asys.interior_attachment()]
        channels = []
        for src in points:
            for dst in points:
                if src != dst:
                    channels.append(asys.internal_channel(src, dst))
        return channels

    def _inject(
        self,
        kind: FaultKind,
        location: FaultLocation,
        channels: list[DirectedChannel],
        overlay_template: FaultOverlay,
        magnitude: float,
    ) -> InjectedFault:
        overlays = []
        for channel in channels:
            channel.add_overlay(overlay_template)
            overlays.append((channel, overlay_template))
        fault = InjectedFault(
            kind=kind,
            location=location,
            start=overlay_template.start,
            end=overlay_template.end,
            magnitude=magnitude,
            overlays=overlays,
        )
        self.injected.append(fault)
        return fault

    # ------------------------------------------------------------- links

    def link_loss(
        self,
        a: InterfaceId,
        b: InterfaceId,
        *,
        loss: float,
        start: float,
        end: float,
        directions: str = "both",
    ) -> InjectedFault:
        """Extra loss probability on the inter-domain link a<->b."""
        overlay = FaultOverlay(start=start, end=end, extra_loss=loss)
        return self._inject(
            FaultKind.LOSS,
            FaultLocation(link=(a, b)),
            self._link_channels(a, b, directions=directions),
            overlay,
            loss,
        )

    def link_delay(
        self,
        a: InterfaceId,
        b: InterfaceId,
        *,
        extra_delay: float,
        start: float,
        end: float,
        jitter: float = 0.0,
        directions: str = "both",
    ) -> InjectedFault:
        """Extra (congestion-like) delay on the link a<->b."""
        overlay = FaultOverlay(
            start=start, end=end, extra_delay=extra_delay, extra_jitter=jitter
        )
        return self._inject(
            FaultKind.DELAY,
            FaultLocation(link=(a, b)),
            self._link_channels(a, b, directions=directions),
            overlay,
            extra_delay,
        )

    def link_blackhole(
        self, a: InterfaceId, b: InterfaceId, *, start: float, end: float,
        directions: str = "both",
    ) -> InjectedFault:
        """Total outage on the link a<->b."""
        overlay = FaultOverlay(start=start, end=end, blackhole=True)
        return self._inject(
            FaultKind.BLACKHOLE,
            FaultLocation(link=(a, b)),
            self._link_channels(a, b, directions=directions),
            overlay,
            1.0,
        )

    # ------------------------------------------------------- AS interiors

    def as_internal_delay(
        self, asn: int, *, extra_delay: float, start: float, end: float,
        jitter: float = 0.0,
    ) -> InjectedFault:
        """Extra delay inside AS ``asn`` (all interior channels)."""
        overlay = FaultOverlay(
            start=start, end=end, extra_delay=extra_delay, extra_jitter=jitter
        )
        return self._inject(
            FaultKind.DELAY,
            FaultLocation(asn=asn),
            self._as_internal_channels(asn),
            overlay,
            extra_delay,
        )

    def as_internal_loss(
        self, asn: int, *, loss: float, start: float, end: float
    ) -> InjectedFault:
        """Extra loss inside AS ``asn``."""
        overlay = FaultOverlay(start=start, end=end, extra_loss=loss)
        return self._inject(
            FaultKind.LOSS,
            FaultLocation(asn=asn),
            self._as_internal_channels(asn),
            overlay,
            loss,
        )

    def revoke_all(self) -> None:
        for fault in self.injected:
            fault.revoke()
        self.injected.clear()
