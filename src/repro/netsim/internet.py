"""Internet-scale synthetic topologies with Gao-Rexford policy routing.

The localization experiments so far ran on hand-built chains and a
seven-city star. This module generates *continent-scale* AS graphs —
1k–20k ASes with a power-law degree distribution — annotated with the
business relationships real inter-domain routing is governed by:

- **customer→provider** edges, created by preferential attachment (new
  ASes buy transit from already-well-connected providers, which is what
  produces the power-law degree tail);
- a fully meshed **tier-1 clique** at the top (ASes with no providers);
- lateral **peer↔peer** edges between similar-rank ASes.

Routing follows the Gao-Rexford conditions: an AS prefers routes learned
from customers over peers over providers, and only exports customer
routes to peers/providers (no valley: a path is ``up* (peer)? down*``).
:class:`GaoRexfordRouter` computes per-destination routing trees with the
standard three-phase BFS (customer routes up from the destination, one
peer hop, provider routes down), deterministically tie-broken, so every
path the simulator forwards over is valley-free by construction.

Every stochastic choice draws from streams derived via the standard
``derive_rng`` label scheme, so a topology is a pure function of its
config — byte-identical regeneration from a seed is property-tested, and
:meth:`InternetTopology.digest` gives the canonical fingerprint.
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import derive_rng
from repro.netsim.conduit import Link
from repro.netsim.topology import InterfaceId, PathHop, Topology

#: Continent labels for the default five-region split (cosmetic; the
#: sharding layer only cares about the region *index*).
REGION_NAMES = ("america", "europe", "asia", "africa", "oceania")


class Relation(enum.Enum):
    """The business relationship of a neighbor, from one AS's viewpoint."""

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"


@dataclass(frozen=True)
class InternetConfig:
    """Parameters of a generated Internet-scale topology.

    ``n_ases`` includes the tier-1 clique. ``multihoming`` is the
    probability a new AS buys transit from a second provider (so the mean
    provider count is ``1 + multihoming``). ``peer_fraction`` adds
    roughly that fraction of ``n_ases`` lateral peering links between
    similar-degree ASes. Delays are drawn uniformly from the given ranges
    (seconds, one way) depending on whether the two endpoints share a
    region.
    """

    n_ases: int = 1000
    seed: int = 0
    tier1: int = 4
    multihoming: float = 0.35
    peer_fraction: float = 0.15
    regions: int = 5
    intra_region_delay: tuple[float, float] = (2e-3, 12e-3)
    inter_region_delay: tuple[float, float] = (25e-3, 90e-3)
    internal_delay: float = 0.3e-3
    internal_jitter: float = 0.02e-3
    link_jitter: float = 0.05e-3

    def __post_init__(self) -> None:
        if self.n_ases < 3:
            raise ConfigurationError("n_ases must be at least 3")
        if not 2 <= self.tier1 <= self.n_ases:
            raise ConfigurationError("tier1 clique must fit inside n_ases")
        if not 0.0 <= self.multihoming <= 1.0:
            raise ConfigurationError("multihoming must be a probability")
        if not 0.0 <= self.peer_fraction <= 1.0:
            raise ConfigurationError("peer_fraction must be in [0, 1]")
        if self.regions < 1:
            raise ConfigurationError("regions must be >= 1")


class InternetTopology(Topology):
    """A :class:`Topology` annotated with relationships and regions.

    ``relation_of[(a, b)]`` is what *b* is to *a* (so a customer edge is
    recorded twice: ``(a, b) -> CUSTOMER`` and ``(b, a) -> PROVIDER``).
    ``region_of[asn]`` is the AS's region index in ``range(regions)``.
    :meth:`shortest_path` is overridden to return the Gao-Rexford policy
    path, so :class:`~repro.netsim.network.Network` default routing is
    valley-free on these topologies.
    """

    def __init__(self, config: InternetConfig) -> None:
        super().__init__()
        self.config = config
        self.relation_of: dict[tuple[int, int], Relation] = {}
        self.region_of: dict[int, int] = {}
        # Adjacency by class, kept sorted for deterministic iteration.
        self.providers_of: dict[int, list[int]] = {}
        self.customers_of: dict[int, list[int]] = {}
        self.peers_of: dict[int, list[int]] = {}
        # Interface number of ``a`` on the a–b adjacency.
        self.interface_on: dict[tuple[int, int], int] = {}
        self._iface_counter: dict[int, int] = {}
        self.router = GaoRexfordRouter(self)

    # ------------------------------------------------------------ building

    def _next_interface(self, asn: int) -> int:
        nxt = self._iface_counter.get(asn, 0) + 1
        self._iface_counter[asn] = nxt
        return nxt

    def add_relationship(
        self, a: int, b: int, relation: Relation, link: Link
    ) -> None:
        """Join ``a`` and ``b``; ``relation`` is what ``b`` is to ``a``."""
        if (a, b) in self.relation_of:
            raise ConfigurationError(f"AS {a} and AS {b} are already adjacent")
        if_a = self._next_interface(a)
        if_b = self._next_interface(b)
        self.connect(a, if_a, b, if_b, link)
        self.interface_on[(a, b)] = if_a
        self.interface_on[(b, a)] = if_b
        inverse = {
            Relation.CUSTOMER: Relation.PROVIDER,
            Relation.PROVIDER: Relation.CUSTOMER,
            Relation.PEER: Relation.PEER,
        }[relation]
        self.relation_of[(a, b)] = relation
        self.relation_of[(b, a)] = inverse
        by_class = {
            Relation.CUSTOMER: self.customers_of,
            Relation.PROVIDER: self.providers_of,
            Relation.PEER: self.peers_of,
        }
        by_class[relation].setdefault(a, []).append(b)
        by_class[inverse].setdefault(b, []).append(a)
        self.router.invalidate()

    def degree(self, asn: int) -> int:
        return (
            len(self.providers_of.get(asn, ()))
            + len(self.customers_of.get(asn, ()))
            + len(self.peers_of.get(asn, ()))
        )

    # ------------------------------------------------------------- routing

    def shortest_path(self, src_asn: int, dst_asn: int) -> list[PathHop]:
        """The Gao-Rexford policy path (overrides plain BFS)."""
        return self.router.path(src_asn, dst_asn)

    def policy_segment_asns(self, src_asn: int, dst_asn: int) -> list[int]:
        """The AS-level policy path (no interface expansion)."""
        return self.router.path_asns(src_asn, dst_asn)

    def is_valley_free(self, asns: list[int]) -> bool:
        """Check the ``up* (peer)? down*`` export pattern over ``asns``."""
        # Phase 0: climbing provider edges; 1: after the peer hop or the
        # first down edge. A second peer edge or any up edge after the
        # descent starts is a valley.
        phase = 0
        peer_used = False
        for a, b in zip(asns, asns[1:]):
            relation = self.relation_of.get((a, b))
            if relation is None:
                return False
            if relation is Relation.PROVIDER:  # up
                if phase != 0:
                    return False
            elif relation is Relation.PEER:
                if phase != 0 or peer_used:
                    return False
                peer_used = True
                phase = 1
            else:  # CUSTOMER: down
                phase = 1
        return True

    def links(self):
        """Iterate inter-domain adjacencies once each, deterministically.

        Yields ``(asn_a, asn_b, link)`` with ``asn_a < asn_b``, where the
        link's ``forward`` channel carries a→b traffic.
        """
        for a in sorted(self.ases):
            for relation_map in (self.customers_of, self.providers_of, self.peers_of):
                for b in relation_map.get(a, ()):
                    if a < b:
                        if_a = self.interface_on[(a, b)]
                        link, _ = self.link_at_interface(a, if_a)
                        yield a, b, link

    def link_at_interface(self, asn: int, interface: int):
        return self.link_at(InterfaceId(asn, interface))

    # -------------------------------------------------------------- digest

    def digest(self) -> str:
        """Canonical fingerprint of the generated structure.

        Covers the edge list with relations, regions, interface numbers,
        and per-link base delays — everything a same-seed regeneration
        must reproduce byte-identically.
        """
        hasher = hashlib.sha256()
        for asn in sorted(self.ases):
            hasher.update(f"as:{asn}:{self.region_of.get(asn, -1)};".encode())
        for a, b, link in self.links():
            relation = self.relation_of[(a, b)].value
            hasher.update(
                f"edge:{a}#{self.interface_on[(a, b)]}-"
                f"{b}#{self.interface_on[(b, a)]}:{relation}:"
                f"{link.forward.base_delay:.9f}:{link.reverse.base_delay:.9f};"
                .encode()
            )
        return hasher.hexdigest()


# --------------------------------------------------------------- generation


def generate_internet(config: InternetConfig) -> InternetTopology:
    """Generate a seeded power-law Internet-scale topology.

    Structure: ASNs ``1..tier1`` form a fully meshed peer clique; every
    later AS attaches to one or two providers chosen by preferential
    attachment over current degree (provider chains therefore always
    terminate in the clique, which makes every pair valley-free
    reachable); lateral peer links are then added between similar-degree
    ASes. Deterministic: a pure function of ``config``.
    """
    topology = InternetTopology(config)
    rng = derive_rng(config.seed, "internet", config.n_ases)
    n = config.n_ases

    # Regions first, so link delays are decidable at attach time.
    region_draws = rng.integers(0, config.regions, size=n + 1)
    for asn in range(1, n + 1):
        region = int(region_draws[asn])
        topology.region_of[asn] = region
        topology.make_as(
            asn,
            name=f"AS{asn}",
            internal_delay=config.internal_delay,
            internal_jitter=config.internal_jitter,
            seed=config.seed + asn,
        )

    def make_link(a: int, b: int) -> Link:
        low, high = (
            config.intra_region_delay
            if topology.region_of[a] == topology.region_of[b]
            else config.inter_region_delay
        )
        delay = float(rng.uniform(low, high))
        return Link.symmetric(
            f"inet-{a}-{b}",
            base_delay=delay,
            jitter_std=config.link_jitter,
            seed=config.seed + 7919 * a + b,
        )

    # Tier-1 clique: mutual peers.
    for a in range(1, config.tier1 + 1):
        for b in range(a + 1, config.tier1 + 1):
            topology.add_relationship(a, b, Relation.PEER, make_link(a, b))

    # Preferential attachment over degree: the ``targets`` list holds one
    # entry per unit of degree, so a uniform index is a degree-weighted
    # draw (the classic Barabási–Albert trick).
    targets: list[int] = []
    for a in range(1, config.tier1 + 1):
        targets.extend([a] * topology.degree(a))
    for asn in range(config.tier1 + 1, n + 1):
        provider_count = 1 + (float(rng.random()) < config.multihoming)
        chosen: list[int] = []
        while len(chosen) < provider_count:
            provider = targets[int(rng.integers(0, len(targets)))]
            if provider not in chosen:
                chosen.append(provider)
        for provider in chosen:
            topology.add_relationship(
                asn, provider, Relation.PROVIDER, make_link(asn, provider)
            )
            targets.extend((asn, provider))

    # Lateral peering between similar-rank ASes: sort by degree, pair
    # each sampled AS with a near neighbor in rank order.
    peer_links = int(config.peer_fraction * n)
    if peer_links:
        by_rank = sorted(
            range(1, n + 1), key=lambda a: (-topology.degree(a), a)
        )
        attempts = 0
        added = 0
        while added < peer_links and attempts < peer_links * 8:
            attempts += 1
            i = int(rng.integers(0, max(1, len(by_rank) - 1)))
            span = 1 + int(rng.integers(0, 8))
            j = min(i + span, len(by_rank) - 1)
            a, b = by_rank[i], by_rank[j]
            if a == b or (a, b) in topology.relation_of:
                continue
            topology.add_relationship(a, b, Relation.PEER, make_link(a, b))
            added += 1

    return topology


# ------------------------------------------------------------ policy routing


@dataclass
class RouteTree:
    """Per-destination routing state for every AS.

    ``pref_class[v]`` is 0 (customer route), 1 (peer), 2 (provider) or -1
    (unreachable); ``pref_len[v]`` the AS-path length of the preferred
    route; ``next_hop[v]`` the neighbor the preferred route goes through.
    """

    dst: int
    pref_class: list[int]
    pref_len: list[int]
    next_hop: list[int]
    customer_next: list[int] = field(repr=False, default_factory=list)


class GaoRexfordRouter:
    """Valley-free route computation with per-destination tree caching.

    The three phases mirror how BGP announcements actually propagate
    under Gao-Rexford export rules:

    1. **customer routes** — BFS *up* from the destination along
       customer→provider edges (an AS hears about its customers' cone
       and may export those routes to anyone);
    2. **peer routes** — one lateral hop from any AS holding a customer
       route (customer routes are the only ones exported to peers);
    3. **provider routes** — bucketed BFS *down* customer edges from
       every routed AS (providers export their best route, whatever its
       class, to customers).

    Preference at every AS: customer > peer > provider, then shortest
    AS path, then lowest next-hop ASN — fully deterministic.
    """

    def __init__(self, topology: InternetTopology, *, cache_size: int = 64) -> None:
        self.topology = topology
        self.cache_size = cache_size
        self._trees: OrderedDict[int, RouteTree] = OrderedDict()
        self.trees_computed = 0

    def invalidate(self) -> None:
        self._trees.clear()

    def tree(self, dst: int) -> RouteTree:
        cached = self._trees.get(dst)
        if cached is not None:
            self._trees.move_to_end(dst)
            return cached
        tree = self._compute(dst)
        self._trees[dst] = tree
        if len(self._trees) > self.cache_size:
            self._trees.popitem(last=False)
        self.trees_computed += 1
        return tree

    def _compute(self, dst: int) -> RouteTree:
        topo = self.topology
        n = max(topo.ases)
        none = -1
        unreach = 1 << 30
        # Phase 1: customer routes, level-synchronous BFS up provider edges.
        dist_c = [unreach] * (n + 1)
        next_c = [none] * (n + 1)
        dist_c[dst] = 0
        frontier = [dst]
        while frontier:
            discovered: dict[int, int] = {}
            for v in sorted(frontier):
                for p in topo.providers_of.get(v, ()):
                    if dist_c[p] != unreach:
                        continue
                    best = discovered.get(p)
                    if best is None or v < best:
                        discovered[p] = v
            for p, via in discovered.items():
                dist_c[p] = dist_c[via] + 1
                next_c[p] = via
            frontier = list(discovered)

        # Phase 2: peer routes (one lateral hop onto a customer route).
        dist_p = [unreach] * (n + 1)
        next_p = [none] * (n + 1)
        for v in topo.ases:
            best_len = unreach
            best_peer = none
            for u in sorted(topo.peers_of.get(v, ())):
                if dist_c[u] == unreach:
                    continue
                candidate = dist_c[u] + 1
                if candidate < best_len:
                    best_len = candidate
                    best_peer = u
            if best_peer != none and dist_c[v] == unreach:
                dist_p[v] = best_len
                next_p[v] = best_peer

        # Export length of each routed AS (its preferred route so far).
        pref_class = [-1] * (n + 1)
        pref_len = [unreach] * (n + 1)
        next_hop = [none] * (n + 1)
        for v in topo.ases:
            if dist_c[v] != unreach:
                pref_class[v] = 0
                pref_len[v] = dist_c[v]
                next_hop[v] = next_c[v] if v != dst else dst
            elif dist_p[v] != unreach:
                pref_class[v] = 1
                pref_len[v] = dist_p[v]
                next_hop[v] = next_p[v]

        # Phase 3: provider routes, bucketed BFS down customer edges.
        # Buckets are candidate total lengths; unit edge weights keep the
        # scan monotone (a node finalized at length L never improves).
        buckets: dict[int, list[tuple[int, int]]] = {}
        for v in topo.ases:
            if pref_class[v] != -1:
                for c in topo.customers_of.get(v, ()):
                    if pref_class[c] != -1:
                        continue
                    buckets.setdefault(pref_len[v] + 1, []).append((c, v))
        length = 0
        max_length = 2 * (n + 2)
        while buckets and length <= max_length:
            if length not in buckets:
                length += 1
                continue
            entries = buckets.pop(length)
            newly: dict[int, int] = {}
            for c, via in sorted(entries):
                if pref_class[c] != -1:
                    continue
                best = newly.get(c)
                if best is None or via < best:
                    newly[c] = via
            for c, via in newly.items():
                pref_class[c] = 2
                pref_len[c] = length
                next_hop[c] = via
                for grandchild in topo.customers_of.get(c, ()):
                    if pref_class[grandchild] == -1:
                        buckets.setdefault(length + 1, []).append(
                            (grandchild, c)
                        )
            length += 1

        return RouteTree(
            dst=dst,
            pref_class=pref_class,
            pref_len=pref_len,
            next_hop=next_hop,
            customer_next=next_c,
        )

    # ----------------------------------------------------------- path walks

    def path_asns(self, src: int, dst: int) -> list[int]:
        """The preferred valley-free AS path from ``src`` to ``dst``."""
        if src == dst:
            return [src]
        tree = self.tree(dst)
        if tree.pref_class[src] == -1:
            raise SimulationError(
                f"no valley-free route from AS {src} to AS {dst}"
            )
        path = [src]
        cur = src
        on_descent = False
        for _ in range(2 * len(self.topology.ases) + 4):
            if cur == dst:
                return path
            if on_descent:
                # Past the up/peer phase the walk must stay on customer
                # routes (every node on a down slope holds one, since it
                # announced the route upward in the first place).
                nxt = tree.customer_next[cur]
            else:
                nxt = tree.next_hop[cur]
                # A customer-route or peer-route exit means everything
                # after this hop descends the destination's customer cone.
                on_descent = tree.pref_class[cur] in (0, 1)
            path.append(nxt)
            cur = nxt
        raise SimulationError(
            f"routing walk from AS {src} to AS {dst} did not terminate"
        )

    def path(self, src: int, dst: int) -> list[PathHop]:
        """The policy path expanded to interface-level hops."""
        asns = self.path_asns(src, dst)
        return self.hops_for(asns)

    def hops_for(self, asns: list[int]) -> list[PathHop]:
        """Interface-level hops for an AS-level path."""
        topo = self.topology
        if len(asns) == 1:
            return [PathHop(asns[0], None, None)]
        hops: list[PathHop] = []
        ingress: int | None = None
        for a, b in zip(asns, asns[1:]):
            egress = topo.interface_on.get((a, b))
            if egress is None:
                raise SimulationError(f"AS {a} and AS {b} are not adjacent")
            hops.append(PathHop(a, ingress, egress))
            ingress = topo.interface_on[(b, a)]
        hops.append(PathHop(asns[-1], ingress, None))
        return hops
