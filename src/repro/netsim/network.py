"""The forwarding engine: packets walking AS-level paths over the topology.

``Network`` binds a :class:`~repro.netsim.topology.Topology` to a
:class:`~repro.netsim.engine.Simulator`. Sending a packet expands its AS
path into a *trail* of directed-channel traversals with a border router (or
the destination host) at the end of each; the trail is then walked with one
simulator event per segment. TTL is decremented at every border router,
and routers answer TTL expiry with rate-limited, slow-path ICMP
time-exceeded messages — the behaviour that makes real traceroute both
lossy and unrepresentative of data-packet latency (§II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import SimulationError
from repro.common.rng import derive_buffered_rng
from repro.netsim.conduit import DirectedChannel
from repro.netsim.endhost import Host
from repro.netsim.engine import Simulator
from repro.netsim.packet import Address, IcmpType, Packet, Protocol
from repro.netsim.topology import BorderRouter, InterfaceId, PathHop, Topology

DropCallback = Callable[[Packet, str, float], None]


@dataclass
class _Segment:
    """One channel traversal; ``router`` set when the segment ends at one."""

    channel: DirectedChannel
    router: BorderRouter | None = None
    host: Host | None = None


@dataclass
class NetworkStats:
    """Aggregate counters for a run."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    ttl_expiries: int = 0
    icmp_generated: int = 0
    drops_by_reason: dict[str, int] = field(default_factory=dict)

    def record_drop(self, reason: str) -> None:
        self.packets_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1


class Network:
    """Packet forwarding over a topology, driven by the event engine."""

    def __init__(self, topology: Topology, simulator: Simulator, *, seed: int = 0) -> None:
        self.topology = topology
        self.simulator = simulator
        self.hosts: dict[Address, Host] = {}
        self.stats = NetworkStats()
        self.on_drop: DropCallback | None = None
        # This stream only ever draws slow-path jitter normals, so the
        # buffered façade serves it from blocks (sequence-identical).
        self._rng = derive_buffered_rng(seed, "network")
        # Default-route trails are pure functions of (src, dst) over a
        # static topology; memoize them. Invalidated when hosts appear.
        self._trail_cache: dict[tuple[Address, Address], list[_Segment]] = {}

    # ------------------------------------------------------------- hosts

    def add_host(self, host: Host) -> Host:
        """Register ``host`` and attach it to this network."""
        if host.address in self.hosts:
            raise SimulationError(f"duplicate host address {host.address}")
        if host.address.asn not in self.topology.ases:
            raise SimulationError(f"host AS {host.address.asn} not in topology")
        self.hosts[host.address] = host
        host.attach(self)
        self.invalidate_routes()
        return host

    def make_host(self, asn: int, name: str, *, attachment: str = "interior", **kwargs) -> Host:
        """Create, register, and return a host in AS ``asn``."""
        host = Host(Address(asn, name), attachment=attachment, **kwargs)
        return self.add_host(host)

    # ------------------------------------------------------------ sending

    def invalidate_routes(self) -> None:
        """Flush memoized trails (topology or host set changed)."""
        self._trail_cache.clear()

    def send(self, packet: Packet, *, path: list[PathHop] | None = None) -> None:
        """Transmit ``packet`` now, along ``path`` or the shortest AS path."""
        self.stats.packets_sent += 1
        packet.send_time = self.simulator.now
        if path is None:
            key = (packet.src, packet.dst)
            trail = self._trail_cache.get(key)
            if trail is None:
                try:
                    trail = self._build_trail(packet, None)
                except SimulationError:
                    self._drop(packet, "unroutable")
                    return
                self._trail_cache[key] = trail
        else:
            try:
                trail = self._build_trail(packet, path)
            except SimulationError:
                self._drop(packet, "unroutable")
                return
        self._advance(packet, trail, 0, self.simulator.now)

    def _build_trail(self, packet: Packet, path: list[PathHop] | None) -> list[_Segment]:
        dst_host = self.hosts.get(packet.dst)
        if path is None:
            path = self.topology.shortest_path(packet.src.asn, packet.dst.asn)
        if not path or path[0].asn != packet.src.asn or path[-1].asn != packet.dst.asn:
            raise SimulationError("path does not join packet source and destination")

        src_host = self.hosts.get(packet.src)
        src_attachment = src_host.attachment if src_host else self._router_attachment(packet.src)
        dst_attachment = dst_host.attachment if dst_host else "interior"

        segments: list[_Segment] = []
        if len(path) == 1:
            asys = self.topology.autonomous_system(path[0].asn)
            channel = asys.internal_channel(src_attachment, dst_attachment)
            segments.append(_Segment(channel, host=dst_host))
            return segments

        # Source AS: interior (or attachment) to egress interface.
        first = path[0]
        if first.egress is None:
            raise SimulationError("first hop has no egress interface")
        asys = self.topology.autonomous_system(first.asn)
        egress_router = asys.router(first.egress)
        segments.append(
            _Segment(
                asys.internal_channel(src_attachment, f"if{first.egress}"),
                router=egress_router,
            )
        )

        for hop, nxt in zip(path, path[1:]):
            # Inter-domain link from hop.egress to nxt.ingress.
            if hop.egress is None or nxt.ingress is None:
                raise SimulationError("missing interface on transit hop")
            src_if = InterfaceId(hop.asn, hop.egress)
            dst_if = InterfaceId(nxt.asn, nxt.ingress)
            channel = self.topology.channel_between(src_if, dst_if)
            next_as = self.topology.autonomous_system(nxt.asn)
            segments.append(_Segment(channel, router=next_as.router(nxt.ingress)))
            # Within the next AS: ingress to egress (transit) or to host (last).
            if nxt.egress is not None:
                segments.append(
                    _Segment(
                        next_as.internal_channel(f"if{nxt.ingress}", f"if{nxt.egress}"),
                        router=next_as.router(nxt.egress),
                    )
                )
            else:
                segments.append(
                    _Segment(
                        next_as.internal_channel(f"if{nxt.ingress}", dst_attachment),
                        host=dst_host,
                    )
                )
        return segments

    def _router_attachment(self, address: Address) -> str:
        """Attachment point for router-originated packets (``brN`` hosts)."""
        if address.host.startswith("br"):
            return f"if{address.host[2:]}"
        return "interior"

    def _advance(self, packet: Packet, trail: list[_Segment], index: int, t: float) -> None:
        if index >= len(trail):
            self._deliver(packet, t)
            return
        segment = trail[index]
        outcome = segment.channel.transit(packet, t)
        if not outcome.delivered:
            self._drop(packet, outcome.drop_reason or "loss")
            return
        arrival = t + outcome.delay
        # Hop events are never cancelled: use the handle-free fast path.
        self.simulator.post(arrival, self._arrive, packet, trail, index, arrival)

    def _arrive(self, packet: Packet, trail: list[_Segment], index: int, t: float) -> None:
        segment = trail[index]
        if segment.router is not None:
            packet.ttl -= 1
            if packet.ttl <= 0:
                self.stats.ttl_expiries += 1
                self._handle_ttl_expiry(packet, segment.router, t)
                return
        self._advance(packet, trail, index + 1, t)

    def _handle_ttl_expiry(self, packet: Packet, router: BorderRouter, t: float) -> None:
        """Drop the packet; maybe emit a slow-path ICMP time-exceeded."""
        self._drop(packet, "ttl_expired")
        if packet.protocol is Protocol.ICMP and packet.icmp_type in (
            IcmpType.TIME_EXCEEDED,
            IcmpType.DEST_UNREACHABLE,
        ):
            return  # never answer ICMP errors with ICMP errors
        if not router.allow_icmp_generation(t):
            return
        self.stats.icmp_generated += 1
        reply = Packet(
            src=router.address,
            dst=packet.src,
            protocol=Protocol.ICMP,
            size=56,
            seq=packet.seq,
            icmp_type=IcmpType.TIME_EXCEEDED,
            payload={
                "original_protocol": packet.protocol.name,
                "original_seq": packet.seq,
                "original_dst_port": packet.dst_port,
            },
        )
        # Control-plane punt: routers generate ICMP on the slow path.
        delay = router.slow_path_delay
        if router.slow_path_jitter:
            delay += abs(float(self._rng.normal(0.0, router.slow_path_jitter)))
        self.simulator.post(self.simulator.now + delay, self.send, reply)

    def _deliver(self, packet: Packet, t: float) -> None:
        host = self.hosts.get(packet.dst)
        if host is None:
            self._drop(packet, "no_such_host")
            return
        self.stats.packets_delivered += 1
        host.deliver(packet, t)

    def _drop(self, packet: Packet, reason: str) -> None:
        self.stats.record_drop(reason)
        obs = self.simulator.obs
        if obs is not None:
            obs.metrics.counter("net_drops_total", reason=reason).inc()
        if self.on_drop is not None:
            self.on_drop(packet, reason, self.simulator.now)
