"""Packets, protocols, and addressing.

Protocols mirror the paper's motivation experiment (§II): UDP, TCP (no
special flags, random sequence numbers), ICMP echo, and custom raw IP with
the unassigned protocol number 201. All probe packets in an experiment share
the same total layer-3 length, as the paper's measurement applications do.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Any

_PACKET_COUNTER = count(1)

#: Total layer-3 packet length used by the paper-style probes, in bytes.
DEFAULT_PROBE_SIZE = 64


class Protocol(enum.Enum):
    """Layer-4 protocol of a packet, as seen by forwarding devices."""

    UDP = 17
    TCP = 6
    ICMP = 1
    RAW_IP = 201  # custom IP packets with an unassigned protocol number

    @property
    def wire_number(self) -> int:
        """IP protocol number carried in the layer-3 header."""
        return self.value


class IcmpType(enum.Enum):
    """The ICMP message types the simulator understands."""

    ECHO_REQUEST = 8
    ECHO_REPLY = 0
    TIME_EXCEEDED = 11
    DEST_UNREACHABLE = 3


@dataclass(frozen=True, order=True)
class Address:
    """A network endpoint: AS number plus a host identifier within that AS."""

    asn: int
    host: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.asn}-{self.host}"


@dataclass
class Packet:
    """A simulated layer-3 packet.

    ``seq`` doubles as the TCP/UDP sequence identifier and the ICMP echo
    identifier. ``flow_key`` is what per-flow ECMP hashes; for ICMP and raw
    IP it omits ports (they have none).
    """

    src: Address
    dst: Address
    protocol: Protocol
    size: int = DEFAULT_PROBE_SIZE
    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ttl: int = 64
    payload: Any = None
    icmp_type: IcmpType | None = None
    send_time: float | None = None
    packet_id: int = field(default_factory=lambda: next(_PACKET_COUNTER))
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
        if self.protocol is Protocol.ICMP and self.icmp_type is None:
            self.icmp_type = IcmpType.ECHO_REQUEST

    def flow_key(self) -> tuple:
        """The tuple per-flow load balancers hash."""
        if self.protocol in (Protocol.UDP, Protocol.TCP):
            return (
                self.src,
                self.dst,
                self.protocol.wire_number,
                self.src_port,
                self.dst_port,
            )
        return (self.src, self.dst, self.protocol.wire_number)

    def reply_to(self, *, size: int | None = None, payload: Any = None) -> "Packet":
        """Build a response packet with src/dst (and ports) swapped."""
        icmp_type = None
        if self.protocol is Protocol.ICMP:
            icmp_type = IcmpType.ECHO_REPLY
        return Packet(
            src=self.dst,
            dst=self.src,
            protocol=self.protocol,
            size=self.size if size is None else size,
            src_port=self.dst_port,
            dst_port=self.src_port,
            seq=self.seq,
            payload=payload,
            icmp_type=icmp_type,
        )
