"""Route churn: piecewise-constant base-delay shifts.

Figure 1 of the paper shows sudden ~5 ms RTT steps that the authors
attribute to route changes; Figure 2 shows a multi-hour delay increase that
affects UDP and raw IP but not ICMP or TCP. A :class:`RouteChurnProcess`
reproduces both: it holds a schedule of delay shifts, each optionally
restricted to a subset of protocols (modelling churn on only some of the
parallel routes a load balancer uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import derive_rng
from repro.netsim.packet import Protocol


@dataclass(frozen=True)
class RouteShift:
    """A base-delay change active during ``[start, end)``.

    ``protocols`` of ``None`` means the shift applies to every protocol.
    """

    start: float
    end: float
    delta: float
    protocols: frozenset[Protocol] | None = None

    def applies(self, t: float, protocol: Protocol) -> bool:
        if not self.start <= t < self.end:
            return False
        return self.protocols is None or protocol in self.protocols


class RouteChurnProcess:
    """A schedule of :class:`RouteShift` episodes.

    Shifts may be placed explicitly (scenario scripting) or generated
    randomly (Poisson arrivals, exponential holding times).
    """

    def __init__(self, shifts: list[RouteShift] | None = None) -> None:
        self.shifts: list[RouteShift] = list(shifts or [])

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        label: str = "churn",
        horizon: float = 86400.0,
        rate: float = 1.0 / 14400.0,
        mean_duration: float = 1800.0,
        delta_range: tuple[float, float] = (2e-3, 6e-3),
        protocols: frozenset[Protocol] | None = None,
    ) -> "RouteChurnProcess":
        """Generate shifts as a Poisson process over ``horizon`` seconds."""
        rng = derive_rng(seed, label)
        shifts: list[RouteShift] = []
        time = 0.0
        low, high = delta_range
        while True:
            time += float(rng.exponential(1.0 / rate)) if rate > 0 else horizon
            if time >= horizon:
                break
            duration = float(rng.exponential(mean_duration))
            delta = float(rng.uniform(low, high))
            shifts.append(RouteShift(time, time + duration, delta, protocols))
        return cls(shifts)

    def add(self, shift: RouteShift) -> None:
        self.shifts.append(shift)

    def offset(self, t: float, protocol: Protocol) -> float:
        """Total delay shift in effect at ``t`` for ``protocol``."""
        return sum(s.delta for s in self.shifts if s.applies(t, protocol))


def no_churn() -> RouteChurnProcess:
    """A churn process with no shifts."""
    return RouteChurnProcess([])


def attach_churn_ensemble(
    topology,
    *,
    seed: int,
    fraction: float = 0.05,
    horizon: float = 86400.0,
    rate: float = 1.0 / 7200.0,
    mean_duration: float = 1200.0,
    delta_range: tuple[float, float] = (2e-3, 6e-3),
    label: str = "wanchurn",
) -> int:
    """Attach random churn to a seeded fraction of inter-domain links.

    ``topology`` must expose a deterministic ``links()`` iterator (see
    :class:`repro.netsim.internet.InternetTopology`). Each selected link
    gets independent forward/reverse churn schedules derived from
    ``(seed, label, a, b, direction)``, so the ensemble is reproducible
    and insensitive to selection order changes elsewhere. Returns the
    number of links churned.
    """
    from repro.common.rng import derive_seed

    selector = derive_rng(seed, label, "select")
    churned = 0
    for a, b, link in topology.links():
        if float(selector.random()) >= fraction:
            continue
        for direction, channel in (("fwd", link.forward), ("rev", link.reverse)):
            channel.churn = RouteChurnProcess.random(
                seed=derive_seed(seed, label, a, b, direction),
                horizon=horizon,
                rate=rate,
                mean_duration=mean_duration,
                delta_range=delta_range,
            )
        churned += 1
    return churned
