"""AS-level topology: autonomous systems, border routers, inter-domain links.

The Debuglet deployment model (§IV-B) co-locates executors with border
routers, identified by ``<AS number, inter-domain interface>`` pairs. This
module provides that addressing scheme: each :class:`AutonomousSystem` owns
numbered interfaces, each interface is one end of exactly one
:class:`~repro.netsim.conduit.Link` to a neighboring AS, and paths are
sequences of :class:`PathHop` entries naming the ingress and egress
interface of every on-path AS — the same granularity SCION exposes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, SimulationError
from repro.netsim.conduit import DirectedChannel, Link
from repro.netsim.congestion import CongestionProcess
from repro.netsim.packet import Address
from repro.netsim.treatment import TreatmentProfile


@dataclass(frozen=True, order=True)
class InterfaceId:
    """An inter-domain interface of one AS: ``<ASN, interface number>``."""

    asn: int
    interface: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.asn}#{self.interface}"


@dataclass(frozen=True)
class PathHop:
    """One AS on a forwarding path with its ingress/egress interfaces.

    ``ingress`` is ``None`` for the first hop (traffic originates inside
    the AS); ``egress`` is ``None`` for the last hop (traffic terminates
    inside the AS).
    """

    asn: int
    ingress: int | None
    egress: int | None


class BorderRouter:
    """The forwarding device at one inter-domain interface.

    Holds the knobs the traceroute baseline needs: whether the router
    answers TTL-exceeded at all, its ICMP-generation rate limit, and its
    slow-path processing delay (control-plane punt).
    """

    def __init__(
        self,
        interface_id: InterfaceId,
        *,
        ttl_exceeded_enabled: bool = True,
        icmp_rate_limit: float = 2.0,
        slow_path_delay: float = 2e-3,
        slow_path_jitter: float = 1.5e-3,
    ) -> None:
        self.interface_id = interface_id
        self.ttl_exceeded_enabled = ttl_exceeded_enabled
        self.icmp_rate_limit = icmp_rate_limit
        self.slow_path_delay = slow_path_delay
        self.slow_path_jitter = slow_path_jitter
        self._icmp_tokens = 1.0
        self._icmp_last_refill = 0.0

    @property
    def address(self) -> Address:
        """The router's own address (source of its ICMP messages)."""
        return Address(self.interface_id.asn, f"br{self.interface_id.interface}")

    def allow_icmp_generation(self, t: float) -> bool:
        """Token-bucket rate limiter for router-generated ICMP."""
        if not self.ttl_exceeded_enabled:
            return False
        if self.icmp_rate_limit <= 0:
            return False
        elapsed = t - self._icmp_last_refill
        burst = max(1.0, self.icmp_rate_limit)
        self._icmp_tokens = min(
            burst, self._icmp_tokens + elapsed * self.icmp_rate_limit
        )
        self._icmp_last_refill = t
        if self._icmp_tokens >= 1.0:
            self._icmp_tokens -= 1.0
            return True
        return False


class AutonomousSystem:
    """An AS: a set of border interfaces plus an internal network model.

    The interior is modelled as directed channels between interface pairs
    (and between interior hosts and interfaces), created on demand from the
    AS-level defaults. That is intentionally coarse: Debuglet treats AS
    interiors as opaque; only border-to-border behaviour matters for
    inter-domain fault localization.
    """

    def __init__(
        self,
        asn: int,
        *,
        name: str = "",
        internal_delay: float = 1e-3,
        internal_jitter: float = 0.05e-3,
        treatment: TreatmentProfile | None = None,
        congestion: CongestionProcess | None = None,
        seed: int = 0,
    ) -> None:
        if asn <= 0:
            raise ConfigurationError(f"ASN must be positive, got {asn}")
        self.asn = asn
        self.name = name or f"AS{asn}"
        self.internal_delay = internal_delay
        self.internal_jitter = internal_jitter
        self.treatment = treatment or TreatmentProfile.uniform()
        self.congestion = congestion
        self.seed = seed
        self.routers: dict[int, BorderRouter] = {}
        self._internal_channels: dict[tuple[str, str], DirectedChannel] = {}

    def add_interface(self, interface: int, **router_kwargs) -> BorderRouter:
        """Register inter-domain interface ``interface`` on this AS."""
        if interface in self.routers:
            raise ConfigurationError(
                f"interface {interface} already exists on AS {self.asn}"
            )
        router = BorderRouter(InterfaceId(self.asn, interface), **router_kwargs)
        self.routers[interface] = router
        return router

    def router(self, interface: int) -> BorderRouter:
        if interface not in self.routers:
            raise SimulationError(f"AS {self.asn} has no interface {interface}")
        return self.routers[interface]

    def internal_channel(self, src: str, dst: str) -> DirectedChannel:
        """The interior channel between two attachment points.

        Attachment points are strings: ``"if<N>"`` for border interfaces or
        a host identifier for interior hosts. Channels are memoized so the
        Lindley queue state persists across packets.
        """
        key = (src, dst)
        channel = self._internal_channels.get(key)
        if channel is None:
            channel = DirectedChannel(
                f"AS{self.asn}/{src}->{dst}",
                base_delay=self.internal_delay if src != dst else 0.0,
                jitter_std=self.internal_jitter,
                treatment=self.treatment,
                congestion=self.congestion,
                seed=self.seed,
            )
            self._internal_channels[key] = channel
        return channel

    def interior_attachment(self) -> str:
        """The attachment-point label for hosts in the AS interior."""
        return "interior"


class Topology:
    """The inter-domain graph: ASes joined by links between interfaces."""

    def __init__(self) -> None:
        self.ases: dict[int, AutonomousSystem] = {}
        # Keyed by the interface on either end; the string records which
        # directed channel carries traffic *leaving* that interface.
        self._links: dict[InterfaceId, tuple[Link, InterfaceId, str]] = {}

    def add_as(self, autonomous_system: AutonomousSystem) -> AutonomousSystem:
        if autonomous_system.asn in self.ases:
            raise ConfigurationError(f"AS {autonomous_system.asn} already exists")
        self.ases[autonomous_system.asn] = autonomous_system
        return autonomous_system

    def make_as(self, asn: int, **kwargs) -> AutonomousSystem:
        """Create, register, and return a new AS."""
        return self.add_as(AutonomousSystem(asn, **kwargs))

    def autonomous_system(self, asn: int) -> AutonomousSystem:
        if asn not in self.ases:
            raise SimulationError(f"unknown AS {asn}")
        return self.ases[asn]

    def connect(
        self,
        asn_a: int,
        interface_a: int,
        asn_b: int,
        interface_b: int,
        link: Link,
    ) -> Link:
        """Join two AS interfaces with ``link``.

        ``link.forward`` carries a→b traffic, ``link.reverse`` b→a. Each
        interface is created on its AS if it does not exist yet.
        """
        as_a = self.autonomous_system(asn_a)
        as_b = self.autonomous_system(asn_b)
        if interface_a not in as_a.routers:
            as_a.add_interface(interface_a)
        if interface_b not in as_b.routers:
            as_b.add_interface(interface_b)
        ifid_a = InterfaceId(asn_a, interface_a)
        ifid_b = InterfaceId(asn_b, interface_b)
        for ifid in (ifid_a, ifid_b):
            if ifid in self._links:
                raise ConfigurationError(f"interface {ifid} is already linked")
        self._links[ifid_a] = (link, ifid_b, "forward")
        self._links[ifid_b] = (link, ifid_a, "reverse")
        return link

    def link_at(self, ifid: InterfaceId) -> tuple[Link, InterfaceId]:
        """The link attached at ``ifid`` and the interface at the far end."""
        if ifid not in self._links:
            raise SimulationError(f"no link at interface {ifid}")
        link, peer, _ = self._links[ifid]
        return link, peer

    def channel_between(self, src: InterfaceId, dst: InterfaceId) -> DirectedChannel:
        """The directed channel carrying traffic from ``src`` to ``dst``."""
        if src not in self._links:
            raise SimulationError(f"no link at interface {src}")
        link, peer, direction = self._links[src]
        if peer != dst:
            raise SimulationError(f"{src} is linked to {peer}, not {dst}")
        return link.channel(direction)

    def neighbors(self, asn: int) -> list[tuple[int, int, int]]:
        """Adjacent ASes as ``(egress_interface, peer_asn, peer_interface)``."""
        result = []
        for interface in sorted(self.autonomous_system(asn).routers):
            ifid = InterfaceId(asn, interface)
            if ifid in self._links:
                _, peer, _ = self._links[ifid]
                result.append((interface, peer.asn, peer.interface))
        return result

    def shortest_path(self, src_asn: int, dst_asn: int) -> list[PathHop]:
        """BFS over the AS graph, returning interface-level hops.

        Deterministic: neighbors are explored in sorted interface order, so
        equal-length paths resolve identically across runs.
        """
        if src_asn == dst_asn:
            return [PathHop(src_asn, None, None)]
        # BFS storing the (egress, peer, peer_ingress) trail.
        visited = {src_asn}
        queue: deque[tuple[int, list[tuple[int, int, int, int]]]] = deque()
        queue.append((src_asn, []))
        while queue:
            asn, trail = queue.popleft()
            for egress, peer_asn, peer_ingress in self.neighbors(asn):
                if peer_asn in visited:
                    continue
                new_trail = trail + [(asn, egress, peer_asn, peer_ingress)]
                if peer_asn == dst_asn:
                    return _trail_to_hops(src_asn, dst_asn, new_trail)
                visited.add(peer_asn)
                queue.append((peer_asn, new_trail))
        raise SimulationError(f"no path from AS {src_asn} to AS {dst_asn}")

    def interface_pairs_on_path(self, path: list[PathHop]) -> list[tuple[InterfaceId, InterfaceId]]:
        """The inter-domain (egress, ingress) interface pairs along ``path``."""
        pairs = []
        for hop, nxt in zip(path, path[1:]):
            if hop.egress is None or nxt.ingress is None:
                raise SimulationError("interior hop in the middle of a path")
            pairs.append(
                (InterfaceId(hop.asn, hop.egress), InterfaceId(nxt.asn, nxt.ingress))
            )
        return pairs


def _trail_to_hops(
    src_asn: int, dst_asn: int, trail: list[tuple[int, int, int, int]]
) -> list[PathHop]:
    hops: list[PathHop] = []
    ingress: int | None = None
    for asn, egress, peer_asn, peer_ingress in trail:
        hops.append(PathHop(asn, ingress, egress))
        ingress = peer_ingress
    hops.append(PathHop(dst_asn, ingress, None))
    return hops
