"""Measurement traces: per-probe records and summary statistics.

A :class:`MeasurementTrace` is what every probing tool in this repository
produces — the paper's Table I cells (RTT mean/std, loss per-mille) are
direct summaries of one trace each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netsim.packet import Protocol


@dataclass
class ProbeRecord:
    """One probe's fate. ``rtt`` is ``None`` when the probe was lost."""

    seq: int
    send_time: float
    rtt: float | None = None
    receive_time: float | None = None

    @property
    def lost(self) -> bool:
        return self.rtt is None


@dataclass
class MeasurementTrace:
    """An ordered collection of probe records for one (pair, protocol)."""

    protocol: Protocol
    label: str = ""
    records: list[ProbeRecord] = field(default_factory=list)

    def add(self, record: ProbeRecord) -> None:
        self.records.append(record)

    @classmethod
    def from_arrays(
        cls,
        protocol: Protocol,
        send_times: np.ndarray,
        rtts: np.ndarray,
        *,
        label: str = "",
    ) -> "MeasurementTrace":
        """Build a trace from vectorized results (``NaN`` rtt = lost).

        Probes are numbered 1..N in array order, matching what a
        :class:`~repro.netsim.traffic.ProbeTrain` would have produced for
        the same schedule.
        """
        records = [
            ProbeRecord(
                seq=index + 1,
                send_time=float(send),
                rtt=None if lost else float(rtt),
                receive_time=None if lost else float(send + rtt),
            )
            for index, (send, rtt, lost) in enumerate(
                zip(send_times, rtts, np.isnan(rtts))
            )
        ]
        return cls(protocol, label=label, records=records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def sent(self) -> int:
        return len(self.records)

    @property
    def lost(self) -> int:
        return sum(1 for record in self.records if record.lost)

    @property
    def received(self) -> int:
        return self.sent - self.lost

    def loss_rate(self) -> float:
        """Fraction of probes lost, in [0, 1]."""
        if not self.records:
            return 0.0
        return self.lost / self.sent

    def loss_per_mille(self) -> float:
        """Loss in the paper's per-thousandths (‰) unit."""
        return self.loss_rate() * 1000.0

    def rtts(self) -> np.ndarray:
        """Round-trip times of received probes, in seconds."""
        return np.array(
            [record.rtt for record in self.records if record.rtt is not None]
        )

    def rtts_ms(self) -> np.ndarray:
        return self.rtts() * 1e3

    def mean_rtt_ms(self) -> float:
        values = self.rtts_ms()
        return float(values.mean()) if values.size else float("nan")

    def std_rtt_ms(self) -> float:
        values = self.rtts_ms()
        return float(values.std(ddof=1)) if values.size > 1 else 0.0

    def percentile_ms(self, q: float) -> float:
        values = self.rtts_ms()
        return float(np.percentile(values, q)) if values.size else float("nan")

    def time_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(send_time, rtt_ms) arrays for received probes — Fig 1–3 data."""
        times = [r.send_time for r in self.records if r.rtt is not None]
        rtts = [r.rtt * 1e3 for r in self.records if r.rtt is not None]
        return np.array(times), np.array(rtts)

    def summary(self) -> dict:
        """The Table I cell for this trace."""
        return {
            "protocol": self.protocol.name,
            "label": self.label,
            "sent": self.sent,
            "received": self.received,
            "mean_ms": self.mean_rtt_ms(),
            "std_ms": self.std_rtt_ms(),
            "loss_per_mille": self.loss_per_mille(),
        }
