"""Probe traffic generators.

:class:`ProbeTrain` reproduces the paper's measurement clients: a steady
train of fixed-size probes of one protocol toward an echo responder, with
replies matched by sequence number. :class:`MultiProtocolProber` runs the
§II experiment — one train per protocol between the same host pair, with
identical layer-3 packet lengths. :class:`OneWayProbeTrain` supports
Debuglet's unidirectional measurements (§III), where the receiver records
arrival times instead of echoing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.netsim.endhost import Host, Socket
from repro.netsim.network import Network
from repro.netsim.packet import Address, IcmpType, Packet, Protocol
from repro.netsim.topology import PathHop
from repro.netsim.trace import MeasurementTrace, ProbeRecord

#: Probe size used when a train does not specify one (layer-3 total bytes).
DEFAULT_PROBE_SIZE = 64


class ProbeTrain:
    """Send ``count`` probes at ``interval`` seconds and match echo replies.

    The destination host's stack must echo this protocol (see
    ``Host.echo_protocols``). ``finalize()`` marks probes that never got a
    reply within ``timeout`` as lost and returns the trace.
    """

    def __init__(
        self,
        client: Host,
        server: Address,
        protocol: Protocol,
        *,
        count: int,
        interval: float = 1.0,
        size: int = DEFAULT_PROBE_SIZE,
        start: float | None = None,
        timeout: float = 5.0,
        src_port: int = 0,
        dst_port: int = 7,
        path: list[PathHop] | None = None,
        label: str = "",
    ) -> None:
        if count <= 0:
            raise ConfigurationError("probe count must be positive")
        if interval <= 0:
            raise ConfigurationError("probe interval must be positive")
        self.client = client
        self.server = server
        self.protocol = protocol
        self.count = count
        self.interval = interval
        self.size = size
        self.start = client.network.simulator.now if start is None else start
        self.timeout = timeout
        self.path = path
        self.trace = MeasurementTrace(protocol, label=label)
        self._pending: dict[int, ProbeRecord] = {}
        self._next_seq = 1

        if protocol in (Protocol.UDP, Protocol.TCP):
            if src_port <= 0:
                raise ConfigurationError("UDP/TCP probe train needs src_port")
            self._socket = client.open_socket(protocol, src_port)
            self._dst_port = dst_port
        else:
            self._socket = client.open_socket(protocol, 0)
            self._dst_port = 0
        self._socket.on_receive = self._on_reply
        self._schedule_all()

    @property
    def network(self) -> Network:
        return self.client.network

    def _schedule_all(self) -> None:
        post = self.network.simulator.post
        for i in range(self.count):
            post(self.start + i * self.interval, self._send_one)

    def _send_one(self) -> None:
        seq = self._next_seq
        self._next_seq += 1
        record = ProbeRecord(seq=seq, send_time=self.network.simulator.now)
        self._pending[seq] = record
        self.trace.add(record)
        icmp_type = IcmpType.ECHO_REQUEST if self.protocol is Protocol.ICMP else None
        self._socket.send(
            self.server,
            dst_port=self._dst_port,
            size=self.size,
            seq=seq,
            path=self.path,
            icmp_type=icmp_type,
        )

    def _on_reply(self, packet: Packet, t: float) -> None:
        if packet.protocol is Protocol.ICMP and packet.icmp_type is not IcmpType.ECHO_REPLY:
            return  # e.g. stray time-exceeded messages
        record = self._pending.pop(packet.seq, None)
        if record is None:
            return  # duplicate or late reply
        if t - record.send_time > self.timeout:
            return  # reply after timeout counts as loss
        record.receive_time = t
        record.rtt = t - record.send_time

    def finalize(self) -> MeasurementTrace:
        """Mark unanswered probes as lost, release the socket, and return
        the trace."""
        self._pending.clear()
        self._socket.close()
        return self.trace


class MultiProtocolProber:
    """The §II experiment: concurrent probe trains for all four protocols.

    All trains share the destination, probe size, and schedule, so any
    performance difference is attributable to protocol treatment alone —
    exactly the paper's experimental control.
    """

    PROTOCOLS = (Protocol.UDP, Protocol.TCP, Protocol.ICMP, Protocol.RAW_IP)

    def __init__(
        self,
        client: Host,
        server: Address,
        *,
        count: int,
        interval: float = 1.0,
        size: int = DEFAULT_PROBE_SIZE,
        start: float | None = None,
        base_port: int = 40000,
        path: list[PathHop] | None = None,
        label: str = "",
        stagger: float = 0.01,
    ) -> None:
        if start is None:
            start = client.network.simulator.now
        self.trains: dict[Protocol, ProbeTrain] = {}
        for index, protocol in enumerate(self.PROTOCOLS):
            self.trains[protocol] = ProbeTrain(
                client,
                server,
                protocol,
                count=count,
                interval=interval,
                size=size,
                start=start + index * stagger,
                src_port=base_port + index,
                path=path,
                label=f"{label}/{protocol.name}" if label else protocol.name,
            )

    def finalize(self) -> dict[Protocol, MeasurementTrace]:
        return {proto: train.finalize() for proto, train in self.trains.items()}


class OneWayProbeTrain:
    """Unidirectional probes: sender timestamps, receiver records arrivals.

    Requires the receiver to bind the probe port (no echo involved), which
    is what a Debuglet *server* application does. With the simulator's
    global clock, one-way delay is exact — standing in for the synchronized
    clocks the paper assumes between executors.
    """

    def __init__(
        self,
        client: Host,
        server: Host,
        protocol: Protocol,
        *,
        count: int,
        interval: float = 1.0,
        size: int = DEFAULT_PROBE_SIZE,
        start: float | None = None,
        src_port: int = 41000,
        dst_port: int = 42000,
        path: list[PathHop] | None = None,
        label: str = "",
    ) -> None:
        if protocol in (Protocol.UDP, Protocol.TCP):
            self._client_socket = client.open_socket(protocol, src_port)
            self._server_socket = server.open_socket(protocol, dst_port)
            self._dst_port = dst_port
        else:
            self._client_socket = client.open_socket(protocol, 0)
            self._server_socket = server.open_socket(protocol, 0)
            self._dst_port = 0
        self.client = client
        self.server = server
        self.protocol = protocol
        self.count = count
        self.interval = interval
        self.size = size
        self.start = client.network.simulator.now if start is None else start
        self.path = path
        self.trace = MeasurementTrace(protocol, label=label)
        self._records: dict[int, ProbeRecord] = {}
        self._server_socket.on_receive = self._on_arrival
        for i in range(count):
            client.network.simulator.post(
                self.start + i * interval, self._send_one, i + 1
            )

    def _send_one(self, seq: int) -> None:
        record = ProbeRecord(seq=seq, send_time=self.client.network.simulator.now)
        self._records[seq] = record
        self.trace.add(record)
        self._client_socket.send(
            self.server.address,
            dst_port=self._dst_port,
            size=self.size,
            seq=seq,
            path=self.path,
        )

    def _on_arrival(self, packet: Packet, t: float) -> None:
        record = self._records.pop(packet.seq, None)
        if record is None:
            return
        record.receive_time = t
        record.rtt = t - record.send_time  # one-way delay stored in rtt slot

    def finalize(self) -> MeasurementTrace:
        self._records.clear()
        return self.trace


@dataclass
class PoissonTraffic:
    """Background cross-traffic between two hosts (for queueing tests)."""

    client_socket: Socket
    server: Address
    rate: float
    size: int = 1200
    dst_port: int = 9
    duration: float = 10.0
    start: float = 0.0
    seed: int = 0
    sent: int = field(default=0, init=False)

    def launch(self) -> None:
        from repro.common.rng import derive_buffered_rng

        # Single-distribution stream: the buffered façade serves it from
        # blocks while preserving the exact draw sequence.
        rng = derive_buffered_rng(
            self.seed, "poisson", self.client_socket.host.address.host
        )
        t = self.start
        network = self.client_socket.host.network
        while True:
            t += float(rng.exponential(1.0 / self.rate))
            if t >= self.start + self.duration:
                break
            network.simulator.post(t, self._send_one)

    def _send_one(self) -> None:
        self.sent += 1
        self.client_socket.send(self.server, dst_port=self.dst_port, size=self.size)


class RoundRobinProber:
    """The paper's exact §II client: one probe per second *total*,
    rotating between the four protocols.

    ``count`` is the number of rounds; each round sends one probe of each
    protocol, spaced ``interval`` apart, so a full rotation takes
    ``4 * interval`` (the paper's "period of one second" per protocol
    slot). Compared with :class:`MultiProtocolProber` (concurrent trains),
    this trades 4x fewer samples per protocol for zero cross-protocol
    self-interference.
    """

    PROTOCOLS = (Protocol.UDP, Protocol.TCP, Protocol.ICMP, Protocol.RAW_IP)

    def __init__(
        self,
        client: Host,
        server: Address,
        *,
        rounds: int,
        interval: float = 1.0,
        size: int = DEFAULT_PROBE_SIZE,
        start: float | None = None,
        base_port: int = 43000,
        path: list[PathHop] | None = None,
        label: str = "",
    ) -> None:
        if rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        self.trains: dict[Protocol, ProbeTrain] = {}
        if start is None:
            start = client.network.simulator.now
        for index, protocol in enumerate(self.PROTOCOLS):
            self.trains[protocol] = ProbeTrain(
                client,
                server,
                protocol,
                count=rounds,
                interval=len(self.PROTOCOLS) * interval,
                size=size,
                start=start + index * interval,
                src_port=base_port + index,
                path=path,
                label=f"{label}/{protocol.name}" if label else protocol.name,
            )

    def finalize(self) -> dict[Protocol, MeasurementTrace]:
        return {proto: train.finalize() for proto, train in self.trains.items()}


class TrafficMatrix:
    """A gravity-model background traffic matrix over an Internet topology.

    Demand endpoints are drawn with probability proportional to AS degree
    (the gravity model: big transit providers source and sink the most
    traffic), each demand gets an exponential intensity, and every demand
    is routed over the topology's Gao-Rexford policy path. The per-channel
    load accumulated that way is converted into a base utilization and
    installed as each loaded channel's :class:`CongestionProcess` by
    :meth:`apply` — after which probes crossing hot links really do see
    queueing delay and, past the drop threshold, congestion loss.

    Deterministic: demands, routes, and the installed congestion processes
    are pure functions of ``(topology, seed, parameters)``.
    """

    def __init__(
        self,
        topology,
        *,
        seed: int = 0,
        demands_per_as: float = 2.0,
        utilization_floor: float = 0.05,
        utilization_scale: float = 0.06,
        utilization_cap: float = 0.92,
        diurnal_amplitude: float = 0.04,
        burst_rate: float = 0.0,
        label: str = "traffic",
    ) -> None:
        from repro.common.rng import derive_rng

        self.topology = topology
        self.seed = seed
        self.label = label
        self.utilization_floor = utilization_floor
        self.utilization_scale = utilization_scale
        self.utilization_cap = utilization_cap
        self.diurnal_amplitude = diurnal_amplitude
        self.burst_rate = burst_rate
        self.applied = 0

        ases = sorted(topology.ases)
        n = len(ases)
        rng = derive_rng(seed, label, "demands")
        import numpy as np

        weights = np.array([topology.degree(a) for a in ases], dtype=float)
        weights /= weights.sum()
        k = max(1, int(demands_per_as * n))
        src_idx = rng.choice(n, size=k, p=weights)
        dst_idx = rng.choice(n, size=k, p=weights)
        intensities = rng.exponential(1.0, size=k)

        #: Accumulated load per directed AS-level edge ``(a, b)``.
        self.channel_load: dict[tuple[int, int], float] = {}
        self.demands: list[tuple[int, int, float]] = []
        # Route demands grouped by destination so the router's
        # per-destination tree cache is hit once per distinct sink.
        order = sorted(range(k), key=lambda i: (int(dst_idx[i]), int(src_idx[i]), i))
        for i in order:
            src, dst = ases[int(src_idx[i])], ases[int(dst_idx[i])]
            if src == dst:
                continue
            intensity = float(intensities[i])
            self.demands.append((src, dst, intensity))
            asns = topology.policy_segment_asns(src, dst)
            for a, b in zip(asns, asns[1:]):
                self.channel_load[(a, b)] = (
                    self.channel_load.get((a, b), 0.0) + intensity
                )

    def utilization_of(self, a: int, b: int) -> float:
        """The base utilization installed on the a→b channel."""
        load = self.channel_load.get((a, b), 0.0)
        if load <= 0.0:
            return self.utilization_floor
        return min(
            self.utilization_cap,
            self.utilization_floor + self.utilization_scale * load,
        )

    def hot_links(self, threshold: float = 0.7) -> list[tuple[int, int, float]]:
        """Directed edges whose installed utilization exceeds ``threshold``."""
        hot = [
            (a, b, self.utilization_of(a, b))
            for (a, b) in self.channel_load
            if self.utilization_of(a, b) > threshold
        ]
        return sorted(hot, key=lambda row: (-row[2], row[0], row[1]))

    def apply(self) -> int:
        """Install load-derived congestion on every loaded channel.

        Returns the number of directed channels reconfigured.
        """
        from repro.common.rng import derive_seed
        from repro.netsim.congestion import CongestionConfig, CongestionProcess
        from repro.netsim.topology import InterfaceId

        topology = self.topology
        count = 0
        for (a, b) in sorted(self.channel_load):
            if_a = topology.interface_on[(a, b)]
            if_b = topology.interface_on[(b, a)]
            channel = topology.channel_between(
                InterfaceId(a, if_a), InterfaceId(b, if_b)
            )
            config = CongestionConfig(
                base_utilization=self.utilization_of(a, b),
                diurnal_amplitude=self.diurnal_amplitude,
                burst_rate=self.burst_rate,
            )
            channel.congestion = CongestionProcess(
                config,
                seed=derive_seed(self.seed, self.label, a, b),
                label="background",
            )
            count += 1
        self.applied = count
        return count
