"""Protocol-differential forwarding treatment.

The paper's central empirical claim (§II, Table I, Fig 4) is that routers
treat packets differently depending on protocol: ICMP may ride a priority
queue, UDP may be sprayed per-packet across parallel routes, and TCP may be
dropped preferentially on congested links. A :class:`TreatmentProfile`
captures one forwarding device's (or one aggregate path's) policy as a
per-protocol :class:`ProtocolTreatment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.netsim.ecmp import HashGranularity
from repro.netsim.packet import Protocol


@dataclass(frozen=True)
class ProtocolTreatment:
    """How one protocol is handled by a forwarding device.

    - ``priority``: served from the low-backlog priority queue.
    - ``ecmp_granularity``: how the device's load balancer keys this
      protocol's traffic.
    - ``drop_multiplier``: scales congestion-drop probability (>1 means
      deprioritized under congestion, as the paper hypothesizes for TCP).
    - ``base_drop``: protocol-specific floor loss rate, independent of
      congestion (e.g. middlebox filtering of unusual protocols).
    - ``extra_delay`` / ``extra_jitter``: constant processing offset and
      additional per-packet noise for this protocol.
    """

    priority: bool = False
    ecmp_granularity: HashGranularity = HashGranularity.PER_FLOW
    drop_multiplier: float = 1.0
    base_drop: float = 0.0
    extra_delay: float = 0.0
    extra_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.drop_multiplier < 0:
            raise ValueError("drop_multiplier must be non-negative")
        if not 0.0 <= self.base_drop <= 1.0:
            raise ValueError("base_drop must be a probability")


@dataclass
class TreatmentProfile:
    """Per-protocol treatments with a default fallback."""

    treatments: dict[Protocol, ProtocolTreatment] = field(default_factory=dict)
    default: ProtocolTreatment = field(default_factory=ProtocolTreatment)

    def for_protocol(self, protocol: Protocol) -> ProtocolTreatment:
        return self.treatments.get(protocol, self.default)

    def with_treatment(
        self, protocol: Protocol, treatment: ProtocolTreatment
    ) -> "TreatmentProfile":
        """Return a copy with ``protocol``'s treatment replaced."""
        treatments = dict(self.treatments)
        treatments[protocol] = treatment
        return TreatmentProfile(treatments=treatments, default=self.default)

    @classmethod
    def uniform(cls, treatment: ProtocolTreatment | None = None) -> "TreatmentProfile":
        """Every protocol treated identically (the null hypothesis)."""
        return cls(default=treatment or ProtocolTreatment())

    @classmethod
    def typical_internet(cls) -> "TreatmentProfile":
        """A profile matching the paper's empirical observations.

        ICMP rides the priority queue (low jitter); UDP is load-balanced
        per packet (multi-modal RTT); TCP hashes per flow but is dropped
        preferentially under congestion; raw IP is stable but can see a
        small filtering floor loss.
        """
        return cls(
            treatments={
                Protocol.ICMP: ProtocolTreatment(
                    priority=True, ecmp_granularity=HashGranularity.SINGLE
                ),
                Protocol.UDP: ProtocolTreatment(
                    ecmp_granularity=HashGranularity.PER_PACKET
                ),
                Protocol.TCP: ProtocolTreatment(
                    ecmp_granularity=HashGranularity.PER_FLOW,
                    drop_multiplier=6.0,
                ),
                Protocol.RAW_IP: ProtocolTreatment(
                    priority=True,
                    ecmp_granularity=HashGranularity.SINGLE,
                    base_drop=0.0002,
                ),
            }
        )
