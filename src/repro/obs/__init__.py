"""Deterministic observability: sim-clock tracing, metrics, exporters.

See DESIGN.md §9 for the span/metric taxonomy and the determinism
contract (same seed ⇒ byte-identical exports). Quick use::

    from repro.obs import Observability

    scenario = WanScenario.build(seed=7, obs=Observability.enabled())
    scenario.run_protocol_study(probes_per_protocol=100, fast=True)
    obs = scenario.simulator.obs
    print(render_report(obs))
    write_exports(obs, trace_out="trace.json")
"""

from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    write_exports,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    log_buckets,
)
from repro.obs.observability import Observability
from repro.obs.report import render_report
from repro.obs.tracer import NullTracer, Span, TraceEvent, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceEvent",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "DEFAULT_BUCKETS",
    "to_jsonl",
    "to_chrome_trace",
    "to_prometheus",
    "write_exports",
    "render_report",
]
