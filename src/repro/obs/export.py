"""Trace/metrics exporters: JSON-lines, Chrome-trace, Prometheus text.

All three formats are **byte-deterministic**: records are emitted in
recording order (itself deterministic under the sim clock), dict keys
are sorted, and floats go through ``repr`` via ``json.dumps`` — so two
same-seed runs produce identical files and a trace diff is a determinism
regression.
"""

from __future__ import annotations

import json

from repro.obs.metrics import Histogram

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}


# ------------------------------------------------------------------ JSONL


def to_jsonl(tracer) -> str:
    """One JSON object per line: spans and events, merged chronologically.

    Records are ordered by ``(time, kind, id)`` where a span sorts at its
    *start* time — the natural order for tailing a run — with sequential
    ids breaking ties deterministically.
    """
    rows = []
    for span in tracer.spans:
        rows.append(
            (
                span.start,
                0,
                span.span_id,
                {
                    "kind": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "component": span.component,
                    "start": span.start,
                    "end": span.end,
                    "corr": span.corr,
                    "attrs": span.attributes,
                },
            )
        )
    for index, event in enumerate(tracer.events):
        rows.append(
            (
                event.time,
                1,
                index,
                {
                    "kind": "event",
                    "name": event.name,
                    "component": event.component,
                    "t": event.time,
                    "span": event.span_id,
                    "corr": event.corr,
                    "attrs": event.attributes,
                },
            )
        )
    rows.sort(key=lambda row: row[:3])
    return "".join(json.dumps(row[3], **_JSON_KW) + "\n" for row in rows)


# ----------------------------------------------------------- Chrome trace


def to_chrome_trace(tracer, metrics=None) -> str:
    """``chrome://tracing`` / Perfetto JSON: spans as complete ("X")
    events, point events as instants ("i"), one thread lane per
    component. Timestamps are simulated microseconds."""
    components = sorted(
        {s.component for s in tracer.spans}
        | {e.component for e in tracer.events}
    )
    tid_of = {component: index + 1 for index, component in enumerate(components)}
    trace_events = []
    for component, tid in tid_of.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": component},
            }
        )
    for span in tracer.spans:
        args = dict(span.attributes)
        if span.corr:
            args["corr"] = span.corr
        trace_events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": tid_of[span.component],
                "ts": span.start * 1e6,
                "dur": ((span.end or span.start) - span.start) * 1e6,
                "id": span.span_id,
                "args": args,
            }
        )
    for event in tracer.events:
        args = dict(event.attributes)
        if event.corr:
            args["corr"] = event.corr
        trace_events.append(
            {
                "name": event.name,
                "ph": "i",
                "s": "g",
                "pid": 1,
                "tid": tid_of[event.component],
                "ts": event.time * 1e6,
                "args": args,
            }
        )
    document = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if metrics is not None:
        document["otherData"] = {"metrics": _metrics_payload(metrics)}
    return json.dumps(document, **_JSON_KW)


def _metrics_payload(metrics) -> dict:
    payload: dict[str, dict] = {}
    for kind, name, labels, metric in metrics.snapshot():
        key = name if not labels else f"{name}{{{_label_str(labels)}}}"
        if isinstance(metric, Histogram):
            payload[key] = {
                "kind": kind,
                "count": metric.total,
                "sum": metric.sum,
            }
        else:
            payload[key] = {"kind": kind, "value": metric.value}
    return payload


# ------------------------------------------------------------- Prometheus


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    return ",".join(f'{key}="{value}"' for key, value in labels)


def _fmt(value: float) -> str:
    if isinstance(value, int) or (isinstance(value, float) and value == int(value)):
        return str(int(value))
    return repr(float(value))


def to_prometheus(metrics) -> str:
    """Prometheus text exposition format, deterministically ordered."""
    lines: list[str] = []
    seen_type: set[str] = set()
    for kind, name, labels, metric in metrics.snapshot():
        if name not in seen_type:
            seen_type.add(name)
            lines.append(f"# TYPE {name} {kind}")
        label_str = _label_str(labels)
        if isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                le = f'le="{_fmt(bound)}"'
                full = f"{label_str},{le}" if label_str else le
                lines.append(f"{name}_bucket{{{full}}} {cumulative}")
            le = 'le="+Inf"'
            full = f"{label_str},{le}" if label_str else le
            lines.append(f"{name}_bucket{{{full}}} {metric.total}")
            suffix = f"{{{label_str}}}" if label_str else ""
            lines.append(f"{name}_sum{suffix} {_fmt(metric.sum)}")
            lines.append(f"{name}_count{suffix} {metric.total}")
        else:
            suffix = f"{{{label_str}}}" if label_str else ""
            lines.append(f"{name}{suffix} {_fmt(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------ file output


def write_exports(
    obs,
    *,
    trace_out: str | None = None,
    events_out: str | None = None,
    metrics_out: str | None = None,
) -> list[str]:
    """Write the requested export files; returns the paths written."""
    written = []
    if trace_out:
        with open(trace_out, "w", encoding="utf-8") as handle:
            handle.write(to_chrome_trace(obs.tracer, obs.metrics))
        written.append(trace_out)
    if events_out:
        with open(events_out, "w", encoding="utf-8") as handle:
            handle.write(to_jsonl(obs.tracer))
        written.append(events_out)
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(obs.metrics))
        written.append(metrics_out)
    return written
