"""Metrics registry: counters, gauges, and log-bucket histograms.

Recorders are plain objects with one hot method each (``inc``, ``set``,
``observe``); components fetch them once at wiring time and keep the
reference, so recording is a single method call with no registry lookup.
When observability is disabled, :class:`NullMetricsRegistry` hands out
shared no-op recorders — the disabled mode costs one no-op call per
instrumented site, which the overhead guard in
``tests/workloads/test_perf_smoke.py`` bounds at <5% on the Table I fast
path.

Histograms use **fixed logarithmic buckets** so that two runs with the
same seed fill exactly the same buckets: bucket boundaries are computed
once from ``(start, factor, count)`` and never adapt to the data. That
determinism is what lets a metrics snapshot double as a regression
oracle (see DESIGN.md §9).
"""

from __future__ import annotations

import bisect


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` bucket upper bounds: start, start*factor, ... (fixed)."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("log_buckets needs start>0, factor>1, count>=1")
    bounds = []
    edge = start
    for _ in range(count):
        bounds.append(edge)
        edge *= factor
    return tuple(bounds)


#: Default bounds, sized for the quantities we track: seconds of simulated
#: time (1 µs .. ~1 h), fuel units, and queue depths all fit in 2x steps.
DEFAULT_BUCKETS = log_buckets(1e-6, 2.0, 32)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, escrow locked)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-log-bucket histogram (RTT, fuel, queue depth).

    ``counts[i]`` counts observations with ``value <= bounds[i]``
    (cumulative style is applied at export time); ``counts[-1]`` is the
    overflow bucket (``+Inf``).
    """

    __slots__ = ("name", "labels", "bounds", "counts", "total", "sum")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value


class _NullRecorder:
    """No-op twin of every recorder; shared singleton, near-zero cost."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_RECORDER = _NullRecorder()


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Families of metrics keyed by name + sorted label set."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}
        self._types: dict[str, str] = {}

    def _get(self, kind: str, cls, name: str, labels: dict, *args):
        declared = self._types.setdefault(name, kind)
        if declared != kind:
            raise ValueError(
                f"metric {name!r} already registered as {declared}, not {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], *args)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get("histogram", Histogram, name, labels, bounds)

    def snapshot(self) -> list[tuple[str, str, tuple, object]]:
        """Deterministically ordered ``(kind, name, labels, metric)`` rows."""
        rows = []
        for (name, labels), metric in sorted(self._metrics.items()):
            rows.append((self._types[name], name, labels, metric))
        return rows


class NullMetricsRegistry:
    """Disabled mode: every request returns the shared no-op recorder."""

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullRecorder:
        return NULL_RECORDER

    def gauge(self, name: str, **labels: str) -> _NullRecorder:
        return NULL_RECORDER

    def histogram(self, name: str, **labels: str) -> _NullRecorder:
        return NULL_RECORDER

    def snapshot(self) -> list:
        return []
