"""The observability bundle: one tracer + one metrics registry + a clock.

An :class:`Observability` object is attached to a
:class:`~repro.netsim.engine.Simulator` (and, for marketplace runs, the
ledger); every instrumented component reaches it through
``simulator.obs``. Three operating modes:

- **detached** (``simulator.obs is None``, the default) — zero cost: the
  hot loops run their uninstrumented branches;
- **disabled** (:meth:`Observability.disabled`) — the bundle is attached
  but hands out no-op recorders; instrumented sites each cost one no-op
  call (bounded <5% by the perf guard);
- **enabled** (:meth:`Observability.enabled`) — full recording.

Because the clock is the simulator clock and every random draw is
seeded, two enabled runs with the same seed produce **bit-identical**
exports (DESIGN.md §9).
"""

from __future__ import annotations

from typing import Callable

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracer import NullTracer, Tracer


class Observability:
    """Bundles a tracer and a metrics registry against one clock."""

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        record: bool = True,
    ) -> None:
        self._clock = clock or (lambda: 0.0)
        self.record = record
        if record:
            self.tracer = Tracer(self._clock)
            self.metrics = MetricsRegistry()
        else:
            self.tracer = NullTracer(self._clock)
            self.metrics = NullMetricsRegistry()

    @classmethod
    def enabled(cls, clock: Callable[[], float] | None = None) -> "Observability":
        return cls(clock, record=True)

    @classmethod
    def disabled(cls) -> "Observability":
        """Attached-but-inert mode: null recorders everywhere."""
        return cls(None, record=False)

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the bundle (and its tracer) at a simulator's clock."""
        self._clock = clock
        self.tracer.clock = clock

    def now(self) -> float:
        return self._clock()
