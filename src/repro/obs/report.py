"""Human-readable observability report for the CLI (``repro obs-report``).

Summarizes a recorded run: span counts and simulated-time totals per
span name, the busiest counters, and histogram digests. Everything is
derived from the deterministic trace/metrics state, so the report text
is itself reproducible for a given seed.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram


def _histogram_quantile(histogram: Histogram, q: float) -> float:
    """Approximate quantile: the upper bound of the covering bucket."""
    if histogram.total == 0:
        return 0.0
    target = q * histogram.total
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return histogram.bounds[-1]


def render_report(obs, *, top: int = 12) -> str:
    """The obs-report text: span rollup + metric digest."""
    lines: list[str] = []
    spans = list(obs.tracer.spans)
    events = list(obs.tracer.events)
    lines.append(
        f"observability report: {len(spans)} spans, {len(events)} events"
    )

    if spans:
        rollup: dict[tuple[str, str], tuple[int, float]] = {}
        for span in spans:
            key = (span.component, span.name)
            count, total = rollup.get(key, (0, 0.0))
            rollup[key] = (count + 1, total + span.duration)
        lines.append("")
        lines.append("spans (component/name: count, total simulated s):")
        for (component, name), (count, total) in sorted(rollup.items()):
            lines.append(f"  {component}/{name}: n={count} total={total:.6f}s")

    rows = obs.metrics.snapshot()
    if rows:
        lines.append("")
        lines.append("metrics:")
        counters = [r for r in rows if isinstance(r[3], Counter)]
        counters.sort(key=lambda r: (-r[3].value, r[1], r[2]))
        for kind, name, labels, metric in counters[:top]:
            label_str = (
                "{" + ",".join(f"{k}={v}" for k, v in labels) + "}" if labels else ""
            )
            lines.append(f"  {name}{label_str} = {metric.value}")
        for kind, name, labels, metric in rows:
            if isinstance(metric, Gauge):
                label_str = (
                    "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
                    if labels
                    else ""
                )
                lines.append(f"  {name}{label_str} = {metric.value:g}")
        for kind, name, labels, metric in rows:
            if isinstance(metric, Histogram) and metric.total:
                label_str = (
                    "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
                    if labels
                    else ""
                )
                mean = metric.sum / metric.total
                p50 = _histogram_quantile(metric, 0.50)
                p99 = _histogram_quantile(metric, 0.99)
                lines.append(
                    f"  {name}{label_str}: n={metric.total} mean={mean:.6g} "
                    f"p50<={p50:.6g} p99<={p99:.6g}"
                )
    return "\n".join(lines)
