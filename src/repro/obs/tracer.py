"""Sim-clock span tracer with parent/child spans and correlation ids.

Every timestamp is read from the *simulator clock*, never wall time, and
span ids are sequential integers — so two runs with the same seed emit
bit-identical traces (the determinism contract of DESIGN.md §9). The
trace doubles as a regression oracle: any divergence between two
same-seed runs shows up as a byte diff in the exported JSONL.

Spans come in three flavours:

- ``with tracer.span("name"):`` — lexically scoped work on the current
  call stack (a probe study, a CLI command);
- ``span = tracer.begin(...)`` / ``tracer.finish(span)`` — work that
  crosses simulator callbacks (a session's lifetime, one sandbox
  execution, a chaos fault's active window);
- ``tracer.span_at(name, start, end)`` — retroactive recording when the
  window is only known after the fact.

Correlation ids (``corr``) tie the layers together: a measurement
session, the application executions it purchased, and the chain
transactions that settled them all carry the same ``corr`` string, so
exporters and humans can follow one measurement across engine, VM,
marketplace, and ledger records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Span:
    """One timed unit of work on the simulator clock."""

    span_id: int
    parent_id: int
    name: str
    component: str
    start: float
    end: float | None = None
    corr: str = ""
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


@dataclass
class TraceEvent:
    """A point-in-time record (state transition, drop, fault firing)."""

    name: str
    component: str
    time: float
    span_id: int
    corr: str = ""
    attributes: dict = field(default_factory=dict)


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer.finish(self._span)


class Tracer:
    """Collects spans and events against a simulated clock."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.clock = clock or (lambda: 0.0)
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------- spans

    def begin(
        self,
        name: str,
        *,
        component: str = "app",
        corr: str = "",
        parent: Span | None = None,
        **attributes,
    ) -> Span:
        """Open a span; close it later with :meth:`finish`."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else 0,
            name=name,
            component=component,
            start=self.clock(),
            corr=corr or (parent.corr if parent is not None else ""),
            attributes=attributes,
        )
        self._next_id += 1
        return span

    def finish(self, span: Span, **attributes) -> Span:
        """Close ``span`` at the current simulated time and record it."""
        if span.end is None:
            span.end = self.clock()
            if attributes:
                span.attributes.update(attributes)
            self.spans.append(span)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        return span

    def span(
        self,
        name: str,
        *,
        component: str = "app",
        corr: str = "",
        parent: Span | None = None,
        **attributes,
    ) -> _SpanContext:
        """Context manager: spans nested inside become children."""
        span = self.begin(
            name, component=component, corr=corr, parent=parent, **attributes
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    def span_at(
        self,
        name: str,
        start: float,
        end: float,
        *,
        component: str = "app",
        corr: str = "",
        parent: Span | None = None,
        **attributes,
    ) -> Span:
        """Record a span whose window is already known (retroactive)."""
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else 0,
            name=name,
            component=component,
            start=start,
            end=end,
            corr=corr,
            attributes=attributes,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # ------------------------------------------------------------ events

    def event(
        self, name: str, *, component: str = "app", corr: str = "", **attributes
    ) -> TraceEvent:
        parent = self._stack[-1] if self._stack else None
        record = TraceEvent(
            name=name,
            component=component,
            time=self.clock(),
            span_id=parent.span_id if parent is not None else 0,
            corr=corr or (parent.corr if parent is not None else ""),
            attributes=attributes,
        )
        self.events.append(record)
        return record

    def recent_events(self, n: int = 10) -> list[TraceEvent]:
        """The last ``n`` recorded events (for failure diagnostics)."""
        return self.events[-n:]


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        pass


class _NullSpan:
    """Inert span handle handed out by :class:`NullTracer`."""

    __slots__ = ()
    span_id = 0
    parent_id = 0
    corr = ""


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled mode: records nothing, costs one no-op call per site."""

    enabled = False
    spans: tuple = ()
    events: tuple = ()

    def __init__(self, clock=None) -> None:
        self.clock = clock or (lambda: 0.0)

    def begin(self, name, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, span, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name, **kwargs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def span_at(self, name, start, end, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name, **kwargs) -> None:
        return None

    def recent_events(self, n: int = 10) -> list:
        return []
