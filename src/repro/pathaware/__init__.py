"""Path-aware networking (SCION-like) on top of the simulator.

Provides what Debuglet's design requires from the network architecture
(§III-A): endpoints can discover interface-level paths, select among them
under policy, derive sub-paths between vantage points, and read metadata
that ASes attach to routing announcements.
"""

from repro.pathaware.discovery import BeaconMetadata, PathRegistry
from repro.pathaware.segments import PathSegment
from repro.pathaware.selection import PathPolicy, PathSelector

__all__ = [
    "BeaconMetadata",
    "PathPolicy",
    "PathRegistry",
    "PathSegment",
    "PathSelector",
]
