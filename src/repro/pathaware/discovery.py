"""Path discovery: enumerate interface-level paths through the AS graph.

Stands in for SCION beaconing / segment-routing topology distribution. The
registry enumerates simple AS-level paths deterministically (neighbors in
sorted interface order, shortest first), so endpoints — and tests — always
see the same candidate set for a given topology.

Beacons can also carry *metadata*, which §VI-A uses as the decentralized
channel for advertising Debuglet executors in routing messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigurationError
from repro.netsim.topology import PathHop, Topology
from repro.pathaware.segments import PathSegment


@dataclass(frozen=True)
class BeaconMetadata:
    """A metadata record an AS attaches to its routing announcements."""

    asn: int
    kind: str
    payload: tuple[tuple[str, Any], ...]

    def as_dict(self) -> dict[str, Any]:
        return dict(self.payload)


class PathRegistry:
    """Enumerates and caches paths over a topology.

    ``max_path_length`` bounds the number of inter-domain links considered;
    ``max_paths`` bounds how many candidates are returned per AS pair.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        max_path_length: int = 16,
        max_paths: int = 8,
    ) -> None:
        if max_path_length < 1 or max_paths < 1:
            raise ConfigurationError("path bounds must be >= 1")
        self.topology = topology
        self.max_path_length = max_path_length
        self.max_paths = max_paths
        self._cache: dict[tuple[int, int], list[PathSegment]] = {}
        self._metadata: list[BeaconMetadata] = []

    def invalidate(self) -> None:
        """Drop cached paths (call after topology changes)."""
        self._cache.clear()

    def paths(self, src_asn: int, dst_asn: int) -> list[PathSegment]:
        """All candidate paths from ``src_asn`` to ``dst_asn``.

        Sorted by AS-path length, then by hop key for determinism.
        """
        cache_key = (src_asn, dst_asn)
        if cache_key in self._cache:
            return self._cache[cache_key]
        if src_asn == dst_asn:
            segments = [PathSegment.from_hops([PathHop(src_asn, None, None)])]
            self._cache[cache_key] = segments
            return segments

        found: list[PathSegment] = []
        # Iterative DFS over (asn, trail, visited); trail holds
        # (asn, egress, peer_asn, peer_ingress) steps.
        stack: list[tuple[int, tuple, frozenset[int]]] = [
            (src_asn, (), frozenset({src_asn}))
        ]
        while stack:
            asn, trail, visited = stack.pop()
            if len(trail) >= self.max_path_length:
                continue
            for egress, peer_asn, peer_ingress in reversed(
                self.topology.neighbors(asn)
            ):
                if peer_asn in visited:
                    continue
                new_trail = trail + ((asn, egress, peer_asn, peer_ingress),)
                if peer_asn == dst_asn:
                    found.append(_trail_to_segment(new_trail))
                else:
                    stack.append((peer_asn, new_trail, visited | {peer_asn}))

        found.sort(key=lambda segment: (segment.length, segment.key()))
        segments = found[: self.max_paths]
        self._cache[cache_key] = segments
        return segments

    def shortest(self, src_asn: int, dst_asn: int) -> PathSegment:
        candidates = self.paths(src_asn, dst_asn)
        if not candidates:
            raise ConfigurationError(f"no path from AS {src_asn} to AS {dst_asn}")
        return candidates[0]

    # ----------------------------------------------------- beacon metadata

    def announce(self, metadata: BeaconMetadata) -> None:
        """Attach ``metadata`` to the origin AS's routing announcements.

        Every AS that can reach the origin learns the metadata — the
        propagation model of BGP/SCION beaconing, abstracted to instant
        convergence.
        """
        self._metadata.append(metadata)

    def withdraw(self, metadata: BeaconMetadata) -> None:
        self._metadata.remove(metadata)

    def metadata_from(self, asn: int, *, kind: str | None = None) -> list[BeaconMetadata]:
        """Metadata announced by ``asn`` (optionally filtered by kind)."""
        return [
            record
            for record in self._metadata
            if record.asn == asn and (kind is None or record.kind == kind)
        ]

    def all_metadata(self, *, kind: str | None = None) -> list[BeaconMetadata]:
        return [
            record
            for record in self._metadata
            if kind is None or record.kind == kind
        ]


def _trail_to_segment(trail: tuple) -> PathSegment:
    hops: list[PathHop] = []
    ingress: int | None = None
    for asn, egress, peer_asn, peer_ingress in trail:
        hops.append(PathHop(asn, ingress, egress))
        ingress = peer_ingress
    last = trail[-1]
    hops.append(PathHop(last[2], ingress, None))
    return PathSegment.from_hops(hops)
