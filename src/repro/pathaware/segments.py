"""Path segments: interface-level forwarding paths as first-class values.

Debuglet requires path-aware networking (§III-A): the initiator must pin
the exact sequence of ``<AS, ingress interface, egress interface>`` hops a
measurement packet takes, and must be able to derive sub-paths between two
on-path vantage points. :class:`PathSegment` provides those operations on
top of :class:`repro.netsim.topology.PathHop`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.netsim.topology import InterfaceId, PathHop


@dataclass(frozen=True)
class PathSegment:
    """An immutable interface-level path between two ASes."""

    hops: tuple[PathHop, ...]

    def __post_init__(self) -> None:
        if not self.hops:
            raise ConfigurationError("a path segment needs at least one hop")
        for hop, nxt in zip(self.hops, self.hops[1:]):
            if hop.egress is None or nxt.ingress is None:
                raise ConfigurationError(
                    "interior hops may only appear at segment endpoints"
                )

    @classmethod
    def from_hops(cls, hops: list[PathHop]) -> "PathSegment":
        return cls(tuple(hops))

    @property
    def src_asn(self) -> int:
        return self.hops[0].asn

    @property
    def dst_asn(self) -> int:
        return self.hops[-1].asn

    @property
    def length(self) -> int:
        """Number of inter-domain links crossed."""
        return len(self.hops) - 1

    def asns(self) -> list[int]:
        return [hop.asn for hop in self.hops]

    def as_list(self) -> list[PathHop]:
        return list(self.hops)

    def interfaces(self) -> list[InterfaceId]:
        """Every inter-domain interface the path touches, in order."""
        result: list[InterfaceId] = []
        for hop in self.hops:
            if hop.ingress is not None:
                result.append(InterfaceId(hop.asn, hop.ingress))
            if hop.egress is not None:
                result.append(InterfaceId(hop.asn, hop.egress))
        return result

    def inter_domain_links(self) -> list[tuple[InterfaceId, InterfaceId]]:
        """The (egress, ingress) interface pairs of each crossed link."""
        pairs = []
        for hop, nxt in zip(self.hops, self.hops[1:]):
            pairs.append(
                (InterfaceId(hop.asn, hop.egress), InterfaceId(nxt.asn, nxt.ingress))
            )
        return pairs

    def reversed(self) -> "PathSegment":
        """The same path traversed in the opposite direction."""
        hops = tuple(
            PathHop(hop.asn, ingress=hop.egress, egress=hop.ingress)
            for hop in reversed(self.hops)
        )
        return PathSegment(hops)

    def subsegment(self, from_asn: int, to_asn: int) -> "PathSegment":
        """The sub-path between two on-path ASes (inclusive).

        The endpoints of the returned segment keep their on-path ingress
        and egress interfaces trimmed to interior endpoints, because a
        measurement between vantage points starts/ends at those ASes.
        """
        asns = self.asns()
        if from_asn not in asns or to_asn not in asns:
            raise ConfigurationError("both ASes must be on the path")
        start = asns.index(from_asn)
        end = asns.index(to_asn)
        if start > end:
            raise ConfigurationError(
                f"AS {from_asn} does not precede AS {to_asn} on this path"
            )
        hops = list(self.hops[start : end + 1])
        hops[0] = PathHop(hops[0].asn, ingress=None, egress=hops[0].egress)
        hops[-1] = PathHop(hops[-1].asn, ingress=hops[-1].ingress, egress=None)
        return PathSegment(tuple(hops))

    def contains_link(self, a: InterfaceId, b: InterfaceId) -> bool:
        links = self.inter_domain_links()
        return (a, b) in links or (b, a) in links

    def key(self) -> tuple:
        """A hashable identity usable as a dict key."""
        return tuple((h.asn, h.ingress, h.egress) for h in self.hops)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for hop in self.hops:
            ingress = "" if hop.ingress is None else f"{hop.ingress}>"
            egress = "" if hop.egress is None else f">{hop.egress}"
            parts.append(f"{ingress}AS{hop.asn}{egress}")
        return " ".join(parts)
