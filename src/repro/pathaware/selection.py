"""Endpoint path selection policies.

Path-aware architectures let endpoints choose among candidate paths. The
Debuglet initiator uses this to (a) reproduce the path its degraded traffic
takes and (b) construct measurement sub-paths between executor vantage
points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.netsim.topology import InterfaceId
from repro.pathaware.discovery import PathRegistry
from repro.pathaware.segments import PathSegment


@dataclass
class PathPolicy:
    """Constraints an acceptable path must satisfy."""

    avoid_asns: frozenset[int] = frozenset()
    require_asns: frozenset[int] = frozenset()
    require_links: tuple[tuple[InterfaceId, InterfaceId], ...] = ()
    max_length: int | None = None

    def admits(self, segment: PathSegment) -> bool:
        asns = set(segment.asns())
        if asns & self.avoid_asns:
            return False
        if not self.require_asns <= asns:
            return False
        if self.max_length is not None and segment.length > self.max_length:
            return False
        for a, b in self.require_links:
            if not segment.contains_link(a, b):
                return False
        return True


class PathSelector:
    """Select paths from a registry subject to a policy."""

    def __init__(self, registry: PathRegistry) -> None:
        self.registry = registry

    def candidates(
        self, src_asn: int, dst_asn: int, policy: PathPolicy | None = None
    ) -> list[PathSegment]:
        segments = self.registry.paths(src_asn, dst_asn)
        if policy is None:
            return segments
        return [segment for segment in segments if policy.admits(segment)]

    def select(
        self, src_asn: int, dst_asn: int, policy: PathPolicy | None = None
    ) -> PathSegment:
        """The best (shortest admissible) path, or raise."""
        candidates = self.candidates(src_asn, dst_asn, policy)
        if not candidates:
            raise ConfigurationError(
                f"no admissible path from AS {src_asn} to AS {dst_asn}"
            )
        return candidates[0]
