"""Performance tooling: parallel cell execution for the fast path."""

from repro.perf.parallel import map_cells

__all__ = ["map_cells"]
