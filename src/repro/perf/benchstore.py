"""One place to append/load ``BENCH_*.json`` result files.

Every perf guard in the repo records wall-clock rows to a
``BENCH_<name>.json`` at the repo root, keyed by the short git head so
numbers can be compared across commits::

    {
      "d32fa0d": [
        {"kind": "smoke", "seconds": 1.23, "timestamp": "2026-08-08T..."},
        ...
      ]
    }

The append/load logic used to be copy-pasted into each bench (table1,
vmbench, loadgen, fleet, obs); this module is the single implementation
they now share. Appends are read-modify-write of the whole document —
fine for the low-frequency, single-writer bench usage — and tolerate a
corrupt or missing file by starting the document over (a bench must
never fail because a previous run crashed mid-write).
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess


def repo_root() -> pathlib.Path:
    """The repository root (two levels above the ``repro`` package)."""
    return pathlib.Path(__file__).resolve().parents[3]


def git_head(root: pathlib.Path | None = None) -> str:
    """Short git head of ``root``, or ``"unknown"`` outside a checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root or repo_root(),
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def bench_path(bench_name: str, root: pathlib.Path | None = None) -> pathlib.Path:
    """Path of ``BENCH_<name>.json`` (pass e.g. ``"wan"`` or ``"vm"``)."""
    return (root or repo_root()) / f"BENCH_{bench_name}.json"


def load_document(bench_name: str, *, root: pathlib.Path | None = None) -> dict:
    """The full ``{head: [rows]}`` document; empty when absent/corrupt."""
    path = bench_path(bench_name, root)
    if not path.exists():
        return {}
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return document if isinstance(document, dict) else {}


def load_rows(bench_name: str, *, root: pathlib.Path | None = None) -> list[dict]:
    """All recorded rows across heads, in file order."""
    rows: list[dict] = []
    for head_rows in load_document(bench_name, root=root).values():
        if isinstance(head_rows, list):
            rows.extend(row for row in head_rows if isinstance(row, dict))
    return rows


def append_rows(
    bench_name: str,
    rows: list[dict],
    *,
    root: pathlib.Path | None = None,
) -> pathlib.Path:
    """Stamp ``rows`` and append them under the current git head."""
    root = root or repo_root()
    path = bench_path(bench_name, root)
    document = load_document(bench_name, root=root)
    stamp = datetime.datetime.now().strftime("%Y-%m-%dT%H:%M:%S")
    stamped = [dict(row, timestamp=stamp) for row in rows]
    document.setdefault(git_head(root), []).extend(stamped)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path
