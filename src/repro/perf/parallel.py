"""Process-parallel execution of independent fast-path cells.

The §II study is embarrassingly parallel once vectorized: each
(city, protocol) cell is a :class:`~repro.netsim.fastpath.ProbeCell`
whose randomness comes from its own embedded seed (derived via the
standard ``derive_seed`` label scheme), so :func:`simulate_cell` is a
pure function of the cell. Fanning cells over a ``ProcessPoolExecutor``
therefore yields *bit-identical* results to running them serially, in
any order — property-tested in ``tests/properties/test_prop_parallel.py``.

Cells are small frozen dataclasses of floats and tuples, so pickling
them to workers costs microseconds; the returned traces carry only the
per-probe records.

Worker counts are clamped to the machine's core count, and a pool that
cannot be spawned (fd exhaustion, fork limits, sandboxed environments)
degrades to the serial path instead of crashing the study — counted in
``fallback_serial_total`` and in the obs metrics registry.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Sequence

from repro.netsim.fastpath import ProbeCell, simulate_cell, simulate_cell_arrays
from repro.netsim.trace import MeasurementTrace

#: Process-pool spawn/execution failures that downgrade to serial, total
#: since import (also mirrored to the obs counter
#: ``parallel_fallback_serial_total`` when a bundle is attached).
fallback_serial_total = 0

_m_fallback = None


def attach_observability(obs) -> None:
    """Mirror fallback counts into ``obs``'s metrics registry.

    Follows the engine's attachment idiom: pre-resolve the recorder once
    so the failure path is a direct method call.
    """
    global _m_fallback
    _m_fallback = obs.metrics.counter("parallel_fallback_serial_total")


def default_workers() -> int:
    """Worker count used when callers pass ``workers=-1`` (all cores)."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: int | None, n_tasks: int) -> int:
    """Effective pool size for a request: 0 means run serially.

    ``-1`` asks for every core; explicit counts are clamped to the
    machine's core count (oversubscribing CPU-bound numpy workers only
    adds scheduler thrash) and to the task count.
    """
    if workers == -1:
        workers = default_workers()
    if workers is None or workers <= 1 or n_tasks <= 1:
        return 0
    return min(workers, default_workers(), n_tasks)


def _count_fallback(error: BaseException) -> None:
    global fallback_serial_total
    fallback_serial_total += 1
    if _m_fallback is not None:
        _m_fallback.inc()


def map_cells(
    cells: Iterable[ProbeCell], *, workers: int | None = None
) -> list[MeasurementTrace]:
    """Simulate ``cells`` and return traces in input order.

    ``workers=None`` (or 0/1) runs serially in-process; ``workers=-1``
    uses every core; any other positive count caps the pool (clamped to
    the core count). Because each cell carries its own derived seed, the
    result is identical for every choice of ``workers`` — parallelism is
    purely a wall-clock decision, and a pool that fails to spawn or dies
    mid-flight silently degrades to the serial path.
    """
    cell_list: Sequence[ProbeCell] = list(cells)
    pool_size = resolve_workers(workers, len(cell_list))
    if pool_size == 0:
        return [simulate_cell(cell) for cell in cell_list]
    try:
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            # Workers return bare (send_times, rtts) arrays — cheap to
            # pickle; executor.map preserves input order, keeping
            # parallel == serial.
            arrays = list(pool.map(simulate_cell_arrays, cell_list))
    except (OSError, BrokenProcessPool, PermissionError) as error:
        _count_fallback(error)
        return [simulate_cell(cell) for cell in cell_list]
    return [
        MeasurementTrace.from_arrays(
            cell.protocol, send_times, rtts, label=cell.label
        )
        for cell, (send_times, rtts) in zip(cell_list, arrays)
    ]
