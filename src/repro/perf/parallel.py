"""Process-parallel execution of independent fast-path cells.

The §II study is embarrassingly parallel once vectorized: each
(city, protocol) cell is a :class:`~repro.netsim.fastpath.ProbeCell`
whose randomness comes from its own embedded seed (derived via the
standard ``derive_seed`` label scheme), so :func:`simulate_cell` is a
pure function of the cell. Fanning cells over a ``ProcessPoolExecutor``
therefore yields *bit-identical* results to running them serially, in
any order — property-tested in ``tests/properties/test_prop_parallel.py``.

Cells are small frozen dataclasses of floats and tuples, so pickling
them to workers costs microseconds; the returned traces carry only the
per-probe records.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.netsim.fastpath import ProbeCell, simulate_cell, simulate_cell_arrays
from repro.netsim.trace import MeasurementTrace


def default_workers() -> int:
    """Worker count used when callers pass ``workers=-1`` (all cores)."""
    return max(1, os.cpu_count() or 1)


def map_cells(
    cells: Iterable[ProbeCell], *, workers: int | None = None
) -> list[MeasurementTrace]:
    """Simulate ``cells`` and return traces in input order.

    ``workers=None`` (or 0/1) runs serially in-process; ``workers=-1``
    uses every core; any other positive count caps the pool. Because each
    cell carries its own derived seed, the result is identical for every
    choice of ``workers`` — parallelism is purely a wall-clock decision.
    """
    cell_list: Sequence[ProbeCell] = list(cells)
    if workers == -1:
        workers = default_workers()
    if workers is None or workers <= 1 or len(cell_list) <= 1:
        return [simulate_cell(cell) for cell in cell_list]
    pool_size = min(workers, len(cell_list))
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        # Workers return bare (send_times, rtts) arrays — cheap to pickle;
        # executor.map preserves input order, keeping parallel == serial.
        arrays = list(pool.map(simulate_cell_arrays, cell_list))
    return [
        MeasurementTrace.from_arrays(
            cell.protocol, send_times, rtts, label=cell.label
        )
        for cell, (send_times, rtts) in zip(cell_list, arrays)
    ]
