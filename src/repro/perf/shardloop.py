"""Region-sharded epoch-barrier execution of localization campaigns.

A continent-scale campaign runs thousands of concurrent localization
*episodes* — each a strategy plan (:mod:`repro.core.locplans`) probing
one policy path. This module partitions that work across processes by
the **AS region of each episode's client vantage** (the deployment the
paper implies: an operator's regional probing infrastructure), with the
controller process exchanging work at **epoch barriers**:

1. every active episode contributes its next measurement request;
2. the controller extracts the requests as picklable
   :class:`~repro.netsim.fastpath.ProbeCell` snapshots — the
   boundary-crossing unit, a probe train about to traverse (possibly)
   many regions;
3. cells are grouped by client region and shipped to one worker task per
   region; workers run :func:`~repro.netsim.fastpath.simulate_cell_arrays`
   — a pure function of the cell — and return bare float arrays;
4. results are fed back into the plans **in episode order**, unblocking
   the next round of requests.

Bit-identical determinism (the PR 1 ``perf/parallel`` pattern, extended
from independent cells to a stateful epoch loop): each measurement's RNG
stream is derived from ``(seed, episode, step)``, never from a shared
clock or issue order, and every episode owns a disjoint simulated-time
window, so injected fault overlays (time-masked in the vectorized path)
cannot leak across episodes. Serial (``workers=0``) and sharded runs of
the same campaign therefore produce byte-identical result digests —
property-tested, and re-checked in CI on every push.

A pool that cannot be spawned degrades to the serial path (counted like
``perf.parallel``'s fallback), never crashing the campaign.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.core.fastprobe import FastSegmentProber
from repro.core.localization import FaultJudge, estimate_baseline_rtt
from repro.core.locplans import Plan, SuspectSpec, make_plan
from repro.netsim.faults import FaultLocation
from repro.netsim.fastpath import ProbeCell, simulate_cell_arrays
from repro.netsim.packet import Protocol
from repro.pathaware.segments import PathSegment
from repro.perf import parallel as _parallel


def simulate_cells_batch(cells: list[ProbeCell]):
    """Worker entry point: simulate a region's batch of cells.

    Top-level (picklable) and pure — results depend only on the cells.
    """
    return [simulate_cell_arrays(cell) for cell in cells]


@dataclass(frozen=True)
class Episode:
    """One localization episode of a campaign.

    ``window_start`` is the beginning of the episode's private
    simulated-time interval; the fault (if any) should be injected
    active over exactly that window so concurrent episodes cannot
    observe each other's overlays.
    """

    index: int
    path: PathSegment
    strategy: str
    window_start: float
    hint: SuspectSpec | None = None
    fault_kind: str = ""
    fault_location: FaultLocation | None = None


@dataclass
class _EpisodeState:
    episode: Episode
    plan: Plan
    request: tuple[int, int] | None
    step: int = 0
    verdicts: list[dict] = field(default_factory=list)
    suspects: list[SuspectSpec] | None = None


def _client_vantage(path: PathSegment, index: int) -> tuple[int, int]:
    hop = path.hops[index]
    interface = hop.egress if hop.egress is not None else hop.ingress
    if interface is None:
        raise ConfigurationError(f"AS {hop.asn} has no on-path interface")
    return (hop.asn, interface)


def _server_vantage(path: PathSegment, index: int) -> tuple[int, int]:
    hop = path.hops[index]
    interface = hop.ingress if hop.ingress is not None else hop.egress
    if interface is None:
        raise ConfigurationError(f"AS {hop.asn} has no on-path interface")
    return (hop.asn, interface)


def _location_matches(suspect: FaultLocation, truth: FaultLocation) -> bool:
    if suspect == truth:
        return True
    return (
        suspect.link is not None
        and truth.link is not None
        and set(suspect.link) == set(truth.link)
    )


def _location_for(path: PathSegment, spec: SuspectSpec) -> FaultLocation:
    kind, index = spec
    if kind == "link":
        egress, ingress = path.inter_domain_links()[index]
        return FaultLocation(link=(egress, ingress))
    return FaultLocation(asn=path.hops[index].asn)


def _location_str(location: FaultLocation) -> str:
    if location.link is not None:
        a, b = location.link
        return f"link:{a.asn}#{a.interface}-{b.asn}#{b.interface}"
    return f"as:{location.asn}"


@dataclass
class CampaignResult:
    """Deterministic outcome of a campaign run."""

    rows: list[dict]
    epochs: int
    measurements: int
    probes_sent: int
    workers: int
    fallbacks: int

    def digest(self) -> str:
        """Canonical fingerprint of the campaign outcome.

        Serializes the per-episode rows (verdict sequences included) as
        canonical JSON; ``repr``-based float serialization round-trips
        IEEE doubles exactly, so two runs digest equal iff their results
        are bit-identical.
        """
        payload = json.dumps(self.rows, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CampaignEngine:
    """Runs a set of episodes serially or region-sharded.

    ``workers=0`` runs every measurement inline (the reference);
    ``workers=N`` (or ``-1`` for all cores) shards each epoch's batch by
    client region over a persistent process pool. Both paths feed the
    same plans in the same order with the same derived seeds, which is
    what the digest-equality guarantee rests on.
    """

    def __init__(
        self,
        network,
        episodes: list[Episode],
        *,
        judge: FaultJudge | None = None,
        protocol: Protocol = Protocol.UDP,
        probes: int = 10,
        interval_us: int = 5_000,
        probe_size: int = 64,
        timeout: float = 2.0,
        slot: float | None = None,
        max_steps: int = 64,
        seed: int = 0,
        workers: int = 0,
        region_of: dict[int, int] | None = None,
    ) -> None:
        self.network = network
        self.episodes = episodes
        self.judge = judge or FaultJudge()
        self.protocol = protocol
        self.max_steps = max_steps
        self.seed = seed
        self.workers = workers
        self.region_of = region_of if region_of is not None else getattr(
            network.topology, "region_of", {}
        )
        self.prober = FastSegmentProber(
            network,
            probes=probes,
            interval_us=interval_us,
            probe_size=probe_size,
            timeout=timeout,
            seed=seed,
            label="wan",
        )
        # One measurement slot: server warmup + the train + timeout slack.
        self.slot = slot if slot is not None else (
            0.1 + probes * interval_us * 1e-6 + timeout
        )
        self.fallbacks = 0

    def window_length(self) -> float:
        """The per-episode simulated-time window implied by the config."""
        return self.slot * self.max_steps

    # --------------------------------------------------------------- run

    def run(self) -> CampaignResult:
        states: list[_EpisodeState] = []
        for episode in self.episodes:
            plan = make_plan(
                episode.strategy, episode.path.length, hint=episode.hint
            )
            try:
                request = next(plan)
            except StopIteration as stop:  # zero-length plan (n == 0)
                states.append(
                    _EpisodeState(episode, plan, None, suspects=stop.value or [])
                )
                continue
            states.append(_EpisodeState(episode, plan, request))

        pool: ProcessPoolExecutor | None = None
        # ``-1`` adapts to the machine (core-clamped, may come out serial
        # on small boxes); an explicit count is honored as-is — sharding
        # here is a correctness/structure choice, and the digest-equality
        # CI check must exercise a real pool even on one core.
        if self.workers == -1:
            pool_size = _parallel.resolve_workers(-1, len(states))
        else:
            pool_size = min(max(self.workers, 0), len(states))
        if pool_size:
            try:
                pool = ProcessPoolExecutor(max_workers=pool_size)
            except (OSError, PermissionError):
                self.fallbacks += 1
                pool = None

        epochs = 0
        measurements = 0
        probes_sent = 0
        try:
            active = [s for s in states if s.request is not None]
            while active:
                batch = self._build_batch(active)
                results = self._simulate_batch(pool, batch)
                if results is None:  # pool died mid-epoch: degrade, retry
                    pool = None
                    self.fallbacks += 1
                    results = self._simulate_batch(None, batch)
                for state, cell, client, server, segment in batch:
                    send_times, rtts = results[state.episode.index]
                    self._advance(
                        state, cell, client, server, segment, send_times, rtts
                    )
                    measurements += 1
                    probes_sent += cell.count
                epochs += 1
                active = [s for s in states if s.request is not None]
        finally:
            if pool is not None:
                pool.shutdown()

        rows = [self._row_for(state) for state in states]
        return CampaignResult(
            rows=rows,
            epochs=epochs,
            measurements=measurements,
            probes_sent=probes_sent,
            workers=pool_size,
            fallbacks=self.fallbacks,
        )

    # ----------------------------------------------------------- internals

    def _build_batch(self, active: list[_EpisodeState]):
        batch = []
        for state in sorted(active, key=lambda s: s.episode.index):
            episode = state.episode
            if state.step >= self.max_steps:
                # Out of window: terminate the plan with what it has.
                state.suspects = []
                state.request = None
                continue
            i, j = state.request
            asns = episode.path.asns()
            segment = episode.path.subsegment(asns[i], asns[j])
            client = _client_vantage(episode.path, i)
            server = _server_vantage(episode.path, j)
            start = episode.window_start + state.step * self.slot
            cell = self.prober.build_cell(
                client,
                server,
                segment,
                protocol=self.protocol,
                start=start,
                seed_labels=(episode.index, state.step),
            )
            batch.append((state, cell, client, server, segment))
        return batch

    def _simulate_batch(self, pool: ProcessPoolExecutor | None, batch):
        """Simulate one epoch's cells; returns ``{episode_index: arrays}``.

        With a pool, cells are grouped by client-vantage region and one
        worker task is submitted per region — the shard boundary. Returns
        ``None`` when the pool broke (caller degrades to serial).
        """
        if pool is None:
            return {
                state.episode.index: simulate_cell_arrays(cell)
                for state, cell, *_ in batch
            }
        by_region: dict[int, list] = {}
        for entry in batch:
            state, cell, client, *_ = entry
            region = self.region_of.get(client[0], 0)
            by_region.setdefault(region, []).append((state.episode.index, cell))
        futures = []
        try:
            for region in sorted(by_region):
                indices = [index for index, _ in by_region[region]]
                cells = [cell for _, cell in by_region[region]]
                futures.append((indices, pool.submit(simulate_cells_batch, cells)))
            results: dict[int, tuple] = {}
            for indices, future in futures:
                for index, arrays in zip(indices, future.result()):
                    results[index] = arrays
        except (OSError, BrokenProcessPool):
            return None
        return results

    def _advance(self, state, cell, client, server, segment, send_times, rtts):
        measurement = self.prober.measurement_from_arrays(
            cell, client, server, segment, send_times, rtts
        )
        baseline_ms = (
            estimate_baseline_rtt(self.network.topology, segment) * 1e3
        )
        verdict = self.judge.judge(measurement, baseline_ms)
        i, j = state.request
        state.verdicts.append(
            {
                "i": i,
                "j": j,
                "faulty": verdict.faulty,
                "mean_rtt_ms": measurement.mean_rtt_ms(),
                "loss": measurement.loss_rate(),
                "finished_at": measurement.finished_at,
            }
        )
        state.step += 1
        try:
            state.request = state.plan.send(verdict.faulty)
        except StopIteration as stop:
            state.request = None
            state.suspects = stop.value or []

    def _row_for(self, state: _EpisodeState) -> dict:
        episode = state.episode
        specs = state.suspects or []
        suspects = [_location_for(episode.path, spec) for spec in specs]
        found = False
        if episode.fault_location is not None:
            found = any(
                _location_matches(s, episode.fault_location) for s in suspects
            )
        convergence = 0.0
        if state.verdicts:
            convergence = (
                state.verdicts[-1]["finished_at"] - episode.window_start
            )
        return {
            "episode": episode.index,
            "src": episode.path.src_asn,
            "dst": episode.path.dst_asn,
            "path_length": episode.path.length,
            "strategy": episode.strategy,
            "fault_kind": episode.fault_kind,
            "fault": (
                _location_str(episode.fault_location)
                if episode.fault_location is not None
                else ""
            ),
            "found": found,
            "measurements": len(state.verdicts),
            "convergence_time": convergence,
            "suspects": [_location_str(s) for s in suspects],
            "verdicts": state.verdicts,
        }


__all__ = [
    "CampaignEngine",
    "CampaignResult",
    "Episode",
    "simulate_cells_batch",
]
