"""Execution-tier microbenchmarks: reference interpreter vs threaded code.

Four single-VM workloads isolate where the compiled tier
(:mod:`repro.sandbox.compile`) can and cannot win:

- ``tight_loop`` — pure dispatch + fuel accounting; the interpreter-bound
  case the >=5x target applies to;
- ``memory_heavy`` — dynamic (runtime-checked) and constant (elided)
  loads/stores per iteration;
- ``call_heavy`` — frame push/pop cost via a helper called per iteration;
- ``host_heavy`` — one host call per iteration; interpretation is *not*
  the bottleneck here, so both tiers must be within noise of each other
  (the CI guard).

``run_localization`` additionally times an end-to-end fault-localization
scenario (simulator + fleet + sandboxed probers) per tier, which bounds
how much of a full-scenario wall clock the VM actually is.

All timings are min-of-N wall seconds; results feed ``repro vmbench``
and ``BENCH_vm.json``.
"""

from __future__ import annotations

import time

from repro.sandbox.assembler import assemble
from repro.sandbox.module import Module
from repro.sandbox.vm import VM, Done, HostCall

#: name -> (baseline iteration count, assembly template)
_WORKLOADS: dict[str, tuple[int, str]] = {
    "tight_loop": (200_000, """
.memory 4096
.func run_debuglet 1 1
    push 0
    local_set 1
loop:
    local_get 1
    push 1
    add
    local_set 1
    local_get 1
    local_get 0
    lts
    jnz loop
    local_get 1
    ret
.end
"""),
    "memory_heavy": (50_000, """
.memory 65536
.func run_debuglet 1 2
    push 0
    local_set 1
loop:
    ; dynamic address: mem64[(i & 511) * 8] = i  (runtime-checked)
    local_get 1
    push 511
    and
    push 8
    mul
    local_get 1
    store64
    ; read it back and accumulate
    local_get 1
    push 511
    and
    push 8
    mul
    load64
    local_get 2
    add
    local_set 2
    ; constant address: mem64[8192] = acc  (bounds check elided)
    push 8192
    local_get 2
    store64
    push 8192
    load64
    drop
    local_get 1
    push 1
    add
    local_set 1
    local_get 1
    local_get 0
    lts
    jnz loop
    local_get 2
    ret
.end
"""),
    "call_heavy": (100_000, """
.memory 4096
.func run_debuglet 1 2
    push 0
    local_set 1
loop:
    local_get 2
    local_get 1
    call accumulate
    local_set 2
    local_get 1
    push 1
    add
    local_set 1
    local_get 1
    local_get 0
    lts
    jnz loop
    local_get 2
    ret
.end
.func accumulate 2 0
    local_get 0
    local_get 1
    add
    push 3
    add
    ret
.end
"""),
    "host_heavy": (20_000, """
.memory 4096
.func run_debuglet 1 1
    push 0
    local_set 1
loop:
    local_get 1
    host log_i64
    drop
    local_get 1
    push 1
    add
    local_set 1
    local_get 1
    local_get 0
    lts
    jnz loop
    local_get 1
    ret
.end
"""),
}

WORKLOAD_NAMES = tuple(_WORKLOADS)
TIERS = ("reference", "compiled")


def workload_module(name: str) -> tuple[Module, int]:
    """Assembled module and baseline iteration count for ``name``."""
    iterations, source = _WORKLOADS[name]
    return assemble(source), iterations


def drive(vm: VM, args: list[int]) -> tuple[Done, int]:
    """Run a VM to completion, answering every host call with ``[0]``."""
    step = vm.start(args)
    host_calls = 0
    while isinstance(step, HostCall):
        host_calls += 1
        step = vm.resume([0])
    return step, host_calls


def run_workload(
    name: str, tier: str, *, scale: float = 1.0, repeats: int = 3
) -> dict:
    """Min-of-``repeats`` timing of one workload on one tier.

    Also checks the equivalence contract on the way: result and
    ``fuel_used`` must not depend on the tier, so they are recorded and
    comparable across rows.
    """
    module, baseline = workload_module(name)
    iterations = max(1, int(baseline * scale))
    best = float("inf")
    result = fuel = host_calls = 0
    for _ in range(repeats):
        vm = VM(module, fuel_limit=10**12, tier=tier)
        started = time.perf_counter()
        done, host_calls = drive(vm, [iterations])
        best = min(best, time.perf_counter() - started)
        result, fuel = done.value, vm.fuel_used
    row = {
        "name": name,
        "tier": tier,
        "seconds": round(best, 6),
        "iterations": iterations,
        "fuel_used": fuel,
        "result": result,
        "host_calls": host_calls,
        "repeats": repeats,
    }
    if tier == "compiled":
        from repro.sandbox.compile import get_compiled

        compiled = get_compiled(module)
        if compiled is not None:
            row["elided_checks"] = compiled.elided_checks
            row["elided_const"] = compiled.elided_const
            row["elided_ranged"] = compiled.elided_ranged
    return row


def run_suite(
    tiers: tuple[str, ...] = TIERS,
    *,
    scale: float = 1.0,
    repeats: int = 3,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
) -> list[dict]:
    """All requested workloads on all requested tiers, with speedups.

    When both tiers run, each compiled row gains a ``speedup`` key
    (reference seconds / compiled seconds) and the tier-invariant fields
    are asserted equal — a benchmark that quietly diverged would be
    measuring two different programs.
    """
    rows: list[dict] = []
    for name in workloads:
        per_tier: dict[str, dict] = {}
        for tier in tiers:
            row = run_workload(name, tier, scale=scale, repeats=repeats)
            per_tier[tier] = row
            rows.append(row)
        if "reference" in per_tier and "compiled" in per_tier:
            ref, fast = per_tier["reference"], per_tier["compiled"]
            for key in ("fuel_used", "result", "host_calls"):
                if ref[key] != fast[key]:
                    raise AssertionError(
                        f"{name}: tiers diverged on {key}: "
                        f"{ref[key]} != {fast[key]}"
                    )
            fast["speedup"] = round(ref["seconds"] / fast["seconds"], 2) \
                if fast["seconds"] else float("inf")
    return rows


def run_localization(
    tier: str, *, ases: int = 6, probes: int = 8, seed: int = 3
) -> dict:
    """End-to-end fault localization with every session VM on ``tier``.

    Flips :data:`repro.sandbox.program.DEFAULT_TIER` for the duration so
    the fleet's probers — built deep inside the scenario — pick the tier
    up, then restores it.
    """
    import repro.sandbox.program as program_mod
    from repro.core import ExecutorFleet, FaultLocalizer, SegmentProber
    from repro.netsim import FaultInjector, InterfaceId
    from repro.workloads import build_chain

    previous = program_mod.DEFAULT_TIER
    program_mod.DEFAULT_TIER = tier
    try:
        started = time.perf_counter()
        scenario = build_chain(ases, seed=seed)
        fleet = ExecutorFleet(scenario.network, seed=seed + 1)
        fleet.deploy_full()
        injector = FaultInjector(scenario.topology)
        fault = injector.link_delay(
            InterfaceId(ases - 1, 2), InterfaceId(ases, 1),
            extra_delay=20e-3, start=0.0, end=1e12,
        )
        prober = SegmentProber(fleet, probes=probes, interval_us=5000)
        localizer = FaultLocalizer(prober)
        report = localizer.localize(
            scenario.registry.shortest(1, ases), strategy="binary"
        )
        seconds = time.perf_counter() - started
        return {
            "name": "localize_e2e",
            "tier": tier,
            "seconds": round(seconds, 6),
            "ases": ases,
            "probes": probes,
            "correct": report.found(fault.location),
            "measurements": report.measurements_used,
        }
    finally:
        program_mod.DEFAULT_TIER = previous
