"""The Debuglet sandbox: a WebAssembly-analogue execution environment.

Provides the properties the paper requires of its WA runtime (§IV-B):
memory safety (bounds-checked linear memory), bounded execution (fuel
metering), and a narrow host API (buffers plus packet send/receive). The
native-program twin runs the same logic unsandboxed for the Fig 8
overhead comparison.
"""

from repro.sandbox.assembler import AssemblyError, assemble
from repro.sandbox.compile import (
    CompileCache,
    CompiledModule,
    CompileUnsupported,
    compile_cache,
    compile_module,
    get_compiled,
)
from repro.sandbox.hostops import (
    BLOCKING_OPS,
    HOST_OPS,
    RECV_HEADER_SIZE,
    protocol_from_number,
)
from repro.sandbox.isa import FUEL_COST, Instruction, Op
from repro.sandbox.manifest import KNOWN_CAPABILITIES, ExecutorPolicy, Manifest
from repro.sandbox.module import ENTRY_POINT, BufferSpec, Function, Module, disassemble
from repro.sandbox.program import (
    NativeProgram,
    ProgramCall,
    ProgramDone,
    ReceivedData,
    RunnableProgram,
    VMProgram,
)
from repro.sandbox.programs import (
    StockProgram,
    decode_result_pairs,
    echo_client,
    echo_server,
    oneway_receiver,
    oneway_sender,
)
from repro.sandbox.programs_native import (
    native_echo_client,
    native_echo_server,
    native_oneway_receiver,
    native_oneway_sender,
)
from repro.sandbox.verifier import (
    Diagnostic,
    FuelVerdict,
    Severity,
    VerificationReport,
    infer_capabilities,
    verify_module,
)
from repro.sandbox.vm import VM, Done, HostCall

__all__ = [
    "AssemblyError",
    "BLOCKING_OPS",
    "BufferSpec",
    "CompileCache",
    "CompileUnsupported",
    "CompiledModule",
    "Diagnostic",
    "Done",
    "ENTRY_POINT",
    "ExecutorPolicy",
    "FUEL_COST",
    "FuelVerdict",
    "Function",
    "HOST_OPS",
    "HostCall",
    "Instruction",
    "KNOWN_CAPABILITIES",
    "Manifest",
    "Module",
    "NativeProgram",
    "Op",
    "ProgramCall",
    "ProgramDone",
    "RECV_HEADER_SIZE",
    "ReceivedData",
    "RunnableProgram",
    "Severity",
    "StockProgram",
    "VM",
    "VMProgram",
    "VerificationReport",
    "assemble",
    "compile_cache",
    "compile_module",
    "decode_result_pairs",
    "get_compiled",
    "disassemble",
    "echo_client",
    "echo_server",
    "infer_capabilities",
    "native_echo_client",
    "native_echo_server",
    "native_oneway_receiver",
    "native_oneway_sender",
    "oneway_receiver",
    "oneway_sender",
    "protocol_from_number",
    "verify_module",
]
