"""Assembler: textual Debuglet assembly → :class:`~repro.sandbox.module.Module`.

The source format, one item per line (``;`` starts a comment):

.. code-block:: text

    .memory 65536
    .buffer udp_send_buffer 0 1024
    .buffer udp_recv_buffer 1024 1056
    .global counter 0
    .func run_debuglet 0 2        ; name, n_params, n_locals
        push 10
        local_set 0
    loop:                          ; labels end with ':'
        local_get 0
        jz done
        local_get 0
        push 1
        sub
        local_set 0
        jmp loop
    done:
        push 0
        ret
    .end

Numeric immediates may be decimal (optionally negative) or ``0x`` hex.
Jumps take label names; the assembler resolves them to instruction
indices. ``host`` and ``call`` take symbolic names kept as strings.
"""

from __future__ import annotations

from repro.common.errors import SandboxError
from repro.sandbox.hostops import HOST_OPS
from repro.sandbox.isa import Instruction, Op
from repro.sandbox.module import BufferSpec, Function, Module

_OPS_BY_NAME = {op.value: op for op in Op}
_LABEL_OPS = (Op.JMP, Op.JZ, Op.JNZ)
_NAME_OPS = (Op.CALL, Op.HOST, Op.GLOBAL_GET, Op.GLOBAL_SET)
_INT_OPS = (Op.PUSH, Op.LOCAL_GET, Op.LOCAL_SET, Op.LOCAL_TEE)


class AssemblyError(SandboxError):
    """Raised with the offending line number (and, when the failure is
    inside a ``.func`` body, the enclosing function name) on any parse
    failure. ``line_no``/``function``/``detail`` carry the parts
    separately for tooling."""

    def __init__(self, line_no: int, message: str, function: str | None = None):
        where = f"line {line_no}"
        if function is not None:
            where += f" (in function {function!r})"
        super().__init__(f"{where}: {message}")
        self.line_no = line_no
        self.function = function
        self.detail = message


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(line_no, f"expected integer, got {token!r}") from None


def assemble(source: str) -> Module:
    """Assemble ``source`` into a validated :class:`Module`."""
    memory_size = 65536
    buffers: dict[str, BufferSpec] = {}
    globals_: dict[str, int] = {}
    functions: dict[str, Function] = {}

    current: Function | None = None
    labels: dict[str, int] = {}
    fixups: list[tuple[int, str, int]] = []  # (code index, label, line)
    call_sites: list[tuple[str, int, str, int]] = []  # (func, index, callee, line)

    try:
        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = raw_line.split(";", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            head = tokens[0]

            if head == ".memory":
                if len(tokens) != 2:
                    raise AssemblyError(line_no, ".memory takes one argument")
                memory_size = _parse_int(tokens[1], line_no)
                continue
            if head == ".buffer":
                if len(tokens) != 4:
                    raise AssemblyError(line_no, ".buffer takes name, offset, size")
                name = tokens[1]
                if name in buffers:
                    raise AssemblyError(line_no, f"duplicate buffer {name!r}")
                buffers[name] = BufferSpec(
                    name,
                    _parse_int(tokens[2], line_no),
                    _parse_int(tokens[3], line_no),
                )
                continue
            if head == ".global":
                if len(tokens) != 3:
                    raise AssemblyError(
                        line_no, ".global takes name and initial value"
                    )
                if tokens[1] in globals_:
                    raise AssemblyError(
                        line_no, f"duplicate global {tokens[1]!r}"
                    )
                globals_[tokens[1]] = _parse_int(tokens[2], line_no)
                continue
            if head == ".func":
                if current is not None:
                    raise AssemblyError(line_no, "nested .func (missing .end?)")
                if len(tokens) != 4:
                    raise AssemblyError(
                        line_no, ".func takes name, n_params, n_locals"
                    )
                name = tokens[1]
                if name in functions:
                    raise AssemblyError(line_no, f"duplicate function {name!r}")
                current = Function(
                    name,
                    _parse_int(tokens[2], line_no),
                    _parse_int(tokens[3], line_no),
                )
                labels = {}
                fixups = []
                continue
            if head == ".end":
                if current is None:
                    raise AssemblyError(line_no, ".end outside a function")
                for index, label, fixup_line in fixups:
                    if label not in labels:
                        raise AssemblyError(
                            fixup_line, f"undefined label {label!r}"
                        )
                    target = labels[label]
                    if target >= len(current.code):
                        raise AssemblyError(
                            fixup_line,
                            f"label {label!r} points past the end of "
                            f"{current.name!r} (target {target}, "
                            f"{len(current.code)} instruction(s))",
                        )
                    old = current.code[index]
                    current.code[index] = Instruction(old.op, target)
                functions[current.name] = current
                current = None
                continue

            if current is None:
                raise AssemblyError(
                    line_no, f"instruction outside a function: {line!r}"
                )

            if head.endswith(":") and len(tokens) == 1:
                label = head[:-1]
                if label in labels:
                    raise AssemblyError(line_no, f"duplicate label {label!r}")
                labels[label] = len(current.code)
                continue

            op = _OPS_BY_NAME.get(head)
            if op is None:
                raise AssemblyError(line_no, f"unknown instruction {head!r}")
            if op in _LABEL_OPS:
                if len(tokens) != 2:
                    raise AssemblyError(line_no, f"{head} takes a label")
                fixups.append((len(current.code), tokens[1], line_no))
                current.code.append(Instruction(op, -1))  # patched at .end
            elif op in _NAME_OPS:
                if len(tokens) != 2:
                    raise AssemblyError(line_no, f"{head} takes a name")
                name = tokens[1]
                if op is Op.HOST and name not in HOST_OPS:
                    raise AssemblyError(
                        line_no,
                        f"unknown host operation {name!r} "
                        f"(instruction {len(current.code)} of {current.name!r})",
                    )
                if op is Op.CALL:
                    # Callees may be defined later; checked after the last .end.
                    call_sites.append(
                        (current.name, len(current.code), name, line_no)
                    )
                current.code.append(Instruction(op, name))
            elif op in _INT_OPS:
                if len(tokens) != 2:
                    raise AssemblyError(line_no, f"{head} takes an integer")
                value = _parse_int(tokens[1], line_no)
                if op is not Op.PUSH:
                    n_slots = current.n_params + current.n_locals
                    if not 0 <= value < n_slots:
                        raise AssemblyError(
                            line_no,
                            f"local index {value} out of range — "
                            f"{current.name!r} has {n_slots} slot(s) "
                            f"(instruction {len(current.code)})",
                        )
                current.code.append(Instruction(op, value))
            else:
                if len(tokens) != 1:
                    raise AssemblyError(line_no, f"{head} takes no argument")
                current.code.append(Instruction(op))

        if current is not None:
            raise AssemblyError(len(source.splitlines()), "unterminated .func")
    except AssemblyError as exc:
        if exc.function is None and current is not None:
            raise AssemblyError(
                exc.line_no, exc.detail, current.name
            ) from None
        raise

    for func_name, index, callee, site_line in call_sites:
        if callee not in functions:
            raise AssemblyError(
                site_line,
                f"call to unknown function {callee!r} "
                f"(instruction {index} of {func_name!r})",
                func_name,
            )

    module = Module(
        functions=functions,
        memory_size=memory_size,
        buffers=buffers,
        globals=globals_,
        source=source,
    )
    module.validate()
    return module
