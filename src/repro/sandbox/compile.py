"""The compiled execution tier: threaded code + block fuel + a module cache.

The reference interpreter (:class:`repro.sandbox.vm.VM`) re-decodes every
instruction through a long ``if/elif`` chain and charges fuel one
instruction at a time. This module translates a validated
:class:`~repro.sandbox.module.Module` once into **threaded code**: a flat
list of bound closures, one per instruction, each returning the index of
the next closure to run. Dispatch is a list index plus a call — no Enum
identity tests, no attribute lookups, no fuel dict.

Three static proofs (from :mod:`repro.sandbox.verifier.facts`) pay for
the speed:

- **block fuel** — fuel is charged once per basic-block entry (a
  synthetic handler at each block leader) instead of once per
  instruction. Blocks end at control transfers *and* at suspension
  points (``CALL``/``HOST``), so ``fuel_used`` observed at any host-call
  boundary, completion, or trap equals the reference tier's exactly.
- **check elision** — operand-stack under/overflow checks are dropped
  (stack discipline is proven), frame-depth checks are dropped (static
  call depth is proven), and loads/stores whose address the interval
  analysis proved in range skip the bounds check — both constant
  addresses (the access is rewritten to a fixed offset) and dynamic
  ones whose whole value range fits in memory (the computed address is
  used unchecked).
- **equivalence by replay** — any trap (fuel, division, out-of-bounds)
  makes the compiled tier *bail*: the VM replays its interaction log
  (start arguments, resume results, embedder memory writes) on a fresh
  reference interpreter, which then produces the exact trap type,
  message, ``fuel_used``, and final memory — and keeps handling the
  session from there. The fast tier never has to reconstruct trap
  details; it only has to detect that one is coming.

Call frames are Python generators (``yield from`` for nesting), so a
``HOST`` instruction suspends the whole frame tree for free and
``resume`` is a plain ``generator.send``.

Process-wide, modules are compiled once: :func:`get_compiled` keys a
small LRU cache by ``Module.code_hash()``, so the marketplace's
``purchase_slot``, ``Executor.admit``, and every per-session VM share one
translation. Cache traffic is exported as ``vm_compile_cache_hits_total``
/ ``vm_compile_cache_misses_total`` counters and a ``vm_compile_seconds``
histogram; to keep same-seed runs byte-identical, hit/miss is judged
*per observability bundle* and the histogram observes the stored
translation time rather than re-measuring.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.sandbox.isa import Op
from repro.sandbox.module import ENTRY_POINT, Function, Module
from repro.sandbox.verifier.facts import (
    FactsUnavailable,
    FunctionFacts,
    StaticFacts,
    gather_facts,
)
from repro.sandbox.vm import HostCall

_MASK = (1 << 64) - 1
_SIGN = 1 << 63
_TWO64 = 1 << 64

#: frame actions a handler can request (``vm._action`` kinds).
_RET, _FALL, _CALL, _HOST = 0, 1, 2, 3
_RET_ACTION = (_RET, None, 0)
_FALL_ACTION = (_FALL, None, 0)


class _Bail(Exception):
    """The compiled tier hit (or is about to hit) a trap; replay on the
    reference interpreter for exact semantics."""


class CompileUnsupported(Exception):
    """The module cannot be proven safe for the compiled tier."""


class CompiledFunction:
    """One function's threaded code."""

    __slots__ = ("name", "n_params", "n_locals", "code")

    def __init__(self, name: str, n_params: int, n_locals: int) -> None:
        self.name = name
        self.n_params = n_params
        self.n_locals = n_locals
        self.code: list = []


class CompiledModule:
    """A module translated to threaded code, shareable across VMs.

    Handlers close over immutable compile-time data only (immediates,
    jump targets, callee references); all mutable machine state arrives
    as arguments, so one ``CompiledModule`` safely backs any number of
    concurrently-running VM instances.
    """

    __slots__ = ("code_hash", "functions", "entry", "compile_seconds",
                 "value_stack_peak", "call_depth", "elided_checks",
                 "elided_const", "elided_ranged")

    def __init__(self, code_hash: bytes, functions: dict[str, CompiledFunction],
                 facts: StaticFacts) -> None:
        self.code_hash = code_hash
        self.functions = functions
        self.entry = functions[ENTRY_POINT]
        self.compile_seconds = 0.0
        self.value_stack_peak = facts.value_stack_peak
        self.call_depth = facts.call_depth
        self.elided_const = sum(
            len(f.safe_accesses) for f in facts.functions.values()
        )
        self.elided_ranged = sum(
            len(f.inbounds_accesses) for f in facts.functions.values()
        )
        self.elided_checks = self.elided_const + self.elided_ranged


def run_frame(vm, cf: CompiledFunction, locals_: list):
    """Execute one frame of threaded code as a generator.

    Yields :class:`~repro.sandbox.vm.HostCall` at suspension points and
    receives the result list back via ``send``; returns the frame's
    (wrapped) return value. Mirrors the reference tier's frame
    discipline: the value stack is truncated to the frame's floor on
    every exit.
    """
    stack = vm._stack
    memory = vm.memory
    code = cf.code
    floor = len(stack)
    ip = 0
    while True:
        while ip >= 0:
            ip = code[ip](vm, stack, locals_, memory)
        kind, payload, resume_ip = vm._action
        if kind == _RET:
            value = stack.pop()
            del stack[floor:]
            return value
        if kind == _FALL:
            value = stack.pop() if len(stack) > floor else 0
            del stack[floor:]
            return value
        if kind == _CALL:
            base = len(stack) - payload.n_params
            callee_locals = stack[base:]
            del stack[base:]
            if payload.n_locals:
                callee_locals.extend([0] * payload.n_locals)
            stack.append((yield from run_frame(vm, payload, callee_locals)))
        else:  # _HOST
            results = yield payload
            for value in results:
                stack.append(int(value) & _MASK)
        ip = resume_ip


# --------------------------------------------------------- handler factories


def _fall(vm, stack, locals_, memory):
    vm._action = _FALL_ACTION
    return -1


def _ret(vm, stack, locals_, memory):
    vm._action = _RET_ACTION
    return -1


def _make_fuel(cost: int, nxt: int):
    def fuel(vm, stack, locals_, memory):
        used = vm.fuel_used + cost
        if used > vm.fuel_limit:
            raise _Bail
        vm.fuel_used = used
        return nxt
    return fuel


def _make_handler(module: Module, instruction, nxt: int, target: int | None,
                  safe_addr: int | None, ranged: bool,
                  functions: dict[str, CompiledFunction]):
    """Build the closure for one instruction.

    ``nxt`` is the threaded-code index of the fallthrough successor,
    ``target`` the remapped jump target (branches only), ``safe_addr``
    the proven-constant address for elidable memory accesses. ``ranged``
    means the interval analysis proved the (dynamic) address lies wholly
    inside memory: the handler keeps the computed address but skips the
    sign fix-up and bounds check — a proven-in-range address is
    non-negative, so its unsigned stack encoding is the address itself.
    """
    op = instruction.op
    arg = instruction.arg
    size = module.memory_size

    if op is Op.PUSH:
        k = int(arg) & _MASK

        def h(vm, stack, locals_, memory):
            stack.append(k)
            return nxt
    elif op is Op.DROP:
        def h(vm, stack, locals_, memory):
            del stack[-1]
            return nxt
    elif op is Op.DUP:
        def h(vm, stack, locals_, memory):
            stack.append(stack[-1])
            return nxt
    elif op is Op.SWAP:
        def h(vm, stack, locals_, memory):
            stack[-1], stack[-2] = stack[-2], stack[-1]
            return nxt
    elif op is Op.ADD:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] = (stack[-1] + b) & _MASK
            return nxt
    elif op is Op.SUB:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] = (stack[-1] - b) & _MASK
            return nxt
    elif op is Op.MUL:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] = (stack[-1] * b) & _MASK
            return nxt
    elif op in (Op.DIVS, Op.REMS):
        is_div = op is Op.DIVS

        def h(vm, stack, locals_, memory):
            b = stack.pop()
            a = stack[-1]
            if a >= _SIGN:
                a -= _TWO64
            if b >= _SIGN:
                b -= _TWO64
            if b == 0:
                raise _Bail
            if is_div:
                value = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    value = -value
            else:
                value = abs(a) % abs(b)
                if a < 0:
                    value = -value
            stack[-1] = value & _MASK
            return nxt
    elif op is Op.AND:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] &= b
            return nxt
    elif op is Op.OR:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] |= b
            return nxt
    elif op is Op.XOR:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] ^= b
            return nxt
    elif op is Op.SHL:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] = (stack[-1] << (b & 63)) & _MASK
            return nxt
    elif op is Op.SHRU:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] = stack[-1] >> (b & 63)
            return nxt
    elif op is Op.EQ:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] == b else 0
            return nxt
    elif op is Op.NE:
        def h(vm, stack, locals_, memory):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] != b else 0
            return nxt
    elif op in (Op.LTS, Op.GTS, Op.LES, Op.GES):
        kind = op

        def h(vm, stack, locals_, memory):
            b = stack.pop()
            a = stack[-1]
            if a >= _SIGN:
                a -= _TWO64
            if b >= _SIGN:
                b -= _TWO64
            if kind is Op.LTS:
                stack[-1] = 1 if a < b else 0
            elif kind is Op.GTS:
                stack[-1] = 1 if a > b else 0
            elif kind is Op.LES:
                stack[-1] = 1 if a <= b else 0
            else:
                stack[-1] = 1 if a >= b else 0
            return nxt
    elif op is Op.EQZ:
        def h(vm, stack, locals_, memory):
            stack[-1] = 0 if stack[-1] else 1
            return nxt
    elif op is Op.LOCAL_GET:
        i = int(arg)

        def h(vm, stack, locals_, memory):
            stack.append(locals_[i])
            return nxt
    elif op is Op.LOCAL_SET:
        i = int(arg)

        def h(vm, stack, locals_, memory):
            locals_[i] = stack.pop()
            return nxt
    elif op is Op.LOCAL_TEE:
        i = int(arg)

        def h(vm, stack, locals_, memory):
            locals_[i] = stack[-1]
            return nxt
    elif op is Op.GLOBAL_GET:
        name = arg

        def h(vm, stack, locals_, memory):
            stack.append(vm.globals[name])
            return nxt
    elif op is Op.GLOBAL_SET:
        name = arg

        def h(vm, stack, locals_, memory):
            vm.globals[name] = stack.pop()
            return nxt
    elif op is Op.LOAD8:
        if safe_addr is not None:
            k = safe_addr

            def h(vm, stack, locals_, memory):
                stack[-1] = memory[k]
                return nxt
        elif ranged:
            def h(vm, stack, locals_, memory):
                stack[-1] = memory[stack[-1]]
                return nxt
        else:
            def h(vm, stack, locals_, memory):
                a = stack[-1]
                if a >= _SIGN:
                    a -= _TWO64
                if a < 0 or a >= size:
                    raise _Bail
                stack[-1] = memory[a]
                return nxt
    elif op is Op.STORE8:
        if safe_addr is not None:
            k = safe_addr

            def h(vm, stack, locals_, memory):
                memory[k] = stack.pop() & 0xFF
                del stack[-1]
                return nxt
        elif ranged:
            def h(vm, stack, locals_, memory):
                value = stack.pop()
                memory[stack.pop()] = value & 0xFF
                return nxt
        else:
            def h(vm, stack, locals_, memory):
                value = stack.pop()
                a = stack.pop()
                if a >= _SIGN:
                    a -= _TWO64
                if a < 0 or a >= size:
                    raise _Bail
                memory[a] = value & 0xFF
                return nxt
    elif op is Op.LOAD64:
        limit = size - 8
        if safe_addr is not None:
            k, k_end = safe_addr, safe_addr + 8

            def h(vm, stack, locals_, memory):
                stack[-1] = int.from_bytes(memory[k:k_end], "little")
                return nxt
        elif ranged:
            def h(vm, stack, locals_, memory):
                a = stack[-1]
                stack[-1] = int.from_bytes(memory[a:a + 8], "little")
                return nxt
        else:
            def h(vm, stack, locals_, memory):
                a = stack[-1]
                if a >= _SIGN:
                    a -= _TWO64
                if a < 0 or a > limit:
                    raise _Bail
                stack[-1] = int.from_bytes(memory[a:a + 8], "little")
                return nxt
    elif op is Op.STORE64:
        limit = size - 8
        if safe_addr is not None:
            k, k_end = safe_addr, safe_addr + 8

            def h(vm, stack, locals_, memory):
                memory[k:k_end] = stack.pop().to_bytes(8, "little")
                del stack[-1]
                return nxt
        elif ranged:
            def h(vm, stack, locals_, memory):
                value = stack.pop()
                a = stack.pop()
                memory[a:a + 8] = value.to_bytes(8, "little")
                return nxt
        else:
            def h(vm, stack, locals_, memory):
                value = stack.pop()
                a = stack.pop()
                if a >= _SIGN:
                    a -= _TWO64
                if a < 0 or a > limit:
                    raise _Bail
                memory[a:a + 8] = value.to_bytes(8, "little")
                return nxt
    elif op is Op.JMP:
        t = target

        def h(vm, stack, locals_, memory):
            return t
    elif op is Op.JZ:
        t = target

        def h(vm, stack, locals_, memory):
            return t if stack.pop() == 0 else nxt
    elif op is Op.JNZ:
        t = target

        def h(vm, stack, locals_, memory):
            return t if stack.pop() != 0 else nxt
    elif op is Op.CALL:
        callee = functions[arg]
        action = (_CALL, callee, nxt)

        def h(vm, stack, locals_, memory):
            vm._action = action
            return -1
    elif op is Op.RET:
        return _ret
    elif op is Op.HOST:
        name = arg
        from repro.sandbox.hostops import HOST_OPS

        n_args = HOST_OPS[name][0]
        if n_args:
            def h(vm, stack, locals_, memory):
                base = len(stack) - n_args
                raw = stack[base:]
                del stack[base:]
                vm._action = (_HOST, HostCall(name, tuple(
                    (v - _TWO64) if v >= _SIGN else v for v in raw
                )), nxt)
                return -1
        else:
            def h(vm, stack, locals_, memory):
                vm._action = (_HOST, HostCall(name, ()), nxt)
                return -1
    elif op is Op.NOP:
        def h(vm, stack, locals_, memory):
            return nxt
    else:  # pragma: no cover - exhaustive over the ISA
        raise CompileUnsupported(f"unhandled opcode {op}")
    return h


def _translate_function(module: Module, function: Function, facts: FunctionFacts,
                        functions: dict[str, CompiledFunction]) -> list:
    """Lay out one function's threaded code.

    Layout: ``[fuel?, instr]*  fall`` — a synthetic fuel handler precedes
    the first instruction of every basic block, and a shared fall-off
    handler sits at the end. Jump targets are remapped to the target
    block's *fuel* handler so every block entry pays its fuel exactly
    once, matching the reference tier's per-instruction charging summed
    over the block.
    """
    code = function.code
    leaders = set(facts.leaders)
    entry_pos: dict[int, int] = {}
    instr_pos: dict[int, int] = {}
    cursor = 0
    for index in range(len(code)):
        if index in leaders:
            entry_pos[index] = cursor
            cursor += 1
        instr_pos[index] = cursor
        cursor += 1
    fall_pos = cursor

    def arrival(index: int) -> int:
        if index >= len(code):
            return fall_pos
        return entry_pos.get(index, instr_pos[index])

    out: list = [None] * (fall_pos + 1)
    for index, instruction in enumerate(code):
        if index in leaders:
            out[entry_pos[index]] = _make_fuel(
                facts.block_fuel[index], instr_pos[index]
            )
        target = None
        if instruction.op in (Op.JMP, Op.JZ, Op.JNZ):
            target = entry_pos[int(instruction.arg)]
        out[instr_pos[index]] = _make_handler(
            module, instruction, arrival(index + 1), target,
            facts.safe_accesses.get(index),
            index in facts.inbounds_accesses, functions,
        )
    out[fall_pos] = _fall
    return out


def compile_module(module: Module) -> CompiledModule:
    """Translate ``module`` to threaded code.

    Raises :class:`CompileUnsupported` when the static proofs the tier
    relies on are unavailable (the caller should use the reference tier).
    """
    started = time.perf_counter()
    try:
        facts = gather_facts(module)
    except FactsUnavailable as exc:
        raise CompileUnsupported(str(exc)) from exc
    functions = {
        name: CompiledFunction(name, f.n_params, f.n_locals)
        for name, f in module.functions.items()
    }
    for name, function in module.functions.items():
        functions[name].code = _translate_function(
            module, function, facts.functions[name], functions
        )
    compiled = CompiledModule(module.code_hash(), functions, facts)
    compiled.compile_seconds = time.perf_counter() - started
    return compiled


# ------------------------------------------------------------------ cache


class CompileCache:
    """Process-wide LRU of compiled modules, keyed by bytecode hash.

    Uncompilable modules are cached as ``None`` so their (expensive)
    analysis runs once, not once per session. ``stats()`` exposes the
    counters the marketplace-scenario tests assert on.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[bytes, CompiledModule | None] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._compiles = 0
        self._unsupported = 0

    def get(self, module: Module, obs=None) -> CompiledModule | None:
        key = module.code_hash()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                entry = self._entries[key]
                self._hits += 1
                self._record_obs(obs, key, entry)
                return entry
        # Translate outside the lock: compilation is pure, and a rare
        # duplicate translation beats serialising every admission.
        try:
            entry = compile_module(module)
        except CompileUnsupported:
            entry = None
        with self._lock:
            if key in self._entries:
                entry = self._entries[key]
                self._entries.move_to_end(key)
            else:
                self._entries[key] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                if entry is None:
                    self._unsupported += 1
                else:
                    self._compiles += 1
            self._misses += 1
            self._record_obs(obs, key, entry)
        return entry

    @staticmethod
    def _record_obs(obs, key: bytes, entry: CompiledModule | None) -> None:
        """Count hit/miss per observability bundle, not per process.

        The process cache outlives a scenario, so judging hit/miss
        against it would make the second same-seed run emit different
        counters than the first. Each bundle keeps its own seen-hash set
        and the histogram observes the *stored* translation time, which
        keeps same-seed exports byte-identical.
        """
        if obs is None:
            return
        seen = getattr(obs, "_vm_compile_seen", None)
        if seen is None:
            seen = set()
            obs._vm_compile_seen = seen
        if key in seen:
            obs.metrics.counter("vm_compile_cache_hits_total").inc()
        else:
            seen.add(key)
            obs.metrics.counter("vm_compile_cache_misses_total").inc()
            if entry is not None:
                obs.metrics.histogram("vm_compile_seconds").observe(
                    entry.compile_seconds
                )

    def stats(self) -> dict:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "compiles": self._compiles,
                "unsupported": self._unsupported,
                "entries": len(self._entries),
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = 0
            self._compiles = self._unsupported = 0


_CACHE = CompileCache()


def compile_cache() -> CompileCache:
    """The process-wide cache instance."""
    return _CACHE


def get_compiled(module: Module, obs=None) -> CompiledModule | None:
    """Compiled form of ``module`` via the process cache.

    Returns ``None`` when the module is not provable for the compiled
    tier; callers fall back to the reference interpreter.
    """
    return _CACHE.get(module, obs=obs)
