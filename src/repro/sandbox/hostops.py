"""Host operations: the narrow API between a Debuglet and its executor.

The paper's executor gives WA bytecode (1) protocol-namespaced send and
receive buffers and (2) an API to request packet transmission and
reception, plus an output buffer for results (§IV-B). These are the
corresponding operations. Every argument and result is a 64-bit integer;
bulk data moves through the module's declared buffers.

``net_recv`` writes a 32-byte header followed by the payload into the
receive buffer::

    offset 0:  source contact index (or -1 if the sender is not a contact)
    offset 8:  source port
    offset 16: sequence number
    offset 24: receive timestamp (microseconds)

Protocols are named by their IP protocol number (17=UDP, 6=TCP, 1=ICMP,
201=raw IP), matching :class:`repro.netsim.packet.Protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SandboxError
from repro.netsim.packet import Protocol

#: op name -> (number of i64 arguments, number of i64 results)
HOST_OPS: dict[str, tuple[int, int]] = {
    "now_us": (0, 1),  # -> current time in microseconds
    "sleep_until_us": (1, 1),  # (wake_time_us) -> 0; blocks
    "net_send": (5, 1),  # (proto, contact_idx, dst_port, seq, size) -> 1
    "net_recv": (2, 1),  # (proto, timeout_us) -> payload size or -1; blocks
    "net_reply": (3, 1),  # (proto, seq, size) -> 1 or 0 (nothing to reply to)
    "result_i64": (1, 1),  # (value) -> 0; append 8 bytes to the output
    "result_bytes": (2, 1),  # (offset, length) -> 0; append from memory
    "log_i64": (1, 1),  # (value) -> 0; debug channel
    "rand_u32": (0, 1),  # -> executor-provided randomness (e.g. TCP seq)
}

#: Header size net_recv prepends in the receive buffer.
RECV_HEADER_SIZE = 32

#: Ops that can suspend the program while simulated time passes.
BLOCKING_OPS = frozenset({"sleep_until_us", "net_recv"})

_I64_MAX = (1 << 63) - 1


@dataclass(frozen=True)
class HostEffect:
    """Static semantics of one host op — the single source of truth the
    verifier's dataflow analyses (intervals, taint, effect sequencing)
    read, cross-checked against :data:`HOST_OPS` and the executor
    dispatch by the drift test."""

    #: semantic role of each popped argument, deepest first
    arg_roles: tuple[str, ...]
    #: signed interval ``[lo, hi]`` the i64 result always lies in
    result_range: tuple[int, int]
    #: provenance kind of the result: net | time | rand | const
    result_taint: str
    #: may suspend the program while simulated time passes
    blocking: bool
    #: writes the protocol's receive buffer (header + payload)
    writes_recv_buffer: bool = False
    #: reads linear memory (emits/sends bulk data out of the sandbox)
    reads_memory: bool = False


#: op name -> :class:`HostEffect`. ``proto`` as the first role marks the
#: op as a network op (capability inference keys off this).
HOST_EFFECTS: dict[str, HostEffect] = {
    "now_us": HostEffect((), (0, _I64_MAX), "time", blocking=False),
    "sleep_until_us": HostEffect(
        ("wake_time_us",), (0, 0), "const", blocking=True
    ),
    "net_send": HostEffect(
        ("proto", "contact_idx", "dst_port", "seq", "size"),
        (1, 1), "const", blocking=False, reads_memory=True,
    ),
    "net_recv": HostEffect(
        ("proto", "timeout_us"), (-1, _I64_MAX), "net",
        blocking=True, writes_recv_buffer=True,
    ),
    "net_reply": HostEffect(
        ("proto", "seq", "size"), (0, 1), "const", blocking=False,
    ),
    "result_i64": HostEffect(("value",), (0, 0), "const", blocking=False),
    "result_bytes": HostEffect(
        ("offset", "length"), (0, 0), "const",
        blocking=False, reads_memory=True,
    ),
    "log_i64": HostEffect(("value",), (0, 0), "const", blocking=False),
    "rand_u32": HostEffect((), (0, (1 << 32) - 1), "rand", blocking=False),
}


def net_ops() -> tuple[str, ...]:
    """Host ops that take a wire protocol as their first argument."""
    return tuple(
        name for name, effect in HOST_EFFECTS.items()
        if effect.arg_roles[:1] == ("proto",)
    )


def arity_of(name: str) -> int:
    """Number of arguments ``name`` pops; trap on unknown ops."""
    if name not in HOST_OPS:
        raise SandboxError(f"unknown host operation {name!r}")
    return HOST_OPS[name][0]


_PROTOCOLS_BY_NUMBER = {p.wire_number: p for p in Protocol}


def protocol_from_number(number: int) -> Protocol:
    """Map a wire protocol number to :class:`Protocol`; trap if unknown."""
    protocol = _PROTOCOLS_BY_NUMBER.get(number)
    if protocol is None:
        raise SandboxError(f"unsupported protocol number {number}")
    return protocol
