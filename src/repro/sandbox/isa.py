"""Instruction set of the Debuglet bytecode VM.

A deliberately small, WebAssembly-flavoured stack machine: 64-bit integer
values, structured locals per call frame, a byte-addressed linear memory,
and explicit ``HOST`` instructions for everything that touches the outside
world. Every instruction costs fuel, which is how executors bound a
Debuglet to "a finite number of instructions" (§IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.Enum):
    """Opcodes. The comment gives stack effect ``before -- after``."""

    PUSH = "push"  # -- v              (arg: immediate)
    DROP = "drop"  # v --
    DUP = "dup"  # v -- v v
    SWAP = "swap"  # a b -- b a

    ADD = "add"  # a b -- a+b
    SUB = "sub"  # a b -- a-b
    MUL = "mul"  # a b -- a*b
    DIVS = "divs"  # a b -- a//b       (signed; traps on b == 0)
    REMS = "rems"  # a b -- a%b        (signed; traps on b == 0)
    AND = "and"  # a b -- a&b
    OR = "or"  # a b -- a|b
    XOR = "xor"  # a b -- a^b
    SHL = "shl"  # a b -- a<<b
    SHRU = "shru"  # a b -- a>>b      (logical)

    EQ = "eq"  # a b -- (a==b)
    NE = "ne"  # a b -- (a!=b)
    LTS = "lts"  # a b -- (a<b signed)
    GTS = "gts"  # a b -- (a>b signed)
    LES = "les"  # a b -- (a<=b signed)
    GES = "ges"  # a b -- (a>=b signed)
    EQZ = "eqz"  # a -- (a==0)

    LOCAL_GET = "local_get"  # -- v    (arg: local index)
    LOCAL_SET = "local_set"  # v --    (arg: local index)
    LOCAL_TEE = "local_tee"  # v -- v  (arg: local index)
    GLOBAL_GET = "global_get"  # -- v  (arg: global name)
    GLOBAL_SET = "global_set"  # v --  (arg: global name)

    LOAD8 = "load8"  # addr -- byte
    STORE8 = "store8"  # addr v --
    LOAD64 = "load64"  # addr -- v     (little-endian)
    STORE64 = "store64"  # addr v --

    JMP = "jmp"  # --                  (arg: target index)
    JZ = "jz"  # c --                  (arg: target index; jump if c == 0)
    JNZ = "jnz"  # c --                (arg: target index; jump if c != 0)
    CALL = "call"  # args... -- ret    (arg: function name)
    RET = "ret"  # v --                (returns top of stack)

    HOST = "host"  # args... -- rets   (arg: host op name)
    NOP = "nop"  # --


#: Fuel cost per instruction; HOST calls are an order of magnitude dearer,
#: matching the relative expense of a sandbox boundary crossing.
FUEL_COST = {op: 1 for op in Op}
FUEL_COST[Op.HOST] = 16
FUEL_COST[Op.CALL] = 4


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: Op
    arg: int | str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.op.value if self.arg is None else f"{self.op.value} {self.arg}"


_NEEDS_INT_ARG = {
    Op.PUSH,
    Op.LOCAL_GET,
    Op.LOCAL_SET,
    Op.LOCAL_TEE,
    Op.JMP,
    Op.JZ,
    Op.JNZ,
}
_NEEDS_STR_ARG = {Op.GLOBAL_GET, Op.GLOBAL_SET, Op.CALL, Op.HOST}


def validate_instruction(instruction: Instruction) -> None:
    """Raise ``ValueError`` when the argument kind does not match the op."""
    op, arg = instruction.op, instruction.arg
    if op in _NEEDS_INT_ARG:
        if not isinstance(arg, int):
            raise ValueError(f"{op.value} requires an integer argument, got {arg!r}")
    elif op in _NEEDS_STR_ARG:
        if not isinstance(arg, str):
            raise ValueError(f"{op.value} requires a name argument, got {arg!r}")
    elif arg is not None:
        raise ValueError(f"{op.value} takes no argument, got {arg!r}")
