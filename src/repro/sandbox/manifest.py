"""Debuglet manifests: declared resource needs, evaluated before execution.

Per §IV-B, a Debuglet ships with a manifest containing its resource
requirements (CPU, duration, memory, packet counts), the addresses it will
contact, and the capabilities it needs. The remote AS evaluates the
manifest *before* running anything; at run time the executor enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ManifestError
from repro.netsim.packet import Address, Protocol
from repro.sandbox.module import Module

#: Provenance kinds a policy may declare as legitimate emission sources:
#: data derived from received packets, executor timestamps, executor
#: randomness. Constant/manifest-derived data is always allowed.
KNOWN_EMIT_SOURCES = ("net", "time", "rand")


@dataclass(frozen=True)
class DebugletPolicy:
    """Declarative output policy: what a purchased Debuglet may emit.

    This is the statically *proven* half of the contract an initiator
    buys (the manifest's resource ceilings are the enforced-at-runtime
    half). The verifier's taint/interval analyses certify, before any
    escrow moves, that

    - every ``result_i64``/``result_bytes`` emission derives only from
      the declared ``emit_sources`` (plus constants);
    - every ``net_send``/``net_reply`` size is provably at most
      ``max_send_size`` (when set);
    - every network call's protocol is in ``allowed_protocols`` (when
      set; None falls back to the manifest's capabilities).

    A program that cannot be *proven* compliant is rejected — the policy
    buys certainty, not best effort.
    """

    emit_sources: tuple[str, ...] = KNOWN_EMIT_SOURCES
    max_send_size: int | None = None
    allowed_protocols: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        unknown = set(self.emit_sources) - set(KNOWN_EMIT_SOURCES)
        if unknown:
            raise ManifestError(f"unknown emission sources: {sorted(unknown)}")
        if self.max_send_size is not None and self.max_send_size < 0:
            raise ManifestError("max_send_size must be non-negative")
        if self.allowed_protocols is not None:
            bad = set(self.allowed_protocols) - set(KNOWN_CAPABILITIES)
            if bad:
                raise ManifestError(f"unknown protocols: {sorted(bad)}")

    def as_dict(self) -> dict:
        return {
            "emit_sources": list(self.emit_sources),
            "max_send_size": self.max_send_size,
            "allowed_protocols": (
                None if self.allowed_protocols is None
                else list(self.allowed_protocols)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DebugletPolicy":
        allowed = data.get("allowed_protocols")
        return cls(
            emit_sources=tuple(data.get("emit_sources", KNOWN_EMIT_SOURCES)),
            max_send_size=data.get("max_send_size"),
            allowed_protocols=None if allowed is None else tuple(allowed),
        )


@dataclass(frozen=True)
class Manifest:
    """Resource and policy declaration accompanying a Debuglet.

    ``contacts`` is the ordered list of remote addresses the program may
    reach; host ops name peers by index into it, so the program physically
    cannot address anything undeclared.
    """

    max_instructions: int
    max_duration: float
    max_memory_bytes: int
    max_packets_sent: int
    max_packets_received: int
    contacts: tuple[Address, ...] = ()
    capabilities: tuple[str, ...] = ()
    max_result_bytes: int = 65536
    #: optional output policy, statically proven by the verifier before
    #: escrow; None means no emission restrictions beyond the above.
    policy: DebugletPolicy | None = None

    def __post_init__(self) -> None:
        if self.max_instructions <= 0:
            raise ManifestError("max_instructions must be positive")
        if self.max_duration <= 0:
            raise ManifestError("max_duration must be positive")
        if self.max_memory_bytes <= 0:
            raise ManifestError("max_memory_bytes must be positive")
        if self.max_packets_sent < 0 or self.max_packets_received < 0:
            raise ManifestError("packet limits must be non-negative")
        if self.max_result_bytes <= 0:
            raise ManifestError("max_result_bytes must be positive")
        unknown = set(self.capabilities) - set(KNOWN_CAPABILITIES)
        if unknown:
            raise ManifestError(f"unknown capabilities: {sorted(unknown)}")

    def allows_protocol(self, protocol: Protocol) -> bool:
        return protocol.name.lower() in self.capabilities

    def validate_module(self, module: Module) -> None:
        """Static admission check of a module against this manifest.

        Besides the memory ceiling, the manifest's declared capabilities
        must cover every network protocol the bytecode can statically be
        shown to use — a Debuglet cannot under-declare its way past an
        executor's capability policy. When a protocol argument is not
        statically derivable the check is left to runtime enforcement.
        """
        if module.memory_size > self.max_memory_bytes:
            raise ManifestError(
                f"module memory {module.memory_size} exceeds declared "
                f"{self.max_memory_bytes}"
            )
        from repro.sandbox.verifier import infer_capabilities

        used, derivable = infer_capabilities(module)
        if derivable:
            undeclared = used - set(self.capabilities)
            if undeclared:
                raise ManifestError(
                    f"module uses capabilities not declared in the "
                    f"manifest: {sorted(undeclared)}"
                )

    def as_dict(self) -> dict:
        """Serializable form (stored alongside the application on-chain)."""
        return {
            "max_instructions": self.max_instructions,
            "max_duration": self.max_duration,
            "max_memory_bytes": self.max_memory_bytes,
            "max_packets_sent": self.max_packets_sent,
            "max_packets_received": self.max_packets_received,
            "contacts": [[c.asn, c.host] for c in self.contacts],
            "capabilities": list(self.capabilities),
            "max_result_bytes": self.max_result_bytes,
            "policy": None if self.policy is None else self.policy.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Manifest":
        return cls(
            max_instructions=data["max_instructions"],
            max_duration=data["max_duration"],
            max_memory_bytes=data["max_memory_bytes"],
            max_packets_sent=data["max_packets_sent"],
            max_packets_received=data["max_packets_received"],
            contacts=tuple(Address(asn, host) for asn, host in data["contacts"]),
            capabilities=tuple(data["capabilities"]),
            max_result_bytes=data.get("max_result_bytes", 65536),
            policy=(
                None if data.get("policy") is None
                else DebugletPolicy.from_dict(data["policy"])
            ),
        )


#: Capabilities a manifest may request: one per probe protocol.
KNOWN_CAPABILITIES = ("udp", "tcp", "icmp", "raw_ip")


@dataclass(frozen=True)
class ExecutorPolicy:
    """An AS's admission policy for foreign Debuglets (§IV-B).

    A manifest is admitted only if every declared requirement fits under
    the policy's ceilings and every requested capability is offered.

    ``verification`` selects how the executor treats the ahead-of-time
    bytecode verifier's verdict: ``"strict"`` (default) refuses modules
    with any verification error, ``"warn"`` admits them but relies on
    the runtime traps, ``"off"`` skips static verification entirely.
    """

    max_instructions: int = 100_000_000
    max_duration: float = 3600.0
    max_memory_bytes: int = 16 * 1024 * 1024
    max_packets_sent: int = 1_000_000
    max_packets_received: int = 1_000_000
    max_result_bytes: int = 1024 * 1024
    offered_capabilities: tuple[str, ...] = KNOWN_CAPABILITIES
    blocked_asns: frozenset[int] = frozenset()
    verification: str = "strict"

    def __post_init__(self) -> None:
        if self.verification not in ("strict", "warn", "off"):
            raise ManifestError(
                f"verification mode {self.verification!r} is not one of "
                "'strict', 'warn', 'off'"
            )

    def admit(self, manifest: Manifest) -> None:
        """Raise :class:`ManifestError` when the manifest is inadmissible."""
        checks = [
            ("max_instructions", manifest.max_instructions, self.max_instructions),
            ("max_duration", manifest.max_duration, self.max_duration),
            ("max_memory_bytes", manifest.max_memory_bytes, self.max_memory_bytes),
            ("max_packets_sent", manifest.max_packets_sent, self.max_packets_sent),
            (
                "max_packets_received",
                manifest.max_packets_received,
                self.max_packets_received,
            ),
            ("max_result_bytes", manifest.max_result_bytes, self.max_result_bytes),
        ]
        for name, asked, ceiling in checks:
            if asked > ceiling:
                raise ManifestError(f"{name}: requested {asked} > policy {ceiling}")
        missing = set(manifest.capabilities) - set(self.offered_capabilities)
        if missing:
            raise ManifestError(f"capabilities not offered: {sorted(missing)}")
        for contact in manifest.contacts:
            if contact.asn in self.blocked_asns:
                raise ManifestError(f"contact AS {contact.asn} is blocked by policy")
