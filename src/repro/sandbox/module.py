"""Bytecode modules: the unit a Debuglet is shipped and priced as.

A module declares its linear-memory size, named buffer regions (the
paper's ``udp_send_buffer``-style namespaces), globals, and functions. The
entry point must be called ``run_debuglet`` (§IV-B). ``encoded()`` gives
the canonical byte representation used for on-chain storage costs and the
code hash that executors certify.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.errors import SandboxError
from repro.common.serialize import canonical_encode
from repro.sandbox.isa import Instruction, Op, validate_instruction

ENTRY_POINT = "run_debuglet"

#: Hard ceiling on module memory, mirroring a small WA instance.
MAX_MEMORY_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class BufferSpec:
    """A named region of linear memory used by host I/O."""

    name: str
    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size <= 0:
            raise SandboxError(f"invalid buffer {self.name}: off={self.offset} size={self.size}")

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass
class Function:
    """One function: ``n_params`` arguments become locals 0..n-1."""

    name: str
    n_params: int
    n_locals: int
    code: list[Instruction] = field(default_factory=list)

    def validate(self) -> None:
        if self.n_params < 0 or self.n_locals < 0:
            raise SandboxError(f"function {self.name}: negative params/locals")
        for index, instruction in enumerate(self.code):
            try:
                validate_instruction(instruction)
            except ValueError as exc:
                raise SandboxError(f"{self.name}@{index}: {exc}") from exc
            if instruction.op in (Op.JMP, Op.JZ, Op.JNZ):
                target = instruction.arg
                if not 0 <= int(target) < len(self.code):
                    raise SandboxError(
                        f"{self.name}@{index}: jump target {target} out of range"
                    )


@dataclass
class Module:
    """A validated Debuglet bytecode module."""

    functions: dict[str, Function]
    memory_size: int = 65536
    buffers: dict[str, BufferSpec] = field(default_factory=dict)
    globals: dict[str, int] = field(default_factory=dict)
    source: str = ""

    def validate(self) -> None:
        """Check structural invariants; raise :class:`SandboxError` if bad."""
        if ENTRY_POINT not in self.functions:
            raise SandboxError(f"module lacks entry point {ENTRY_POINT!r}")
        if not 0 < self.memory_size <= MAX_MEMORY_BYTES:
            raise SandboxError(f"memory size {self.memory_size} out of range")
        for function in self.functions.values():
            function.validate()
            for instruction in function.code:
                if instruction.op is Op.CALL and instruction.arg not in self.functions:
                    raise SandboxError(f"call to unknown function {instruction.arg!r}")
                if instruction.op in (Op.GLOBAL_GET, Op.GLOBAL_SET):
                    if instruction.arg not in self.globals:
                        raise SandboxError(f"unknown global {instruction.arg!r}")
        for buffer in self.buffers.values():
            if buffer.end > self.memory_size:
                raise SandboxError(
                    f"buffer {buffer.name} [{buffer.offset}, {buffer.end}) exceeds memory"
                )

    def buffer(self, *names: str) -> BufferSpec:
        """First declared buffer among ``names`` (protocol-specific first)."""
        for name in names:
            if name in self.buffers:
                return self.buffers[name]
        raise SandboxError(f"module declares none of the buffers {names}")

    def encoded(self) -> bytes:
        """Canonical byte encoding (what gets stored on-chain).

        Memoised: modules are treated as immutable once constructed
        (the assembler and wire decoder both produce finished modules),
        and the encoding is re-requested for pricing, certification, and
        the compiled-module cache key.
        """
        cached = self.__dict__.get("_encoded_cache")
        if cached is None:
            cached = self._encode()
            self.__dict__["_encoded_cache"] = cached
        return cached

    def _encode(self) -> bytes:
        return canonical_encode(
            {
                "memory": self.memory_size,
                "buffers": [
                    [b.name, b.offset, b.size]
                    for b in sorted(self.buffers.values(), key=lambda b: b.name)
                ],
                "globals": {k: v for k, v in sorted(self.globals.items())},
                "functions": [
                    [
                        f.name,
                        f.n_params,
                        f.n_locals,
                        [
                            [i.op.value, i.arg if i.arg is not None else ""]
                            for i in f.code
                        ],
                    ]
                    for f in sorted(self.functions.values(), key=lambda f: f.name)
                ],
            }
        )

    def code_hash(self) -> bytes:
        """SHA-256 of the canonical encoding; what executors certify.

        Memoised alongside :meth:`encoded`; this is the compiled-module
        cache key, looked up once per admission and once per session VM.
        """
        cached = self.__dict__.get("_code_hash_cache")
        if cached is None:
            cached = hashlib.sha256(self.encoded()).digest()
            self.__dict__["_code_hash_cache"] = cached
        return cached

    @property
    def size_bytes(self) -> int:
        """Size of the shipped bytecode, for pricing (Table II)."""
        return len(self.encoded())

    def instruction_count(self) -> int:
        return sum(len(f.code) for f in self.functions.values())


def disassemble(module: "Module") -> str:
    """Render a module back to assembly text.

    The output re-assembles to a module with the same code hash as the
    original (comments and label names from the original source are not
    preserved; jump targets become ``L<index>`` labels).
    """
    lines: list[str] = [f".memory {module.memory_size}"]
    for buffer in sorted(module.buffers.values(), key=lambda b: b.offset):
        lines.append(f".buffer {buffer.name} {buffer.offset} {buffer.size}")
    for name, value in sorted(module.globals.items()):
        lines.append(f".global {name} {value}")
    for function in module.functions.values():
        lines.append(
            f".func {function.name} {function.n_params} {function.n_locals}"
        )
        targets = {
            instruction.arg
            for instruction in function.code
            if instruction.op in (Op.JMP, Op.JZ, Op.JNZ)
        }
        for index, instruction in enumerate(function.code):
            if index in targets:
                lines.append(f"L{index}:")
            if instruction.op in (Op.JMP, Op.JZ, Op.JNZ):
                lines.append(f"    {instruction.op.value} L{instruction.arg}")
            elif instruction.arg is None:
                lines.append(f"    {instruction.op.value}")
            else:
                lines.append(f"    {instruction.op.value} {instruction.arg}")
        # A jump target at the very end of the function needs its label.
        if len(function.code) in targets:
            lines.append(f"L{len(function.code)}:")
            lines.append("    nop")
        lines.append(".end")
    return "\n".join(lines) + "\n"
