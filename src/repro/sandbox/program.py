"""Runnable programs: the executor-facing interface for Debuglets.

An executor drives a program as a sequence of *steps*: it begins the
program, receives :class:`ProgramCall` requests (host operations), performs
them against the simulated network, and resumes the program with results
until :class:`ProgramDone`.

Two implementations exist:

- :class:`VMProgram` — sandboxed bytecode in the :class:`~repro.sandbox.vm.VM`
  (the paper's WebAssembly Debuglets). Marshals payloads between host calls
  and the module's declared buffers.
- :class:`NativeProgram` — a plain Python generator using the same host
  ops (the paper's native Go applications, the A2A baseline of Fig 8).
  No metering, no memory isolation, no host-switch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.common.errors import SandboxError
from repro.sandbox.hostops import HOST_OPS, RECV_HEADER_SIZE, protocol_from_number
from repro.sandbox.module import Module
from repro.sandbox.vm import VM, Done, HostCall


@dataclass
class ReceivedData:
    """What a successful ``net_recv`` hands back to the program."""

    contact_index: int
    src_port: int
    seq: int
    recv_time_us: int
    payload: bytes


@dataclass
class ProgramCall:
    """A host operation the program wants performed."""

    op: str
    args: tuple[int, ...]
    payload: bytes | None = None  # outgoing bytes for net_send / result_bytes


@dataclass
class ProgramDone:
    """The program finished with ``run_debuglet``'s return value."""

    value: int


Step = ProgramCall | ProgramDone


class RunnableProgram:
    """Interface executors drive. Subclasses implement begin/resume."""

    is_sandboxed: bool = False

    def begin(self, args: list[int] | None = None) -> Step:
        raise NotImplementedError

    def resume(self, result: int, data: ReceivedData | None = None) -> Step:
        raise NotImplementedError

    @property
    def fuel_used(self) -> int:
        return 0


#: Tier used by :class:`VMProgram` when none is requested explicitly.
#: "auto" compiles modules whose static proofs hold and falls back to the
#: reference interpreter otherwise; scenarios and the marketplace thus run
#: on the compiled tier by default (DESIGN.md §10). Benchmarks flip this
#: to "reference" to measure the interpreter baseline.
DEFAULT_TIER = "auto"


class VMProgram(RunnableProgram):
    """A sandboxed bytecode Debuglet."""

    is_sandboxed = True

    def __init__(
        self, module: Module, *, fuel_limit: int = 10_000_000, obs=None,
        tier: str | None = None,
    ) -> None:
        self.module = module
        self.vm = VM(
            module, fuel_limit=fuel_limit, obs=obs,
            tier=tier if tier is not None else DEFAULT_TIER,
        )
        self._pending: HostCall | None = None

    @property
    def tier(self) -> str:
        """The tier actually selected ("compiled" or "reference")."""
        return self.vm.tier

    @property
    def fuel_used(self) -> int:
        return self.vm.fuel_used

    def begin(self, args: list[int] | None = None) -> Step:
        return self._translate(self.vm.start(args))

    def resume(self, result: int, data: ReceivedData | None = None) -> Step:
        if self._pending is None:
            raise SandboxError("program is not awaiting a host call")
        call = self._pending
        self._pending = None
        if call.name == "net_recv" and data is not None:
            self._write_received(call, data)
        return self._translate(self.vm.resume([result]))

    def _translate(self, step: HostCall | Done) -> Step:
        if isinstance(step, Done):
            return ProgramDone(step.value)
        self._pending = step
        payload = self._outgoing_payload(step)
        return ProgramCall(step.name, step.args, payload)

    def _outgoing_payload(self, call: HostCall) -> bytes | None:
        if call.name == "net_send":
            proto = protocol_from_number(call.args[0])
            size = call.args[4]
            buffer = self.module.buffer(
                f"{proto.name.lower()}_send_buffer", "send_buffer"
            )
            if size < 0 or size > buffer.size:
                raise SandboxError(
                    f"net_send size {size} exceeds buffer {buffer.name}"
                )
            return self.vm.read_memory(buffer.offset, size)
        if call.name == "result_bytes":
            offset, length = call.args
            return self.vm.read_memory(offset, length)
        return None

    def _write_received(self, call: HostCall, data: ReceivedData) -> None:
        proto = protocol_from_number(call.args[0])
        buffer = self.module.buffer(
            f"{proto.name.lower()}_recv_buffer", "recv_buffer"
        )
        needed = RECV_HEADER_SIZE + len(data.payload)
        if needed > buffer.size:
            raise SandboxError(
                f"received {len(data.payload)} bytes exceed buffer {buffer.name}"
            )
        header = b"".join(
            value.to_bytes(8, "little", signed=True)
            for value in (
                data.contact_index,
                data.src_port,
                data.seq,
                data.recv_time_us,
            )
        )
        self.vm.write_memory(buffer.offset, header + data.payload)


NativeBody = Generator[tuple, tuple, int]


class NativeProgram(RunnableProgram):
    """An unsandboxed program: a generator yielding host-op tuples.

    The generator yields ``(op, args, payload)`` and receives
    ``(result, data)`` back at each yield; its ``return`` value becomes the
    program result. Example::

        def body():
            t, _ = yield ("now_us", (), None)
            _ = yield ("net_send", (17, 0, 7, 1, 64), b"x" * 64)
            return 0
    """

    is_sandboxed = False

    def __init__(self, body_factory: Callable[[], NativeBody]) -> None:
        self._generator = body_factory()
        self._started = False

    def begin(self, args: list[int] | None = None) -> Step:
        if self._started:
            raise SandboxError("program already started")
        self._started = True
        try:
            yielded = next(self._generator)
        except StopIteration as stop:
            return ProgramDone(stop.value if stop.value is not None else 0)
        return self._check(yielded)

    def resume(self, result: int, data: ReceivedData | None = None) -> Step:
        try:
            yielded = self._generator.send((result, data))
        except StopIteration as stop:
            return ProgramDone(stop.value if stop.value is not None else 0)
        return self._check(yielded)

    @staticmethod
    def _check(yielded: tuple) -> ProgramCall:
        if not (isinstance(yielded, tuple) and len(yielded) == 3):
            raise SandboxError(f"native program yielded malformed op: {yielded!r}")
        op, args, payload = yielded
        if op not in HOST_OPS:
            raise SandboxError(f"native program yielded unknown op {op!r}")
        return ProgramCall(op, tuple(int(a) for a in args), payload)
