"""Stock Debuglet programs, generated as assembly and compiled to modules.

These are the reproduction's equivalents of the paper's Rust-to-WA sample
Debuglets (§V-A): an echo client that measures RTT and loss, an echo
server, and a one-way sender/receiver pair for unidirectional measurements
(§III). Each factory returns the compiled module plus a manifest sized to
the requested workload.

Result encoding convention (shared by the native twins): the output buffer
is a sequence of i64 little-endian values, in (key, value) pairs —
``(seq, rtt_us)`` for echo clients, ``(seq, timestamp_us)`` for one-way
programs, and a single ``(count,)`` trailer for servers. Decode with
:func:`decode_result_pairs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SandboxError
from repro.netsim.packet import Address, Protocol
from repro.sandbox.assembler import assemble
from repro.sandbox.manifest import DebugletPolicy, Manifest
from repro.sandbox.module import Module

DEFAULT_TIMEOUT_US = 2_000_000
DEFAULT_DRAIN_US = 2_000_000


@dataclass(frozen=True)
class StockProgram:
    """A compiled module with its matching manifest."""

    module: Module
    manifest: Manifest


def _align(value: int, boundary: int = 64) -> int:
    return (value + boundary - 1) // boundary * boundary


def decode_result_pairs(result: bytes) -> list[tuple[int, int]]:
    """Decode the (key, value) i64-pair result encoding."""
    if len(result) % 8 != 0:
        raise SandboxError(f"result length {len(result)} is not a multiple of 8")
    values = [
        int.from_bytes(result[i : i + 8], "little", signed=True)
        for i in range(0, len(result), 8)
    ]
    if len(values) % 2 != 0:
        raise SandboxError("result does not contain whole (key, value) pairs")
    return list(zip(values[0::2], values[1::2]))


def echo_client(
    protocol: Protocol,
    server: Address,
    *,
    count: int,
    interval_us: int = 1_000_000,
    size: int = 64,
    dst_port: int = 7,
    timeout_us: int = DEFAULT_TIMEOUT_US,
    drain_us: int = DEFAULT_DRAIN_US,
) -> StockProgram:
    """An RTT/loss measuring client: send ``count`` probes, match replies.

    Per-sequence send times are kept in a table in linear memory so
    out-of-order replies still yield correct RTTs. Results are
    ``(seq, rtt_us)`` pairs for every reply received.
    """
    if count <= 0:
        raise SandboxError("count must be positive")
    proto = protocol.name.lower()
    send_off, send_size = 0, max(size, 8)
    recv_off = _align(send_off + send_size)
    recv_size = 32 + max(size, 8)
    table_off = _align(recv_off + recv_size)
    memory = _align(table_off + count * 8, 4096)
    seq_addr = recv_off + 16

    source = f"""
; echo client: {proto} x{count} to contact 0, {size}B every {interval_us}us
.memory {memory}
.buffer {proto}_send_buffer {send_off} {send_size}
.buffer {proto}_recv_buffer {recv_off} {recv_size}

.func record_reply 0 2        ; locals: seq, rtt
    push {seq_addr}
    load64
    local_set 0               ; seq = recv header.seq
    host now_us
    local_get 0
    push 8
    mul
    push {table_off}
    add
    load64
    sub
    local_set 1               ; rtt = now - table[seq]
    local_get 0
    host result_i64
    drop
    local_get 1
    host result_i64
    drop
    push 0
    ret
.end

.func run_debuglet 0 3        ; locals: i, start, recv_size
    host now_us
    local_set 1               ; start = now
loop:
    local_get 0
    push {count}
    ges
    jnz drain                 ; all probes sent
    local_get 0
    push 8
    mul
    push {table_off}
    add
    host now_us
    store64                   ; table[i] = now (send timestamp)
    push {protocol.wire_number}
    push 0
    push {dst_port}
    local_get 0
    push {size}
    host net_send
    drop
    push {protocol.wire_number}
    push {timeout_us}
    host net_recv
    local_set 2
    local_get 2
    push 0
    lts
    jnz no_reply              ; timeout: loss recorded implicitly
    call record_reply
    drop
no_reply:
    local_get 0
    push 1
    add
    push {interval_us}
    mul
    local_get 1
    add
    host sleep_until_us
    drop
    local_get 0
    push 1
    add
    local_set 0
    jmp loop
drain:
    push {protocol.wire_number}
    push {drain_us}
    host net_recv
    local_set 2
    local_get 2
    push 0
    lts
    jnz done
    call record_reply
    drop
    jmp drain
done:
    push 0
    ret
.end
"""
    module = assemble(source)
    manifest = Manifest(
        max_instructions=800 * count + 50_000,
        max_duration=count * interval_us / 1e6 + (timeout_us + drain_us) / 1e6 + 10.0,
        max_memory_bytes=memory,
        max_packets_sent=count,
        max_packets_received=count,
        contacts=(server,),
        capabilities=(proto,),
        max_result_bytes=16 * count + 64,
        policy=DebugletPolicy(
            emit_sources=("net", "time"),
            max_send_size=max(size, 8),
            allowed_protocols=(proto,),
        ),
    )
    return StockProgram(module, manifest)


def echo_server(
    protocol: Protocol,
    *,
    max_echoes: int,
    idle_timeout_us: int = 5_000_000,
    size: int = 64,
) -> StockProgram:
    """Echo every probe back to its sender; finish when idle.

    The result is a single ``(0, echo_count)`` pair, so the initiator can
    cross-check how many probes arrived at the far vantage point.
    """
    if max_echoes <= 0:
        raise SandboxError("max_echoes must be positive")
    proto = protocol.name.lower()
    recv_off = 0
    recv_size = 32 + max(size, 8)
    memory = _align(recv_off + recv_size, 4096)
    seq_addr = recv_off + 16

    source = f"""
; echo server: {proto}, up to {max_echoes} echoes, idle timeout {idle_timeout_us}us
.memory {memory}
.buffer {proto}_recv_buffer {recv_off} {recv_size}

.func run_debuglet 0 2        ; locals: count, recv_size
loop:
    local_get 0
    push {max_echoes}
    ges
    jnz done
    push {protocol.wire_number}
    push {idle_timeout_us}
    host net_recv
    local_set 1
    local_get 1
    push 0
    lts
    jnz done                  ; idle: no probe within the timeout
    push {protocol.wire_number}
    push {seq_addr}
    load64
    local_get 1
    host net_reply
    drop
    local_get 0
    push 1
    add
    local_set 0
    jmp loop
done:
    push 0
    host result_i64
    drop
    local_get 0
    host result_i64
    drop
    push 0
    ret
.end
"""
    module = assemble(source)
    manifest = Manifest(
        max_instructions=400 * max_echoes + 50_000,
        max_duration=max_echoes * 2.0 + idle_timeout_us / 1e6 + 10.0,
        max_memory_bytes=memory,
        max_packets_sent=max_echoes,
        max_packets_received=max_echoes,
        contacts=(),
        capabilities=(proto,),
        max_result_bytes=64,
        policy=DebugletPolicy(
            emit_sources=(),
            max_send_size=max(size, 8),
            allowed_protocols=(proto,),
        ),
    )
    return StockProgram(module, manifest)


def oneway_sender(
    protocol: Protocol,
    receiver: Address,
    *,
    count: int,
    interval_us: int = 1_000_000,
    size: int = 64,
    dst_port: int = 9000,
) -> StockProgram:
    """Send a probe train and record ``(seq, send_time_us)`` pairs.

    Combined with :func:`oneway_receiver` on the far side, the initiator
    computes per-direction delay and loss — the paper's unidirectional
    measurement requirement (§III).
    """
    if count <= 0:
        raise SandboxError("count must be positive")
    proto = protocol.name.lower()
    send_size = max(size, 8)
    memory = _align(send_size, 4096)

    source = f"""
; one-way sender: {proto} x{count} to contact 0
.memory {memory}
.buffer {proto}_send_buffer 0 {send_size}

.func run_debuglet 0 2        ; locals: i, start
    host now_us
    local_set 1
loop:
    local_get 0
    push {count}
    ges
    jnz done
    local_get 0
    host result_i64
    drop
    host now_us
    host result_i64
    drop
    push {protocol.wire_number}
    push 0
    push {dst_port}
    local_get 0
    push {size}
    host net_send
    drop
    local_get 0
    push 1
    add
    push {interval_us}
    mul
    local_get 1
    add
    host sleep_until_us
    drop
    local_get 0
    push 1
    add
    local_set 0
    jmp loop
done:
    push 0
    ret
.end
"""
    module = assemble(source)
    manifest = Manifest(
        max_instructions=600 * count + 50_000,
        max_duration=count * interval_us / 1e6 + 10.0,
        max_memory_bytes=memory,
        max_packets_sent=count,
        max_packets_received=0,
        contacts=(receiver,),
        capabilities=(proto,),
        max_result_bytes=16 * count + 64,
        policy=DebugletPolicy(
            emit_sources=("time",),
            max_send_size=max(size, 8),
            allowed_protocols=(proto,),
        ),
    )
    return StockProgram(module, manifest)


def oneway_receiver(
    protocol: Protocol,
    *,
    max_probes: int,
    idle_timeout_us: int = 5_000_000,
    size: int = 64,
) -> StockProgram:
    """Record ``(seq, arrival_time_us)`` for every probe received."""
    if max_probes <= 0:
        raise SandboxError("max_probes must be positive")
    proto = protocol.name.lower()
    recv_off = 0
    recv_size = 32 + max(size, 8)
    memory = _align(recv_off + recv_size, 4096)
    seq_addr = recv_off + 16
    time_addr = recv_off + 24

    source = f"""
; one-way receiver: {proto}, up to {max_probes} probes
.memory {memory}
.buffer {proto}_recv_buffer {recv_off} {recv_size}

.func run_debuglet 0 2        ; locals: count, recv_size
loop:
    local_get 0
    push {max_probes}
    ges
    jnz done
    push {protocol.wire_number}
    push {idle_timeout_us}
    host net_recv
    local_set 1
    local_get 1
    push 0
    lts
    jnz done
    push {seq_addr}
    load64
    host result_i64
    drop
    push {time_addr}
    load64
    host result_i64
    drop
    local_get 0
    push 1
    add
    local_set 0
    jmp loop
done:
    push 0
    ret
.end
"""
    module = assemble(source)
    manifest = Manifest(
        max_instructions=400 * max_probes + 50_000,
        max_duration=max_probes * 2.0 + idle_timeout_us / 1e6 + 10.0,
        max_memory_bytes=memory,
        max_packets_sent=0,
        max_packets_received=max_probes,
        contacts=(),
        capabilities=(proto,),
        max_result_bytes=16 * max_probes + 64,
        policy=DebugletPolicy(
            emit_sources=("net", "time"),
            allowed_protocols=(proto,),
        ),
    )
    return StockProgram(module, manifest)
