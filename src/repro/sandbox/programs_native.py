"""Native twins of the stock Debuglets (the paper's Go applications).

Fig 8 compares Debuglet-to-Debuglet (sandboxed both sides) against
application-to-application (native both sides) and the two mixed cases.
These generators implement *exactly* the same measurement logic as the
assembly programs in :mod:`repro.sandbox.programs`, through the same host
ops, but run unmetered and without sandbox host-switch overhead.
"""

from __future__ import annotations


from repro.netsim.packet import Protocol
from repro.sandbox.program import NativeBody, NativeProgram


def native_echo_client(
    protocol: Protocol,
    *,
    count: int,
    interval_us: int = 1_000_000,
    size: int = 64,
    dst_port: int = 7,
    timeout_us: int = 2_000_000,
    drain_us: int = 2_000_000,
) -> NativeProgram:
    """Native RTT/loss client; results are (seq, rtt_us) pairs."""
    proto = protocol.wire_number
    payload = bytes(size)

    def body() -> NativeBody:
        send_times: dict[int, int] = {}

        def record(data, now):
            return [("result_i64", (data.seq,), None), ("result_i64", (now - send_times[data.seq],), None)]

        start, _ = yield ("now_us", (), None)
        for i in range(count):
            now, _ = yield ("now_us", (), None)
            send_times[i] = now
            yield ("net_send", (proto, 0, dst_port, i, size), payload)
            code, data = yield ("net_recv", (proto, timeout_us), None)
            if code >= 0 and data is not None and data.seq in send_times:
                now, _ = yield ("now_us", (), None)
                for op in record(data, now):
                    yield op
            yield ("sleep_until_us", (start + (i + 1) * interval_us,), None)
        while True:
            code, data = yield ("net_recv", (proto, drain_us), None)
            if code < 0 or data is None:
                break
            if data.seq in send_times:
                now, _ = yield ("now_us", (), None)
                for op in record(data, now):
                    yield op
        return 0

    return NativeProgram(body)


def native_echo_server(
    protocol: Protocol,
    *,
    max_echoes: int,
    idle_timeout_us: int = 5_000_000,
) -> NativeProgram:
    """Native echo server; result is a single (0, echo_count) pair."""
    proto = protocol.wire_number

    def body() -> NativeBody:
        echoes = 0
        while echoes < max_echoes:
            code, data = yield ("net_recv", (proto, idle_timeout_us), None)
            if code < 0 or data is None:
                break
            yield ("net_reply", (proto, data.seq, len(data.payload)), None)
            echoes += 1
        yield ("result_i64", (0,), None)
        yield ("result_i64", (echoes,), None)
        return 0

    return NativeProgram(body)


def native_oneway_sender(
    protocol: Protocol,
    *,
    count: int,
    interval_us: int = 1_000_000,
    size: int = 64,
    dst_port: int = 9000,
) -> NativeProgram:
    """Native one-way sender; results are (seq, send_time_us) pairs."""
    proto = protocol.wire_number
    payload = bytes(size)

    def body() -> NativeBody:
        start, _ = yield ("now_us", (), None)
        for i in range(count):
            now, _ = yield ("now_us", (), None)
            yield ("result_i64", (i,), None)
            yield ("result_i64", (now,), None)
            yield ("net_send", (proto, 0, dst_port, i, size), payload)
            yield ("sleep_until_us", (start + (i + 1) * interval_us,), None)
        return 0

    return NativeProgram(body)


def native_oneway_receiver(
    protocol: Protocol,
    *,
    max_probes: int,
    idle_timeout_us: int = 5_000_000,
) -> NativeProgram:
    """Native one-way receiver; results are (seq, arrival_us) pairs."""
    proto = protocol.wire_number

    def body() -> NativeBody:
        received = 0
        while received < max_probes:
            code, data = yield ("net_recv", (proto, idle_timeout_us), None)
            if code < 0 or data is None:
                break
            yield ("result_i64", (data.seq,), None)
            yield ("result_i64", (data.recv_time_us,), None)
            received += 1
        return 0

    return NativeProgram(body)
