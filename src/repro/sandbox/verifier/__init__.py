"""Ahead-of-time static verification of Debuglet bytecode.

The verifier proves, before a Debuglet is bought or run, that a module is
structurally sound, stack-safe, memory-safe where derivable, fuel-bounded
under its manifest, and exercises only declared capabilities. See
:func:`verify_module` for the pipeline and DESIGN.md for the rationale.
"""

from repro.sandbox.verifier.diagnostics import Diagnostic, Severity
from repro.sandbox.verifier.fuel import FuelVerdict
from repro.sandbox.verifier.verifier import (
    VerificationReport,
    infer_capabilities,
    verify_module,
)

__all__ = [
    "Diagnostic",
    "FuelVerdict",
    "Severity",
    "VerificationReport",
    "infer_capabilities",
    "verify_module",
]
