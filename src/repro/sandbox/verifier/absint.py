"""Constant-propagating abstract interpretation of Debuglet bytecode.

A classic two-level lattice per value — ``Const(k)`` or ``Top`` (any
value) — propagated through a per-instruction abstract stack and abstract
locals, joined at control-flow merges. The lattice has height 2, so the
fixpoint converges in a couple of sweeps with no widening machinery.

Two analyses consume the result:

- **memory**: ``LOAD*/STORE*`` (and ``HOST result_bytes``) whose address
  operand is a constant are proven in-bounds against the module's linear
  memory; a constant address that falls outside is a certain
  :class:`~repro.common.errors.MemoryFault` and is rejected ahead of
  time. Non-constant addresses stay runtime-checked (reported as info).
- **capabilities**: the protocol argument of every reachable
  ``net_send/net_recv/net_reply`` host call is extracted where constant,
  which is what lets the verifier infer the exact capability set a
  program can exercise (cross-checked against its manifest).

Constant arithmetic follows the VM bit-for-bit (64-bit wrapping, signed
comparisons); a constant divisor of zero is reported as a provable trap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sandbox.hostops import HOST_OPS
from repro.sandbox.isa import Op
from repro.sandbox.module import Function, Module
from repro.sandbox.verifier import diagnostics as d
from repro.sandbox.verifier.cfg import FunctionCFG
from repro.sandbox.vm import _signed, _wrap

#: Abstract value: an ``int`` constant (wrapped to 64 bits) or TOP.
TOP = None

_NET_OPS = ("net_send", "net_recv", "net_reply")

#: width of each memory access op
_ACCESS_WIDTH = {Op.LOAD8: 1, Op.STORE8: 1, Op.LOAD64: 8, Op.STORE64: 8}
_STORE_OPS = (Op.STORE8, Op.STORE64)


@dataclass(frozen=True)
class HostSite:
    """One reachable ``HOST`` instruction with its derived protocol."""

    function: str
    instruction: int
    op: str
    #: wire protocol number when statically constant, else None
    protocol: int | None = None


@dataclass
class FunctionAbstract:
    """Outcome of abstractly interpreting one function."""

    diagnostics: list[d.Diagnostic] = field(default_factory=list)
    host_sites: list[HostSite] = field(default_factory=list)
    #: instruction index -> constant address proven in-bounds for that
    #: access (loads/stores only). The compiled tier elides the runtime
    #: bounds check at exactly these sites.
    safe_accesses: dict[int, int] = field(default_factory=dict)
    #: False when the safety valve cut the fixpoint short; consumers must
    #: then treat :attr:`safe_accesses` as empty.
    converged: bool = True


def _join(a, b):
    return a if a == b else TOP


def _join_state(a: tuple, b: tuple) -> tuple:
    return tuple(_join(x, y) for x, y in zip(a, b))


def _binary(op: Op, lhs: int, rhs: int) -> int | None:
    """Constant-fold one binary op with VM semantics; None on trap."""
    if op is Op.ADD:
        return _wrap(lhs + rhs)
    if op is Op.SUB:
        return _wrap(lhs - rhs)
    if op is Op.MUL:
        return _wrap(lhs * rhs)
    if op in (Op.DIVS, Op.REMS):
        a, b = _signed(lhs), _signed(rhs)
        if b == 0:
            return None
        if op is Op.DIVS:
            quotient = abs(a) // abs(b)
            return _wrap(-quotient if (a < 0) != (b < 0) else quotient)
        remainder = abs(a) % abs(b)
        return _wrap(-remainder if a < 0 else remainder)
    if op is Op.AND:
        return lhs & rhs
    if op is Op.OR:
        return lhs | rhs
    if op is Op.XOR:
        return lhs ^ rhs
    if op is Op.SHL:
        return _wrap(lhs << (rhs & 63))
    if op is Op.SHRU:
        return _wrap(lhs) >> (rhs & 63)
    a, b = _signed(lhs), _signed(rhs)
    return {
        Op.EQ: int(a == b), Op.NE: int(a != b), Op.LTS: int(a < b),
        Op.GTS: int(a > b), Op.LES: int(a <= b), Op.GES: int(a >= b),
    }[op]


def mutable_global_names(module: Module) -> frozenset[str]:
    """Globals written anywhere in the module (their reads are TOP)."""
    written = set()
    for function in module.functions.values():
        for instruction in function.code:
            if instruction.op is Op.GLOBAL_SET:
                written.add(instruction.arg)
    return frozenset(written)


def analyze_function(
    module: Module, function: Function, cfg: FunctionCFG
) -> FunctionAbstract:
    """Run the constant analysis; requires a stack-valid function."""
    result = FunctionAbstract()
    if not function.code:
        return result
    mutable_globals = mutable_global_names(module)
    n_slots = function.n_params + function.n_locals

    # state = (stack tuple, locals tuple); params unknown, locals zeroed.
    initial_locals = (TOP,) * function.n_params + (0,) * function.n_locals
    states: dict[int, tuple[tuple, tuple]] = {0: ((), initial_locals)}
    worklist = [0]
    sweeps = 0
    flagged: set[tuple[int, str]] = set()

    def flag(index: int, diagnostic: d.Diagnostic) -> None:
        key = (index, diagnostic.code)
        if key not in flagged:
            flagged.add(key)
            result.diagnostics.append(diagnostic)

    host_protocols: dict[int, tuple[str, int | None]] = {}

    while worklist:
        index = worklist.pop()
        sweeps += 1
        if sweeps > 64 * (len(function.code) + 1):  # safety valve
            result.converged = False
            break
        stack, locals_ = states[index]
        instruction = function.code[index]
        op, arg = instruction.op, instruction.arg
        stack = list(stack)

        if op is Op.PUSH:
            stack.append(_wrap(arg))
        elif op is Op.DROP:
            stack.pop()
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op in (Op.JZ, Op.JNZ):
            stack.pop()
        elif op is Op.EQZ:
            value = stack.pop()
            stack.append(TOP if value is TOP else int(value == 0))
        elif op in (Op.LOCAL_GET, Op.LOCAL_SET, Op.LOCAL_TEE):
            if not 0 <= arg < n_slots:
                flag(index, d.error(
                    d.BAD_LOCAL_INDEX,
                    f"local index {arg} out of range (function has {n_slots})",
                    function.name, index,
                ))
                continue
            if op is Op.LOCAL_GET:
                stack.append(locals_[arg])
            elif op is Op.LOCAL_SET:
                locals_ = locals_[:arg] + (stack.pop(),) + locals_[arg + 1:]
            else:
                locals_ = locals_[:arg] + (stack[-1],) + locals_[arg + 1:]
        elif op is Op.GLOBAL_GET:
            value = module.globals.get(arg)
            stack.append(
                TOP if arg in mutable_globals or value is None else _wrap(value)
            )
        elif op is Op.GLOBAL_SET:
            stack.pop()
        elif op in _ACCESS_WIDTH:
            width = _ACCESS_WIDTH[op]
            if op in _STORE_OPS:
                stack.pop()  # stored value
                address = stack.pop()
            else:
                address = stack.pop()
                stack.append(TOP)
            _check_access(module, function, index, address, width, flag)
        elif op is Op.CALL:
            callee = module.functions[arg]
            del stack[len(stack) - callee.n_params:]
            stack.append(TOP)
        elif op is Op.HOST:
            n_args, n_results = HOST_OPS[arg]
            args = stack[len(stack) - n_args:] if n_args else []
            del stack[len(stack) - n_args:]
            stack.extend([TOP] * n_results)
            if arg in _NET_OPS:
                protocol = args[0] if args and args[0] is not TOP else None
                known = host_protocols.get(index)
                if known is None:
                    host_protocols[index] = (arg, protocol)
                elif known[1] != protocol:
                    host_protocols[index] = (arg, None)
            else:
                host_protocols.setdefault(index, (arg, None))
            if arg == "result_bytes" and len(args) == 2:
                offset, length = args
                if offset is not TOP and length is not TOP:
                    off, ln = _signed(offset), _signed(length)
                    if off < 0 or ln < 0 or off + ln > module.memory_size:
                        flag(index, d.error(
                            d.MEMORY_OUT_OF_BOUNDS,
                            f"result_bytes [{off}, {off + ln}) outside memory "
                            f"of {module.memory_size} bytes",
                            function.name, index,
                        ))
        elif op in (Op.DIVS, Op.REMS, Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR,
                    Op.XOR, Op.SHL, Op.SHRU, Op.EQ, Op.NE, Op.LTS, Op.GTS,
                    Op.LES, Op.GES):
            rhs, lhs = stack.pop(), stack.pop()
            if op in (Op.DIVS, Op.REMS) and rhs == 0:
                flag(index, d.warning(
                    d.DIVISION_BY_ZERO,
                    f"{op.value} with a constant zero divisor always traps",
                    function.name, index,
                ))
            if lhs is TOP or rhs is TOP:
                stack.append(TOP)
            else:
                stack.append(_binary(op, lhs, rhs))
        # JMP, RET, NOP: no stack change beyond the checker's model.

        out_state = (tuple(stack), locals_)
        for successor in cfg.successors[index]:
            known = states.get(successor)
            if known is None:
                states[successor] = out_state
                worklist.append(successor)
            else:
                joined = (
                    _join_state(known[0], out_state[0]),
                    _join_state(known[1], out_state[1]),
                )
                if joined != known:
                    states[successor] = joined
                    worklist.append(successor)

    if result.converged:
        # Post-fixpoint pass: a load/store whose address operand is a
        # constant within bounds *in the final joined state* can never
        # fault, so the compiled tier may skip its runtime check.
        for index, (stack, _locals) in states.items():
            op = function.code[index].op
            width = _ACCESS_WIDTH.get(op)
            if width is None:
                continue
            position = -2 if op in _STORE_OPS else -1
            if len(stack) < -position:
                continue
            address = stack[position]
            if address is TOP:
                continue
            addr = _signed(address)
            if 0 <= addr and addr + width <= module.memory_size:
                result.safe_accesses[index] = addr

    result.host_sites = [
        HostSite(function.name, index, op_name, protocol)
        for index, (op_name, protocol) in sorted(host_protocols.items())
    ]
    return result


def _check_access(module, function, index, address, width, flag) -> None:
    if address is TOP:
        flag(index, d.info(
            d.MEMORY_NOT_DERIVABLE,
            f"{width}-byte access address not statically derivable "
            "(bounds-checked at run time)",
            function.name, index,
        ))
        return
    addr = _signed(address)
    if addr < 0 or addr + width > module.memory_size:
        flag(index, d.error(
            d.MEMORY_OUT_OF_BOUNDS,
            f"{width}-byte access at {addr} outside memory of "
            f"{module.memory_size} bytes",
            function.name, index,
        ))
