"""Interval- and taint-propagating abstract interpretation of bytecode.

The per-value lattice combines two domains:

- an **interval** (:mod:`.intervals`) abstracting the signed-64 range a
  word can take, joined at control-flow merges and widened at loop heads
  so the fixpoint terminates. Singleton intervals subsume the old
  constants-only lattice; non-singleton ones additionally prove computed
  addresses (``(i & 511) * 8``) and loop induction variables in-bounds.
- a **taint set** of provenance :data:`Tag` s — which ``net_recv`` /
  ``now_us`` / ``rand_u32`` call sites a value (transitively) derives
  from. Constants carry the empty set.

Branch refinement makes the intervals path-sensitive where it matters:
comparison results remember which local they tested (a *predicate
token*), and a conditional jump meets the implied constraint into that
local on each outgoing edge; an empty meet marks the edge infeasible.

Per-function analysis is driven either standalone (capability inference,
:mod:`.facts`) or by :mod:`.taint`'s module-level fixpoint, which
supplies an :class:`AnalysisContext` — memory/global taint maps and
interprocedural parameter/return summaries — and consumes the memory
writes, global writes, call arguments, and host-call argument facts
collected here.

Three consumers read the result:

- **memory**: ``LOAD*/STORE*`` (and ``HOST result_bytes``) accesses whose
  address interval provably fits the linear memory are safe — constant
  ones feed :attr:`FunctionAbstract.safe_accesses`, bounded dynamic ones
  :attr:`FunctionAbstract.inbounds_accesses`; the compiled tier elides
  the runtime bounds check at both. An interval provably *outside*
  memory is a certain :class:`~repro.common.errors.MemoryFault`,
  rejected ahead of time.
- **capabilities**: the protocol argument of every reachable network
  host call, where constant (V50x cross-checks).
- **policy**: per host site, the joined interval and taint of every
  argument (:class:`HostSite`), which :mod:`.taint` checks against the
  manifest's policy block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol

from repro.common.errors import SandboxError
from repro.sandbox.hostops import (
    HOST_EFFECTS,
    HOST_OPS,
    RECV_HEADER_SIZE,
    net_ops,
    protocol_from_number,
)
from repro.sandbox.isa import Op
from repro.sandbox.module import Function, Module
from repro.sandbox.verifier import diagnostics as d
from repro.sandbox.verifier import intervals as iv
from repro.sandbox.verifier.cfg import FunctionCFG
from repro.sandbox.verifier.intervals import Interval

#: Provenance tag: ``(kind, function, instruction)`` of the originating
#: host call. Kinds are ``net``, ``time``, ``rand``; values derived only
#: from constants/immediates carry the empty tag set.
Tag = tuple[str, str, int]

TaintSet = frozenset  # of Tag

NO_TAINT: TaintSet = frozenset()

_NET_OPS = net_ops()

#: width of each memory access op
_ACCESS_WIDTH = {Op.LOAD8: 1, Op.STORE8: 1, Op.LOAD64: 8, Op.STORE64: 8}
_STORE_OPS = (Op.STORE8, Op.STORE64)

_BINARY_OPS = (
    Op.ADD, Op.SUB, Op.MUL, Op.DIVS, Op.REMS, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHRU,
)
_COMPARE_OPS = (Op.EQ, Op.NE, Op.LTS, Op.GTS, Op.LES, Op.GES)

#: joins into the same instruction before intervals are widened
_WIDEN_AFTER = 3


@dataclass(frozen=True)
class AbsVal:
    """One abstract stack/local slot: interval x taint, plus optional
    markers — ``local`` when the value is a live copy of that local slot,
    ``pred`` when it is the boolean result of comparing local ``pred[0]``
    against the interval ``pred[2]`` with op ``pred[1]``."""

    interval: Interval
    taint: TaintSet = NO_TAINT
    local: int | None = None
    pred: tuple[int, Op, Interval] | None = None

    def untracked(self) -> "AbsVal":
        return AbsVal(self.interval, self.taint)


def join_vals(a: AbsVal, b: AbsVal) -> AbsVal:
    return AbsVal(
        a.interval.join(b.interval),
        a.taint | b.taint,
        a.local if a.local == b.local else None,
        a.pred if a.pred == b.pred else None,
    )


class MemoryTaintMap(TypingProtocol):  # pragma: no cover - structural only
    """What the analysis needs from :class:`repro.sandbox.verifier.taint
    .MemoryTaint` (kept structural to avoid an import cycle)."""

    def read(self, lo: int, hi: int) -> TaintSet: ...


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural summary of one callee, from :mod:`.taint`."""

    #: joined abstract return value; None before the callee was analysed
    returns: AbsVal | None = None


@dataclass
class AnalysisContext:
    """Module-level facts the per-function analysis reads and feeds.

    Standalone callers (capability inference, facts gathering) pass no
    context: memory and global reads are then *untainted* — sound for
    those consumers, which ignore taint — and calls return TOP.
    """

    memory_taint: MemoryTaintMap | None = None
    global_taints: dict[str, TaintSet] = field(default_factory=dict)
    #: function name -> joined abstract argument values at its call sites
    param_values: dict[str, tuple[AbsVal, ...]] = field(default_factory=dict)
    summaries: dict[str, FunctionSummary] = field(default_factory=dict)


@dataclass(frozen=True)
class MemWrite:
    """One (possibly imprecise) tainted store: byte range ``[lo, hi)``."""

    lo: int
    hi: int
    taint: TaintSet
    function: str
    instruction: int


@dataclass(frozen=True)
class HostSite:
    """One reachable ``HOST`` instruction with its derived argument facts."""

    function: str
    instruction: int
    op: str
    #: wire protocol number when statically constant, else None
    protocol: int | None = None
    #: joined interval of each argument across all abstract visits
    arg_intervals: tuple[Interval, ...] = ()
    #: joined taint of each argument across all abstract visits
    arg_taints: tuple[TaintSet, ...] = ()


@dataclass
class FunctionAbstract:
    """Outcome of abstractly interpreting one function."""

    diagnostics: list[d.Diagnostic] = field(default_factory=list)
    host_sites: list[HostSite] = field(default_factory=list)
    #: instruction index -> constant address proven in-bounds for that
    #: access (loads/stores only). The compiled tier elides the runtime
    #: bounds check at exactly these sites.
    safe_accesses: dict[int, int] = field(default_factory=dict)
    #: instruction index -> (lo, hi) address interval proven in-bounds
    #: for a *dynamic* access; the compiled tier elides these checks too.
    inbounds_accesses: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: tainted stores performed (for the module-level memory fixpoint)
    mem_writes: list[MemWrite] = field(default_factory=list)
    #: (global name, taint) per GLOBAL_SET executed
    global_writes: list[tuple[str, TaintSet]] = field(default_factory=list)
    #: callee name -> joined abstract argument tuple at this caller's sites
    call_args: dict[str, tuple[AbsVal, ...]] = field(default_factory=dict)
    #: joined abstract value at RET sites; None if the function never returns
    returns: AbsVal | None = None
    #: False when the safety valve cut the fixpoint short; consumers must
    #: then treat proofs (safe/inbounds accesses, taint) as unavailable.
    converged: bool = True


def mutable_global_names(module: Module) -> frozenset[str]:
    """Globals written anywhere in the module (their reads are TOP)."""
    written = set()
    for function in module.functions.values():
        for instruction in function.code:
            if instruction.op is Op.GLOBAL_SET:
                written.add(instruction.arg)
    return frozenset(written)


def _join_state(
    a: tuple[AbsVal, ...], b: tuple[AbsVal, ...]
) -> tuple[AbsVal, ...]:
    return tuple(join_vals(x, y) for x, y in zip(a, b))


def _widen_state(
    old: tuple[AbsVal, ...], new: tuple[AbsVal, ...]
) -> tuple[AbsVal, ...]:
    return tuple(
        AbsVal(o.interval.widen(n.interval), n.taint, n.local, n.pred)
        for o, n in zip(old, new)
    )


def _refine_against_local(
    stack: tuple[AbsVal, ...],
    locals_: tuple[AbsVal, ...],
    slot: int,
    constraint: Interval,
) -> tuple[tuple[AbsVal, ...], tuple[AbsVal, ...]] | None:
    """Meet ``constraint`` into local ``slot`` and every live stack copy
    of it; None when the meet is empty (the edge is infeasible)."""
    met = locals_[slot].interval.meet(constraint)
    if met is None:
        return None
    current = locals_[slot]
    locals_ = locals_[:slot] + (
        AbsVal(met, current.taint, current.local, current.pred),
    ) + locals_[slot + 1:]
    refined_stack = tuple(
        AbsVal(value.interval.meet(constraint) or value.interval,
               value.taint, value.local, value.pred)
        if value.local == slot else value
        for value in stack
    )
    return refined_stack, locals_


def _refine_edge(
    stack: tuple[AbsVal, ...],
    locals_: tuple[AbsVal, ...],
    condition: AbsVal,
    holds: bool,
) -> tuple[tuple[AbsVal, ...], tuple[AbsVal, ...]] | None:
    """State after learning the branch condition is true (``holds``) or
    false on this edge; None when the edge is infeasible."""
    if condition.interval.is_const and (condition.interval.lo != 0) != holds:
        return None
    if not holds and not condition.interval.contains(0):
        return None  # condition is provably nonzero: false edge dead
    if condition.pred is not None:
        slot, op, rhs = condition.pred
        constraint = iv.constrain(op if holds else iv.NEGATED[op], rhs)
        return _refine_against_local(stack, locals_, slot, constraint)
    if condition.local is not None and not holds:
        # The condition IS a copy of the local; false means it is zero.
        return _refine_against_local(
            stack, locals_, condition.local, iv.FALSE
        )
    return stack, locals_


def _scrub_local(stack: list[AbsVal], slot: int, keep_top: bool) -> None:
    """Clear markers on stack values that referenced the *old* value of
    local ``slot`` (it was just overwritten)."""
    end = len(stack) - 1 if keep_top else len(stack)
    for position in range(end):
        value = stack[position]
        if value.local == slot or (value.pred and value.pred[0] == slot):
            stack[position] = AbsVal(value.interval, value.taint)


def analyze_function(
    module: Module,
    function: Function,
    cfg: FunctionCFG,
    context: AnalysisContext | None = None,
) -> FunctionAbstract:
    """Run the interval+taint analysis; requires a stack-valid function."""
    result = FunctionAbstract()
    if not function.code:
        return result
    if context is None:
        context = AnalysisContext()
    mutable_globals = mutable_global_names(module)
    n_slots = function.n_params + function.n_locals
    memory_limit = module.memory_size

    params = context.param_values.get(function.name)
    if params is None or len(params) != function.n_params:
        params = (AbsVal(iv.TOP),) * function.n_params
    initial_locals = tuple(p.untracked() for p in params) + (
        AbsVal(iv.const(0)),
    ) * function.n_locals

    states: dict[int, tuple[tuple[AbsVal, ...], tuple[AbsVal, ...]]] = {
        0: ((), initial_locals)
    }
    worklist = [0]
    # Widening is restricted to loop heads (targets of retreating edges);
    # widening straight-line nodes inside a loop body would destroy
    # bounds (like an AND-masked address) that stabilise on their own
    # once the head's induction variable is widened.
    widen_points = {
        index
        for index in range(len(function.code))
        if any(pred >= index for pred in cfg.predecessors[index])
    }
    join_counts: dict[int, int] = {}
    sweeps = 0
    flagged: set[tuple[int, str]] = set()

    def flag(index: int, diagnostic: d.Diagnostic) -> None:
        key = (index, diagnostic.code)
        if key not in flagged:
            flagged.add(key)
            result.diagnostics.append(diagnostic)

    host_facts: dict[int, tuple[str, int | None, tuple, tuple]] = {}

    def propagate(successor: int, state) -> None:
        known = states.get(successor)
        if known is None:
            states[successor] = state
            worklist.append(successor)
            return
        joined = (
            _join_state(known[0], state[0]),
            _join_state(known[1], state[1]),
        )
        if joined == known:
            return
        count = join_counts.get(successor, 0) + 1
        join_counts[successor] = count
        if successor in widen_points and count > _WIDEN_AFTER:
            joined = (
                _widen_state(known[0], joined[0]),
                _widen_state(known[1], joined[1]),
            )
        if joined != known:
            states[successor] = joined
            worklist.append(successor)

    while worklist:
        index = worklist.pop()
        sweeps += 1
        if sweeps > 64 * (len(function.code) + 1):  # safety valve
            result.converged = False
            break
        stack_in, locals_ = states[index]
        instruction = function.code[index]
        op, arg = instruction.op, instruction.arg
        stack = list(stack_in)

        if op in (Op.JZ, Op.JNZ):
            condition = stack.pop()
            out_stack = tuple(stack)
            target = int(arg)
            # JZ jumps when the condition is zero; JNZ when nonzero.
            edges = (
                (target, op is Op.JNZ),
                (index + 1, op is Op.JZ),
            )
            merged: dict[int, tuple] = {}
            for successor, holds in edges:
                if successor not in cfg.successors[index]:
                    continue
                refined = _refine_edge(out_stack, locals_, condition, holds)
                if refined is None:
                    continue
                state = refined
                if successor in merged:
                    known = merged[successor]
                    state = (
                        _join_state(known[0], state[0]),
                        _join_state(known[1], state[1]),
                    )
                merged[successor] = state
            for successor, state in merged.items():
                propagate(successor, state)
            continue

        if op is Op.PUSH:
            stack.append(AbsVal(iv.const(int(arg))))
        elif op is Op.DROP:
            stack.pop()
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op is Op.EQZ:
            value = stack.pop()
            interval = iv.compare(Op.EQ, value.interval, iv.FALSE)
            pred = None
            if value.pred is not None:
                slot, cmp_op, rhs = value.pred
                pred = (slot, iv.NEGATED[cmp_op], rhs)
            elif value.local is not None:
                pred = (value.local, Op.EQ, iv.FALSE)
            stack.append(AbsVal(interval, value.taint, pred=pred))
        elif op in (Op.LOCAL_GET, Op.LOCAL_SET, Op.LOCAL_TEE):
            slot = int(arg)
            if not 0 <= slot < n_slots:
                flag(index, d.error(
                    d.BAD_LOCAL_INDEX,
                    f"local index {slot} out of range "
                    f"(function has {n_slots})",
                    function.name, index,
                ))
                continue
            if op is Op.LOCAL_GET:
                current = locals_[slot]
                stack.append(AbsVal(current.interval, current.taint, slot))
            else:
                value = stack[-1]
                _scrub_local(stack, slot, keep_top=op is Op.LOCAL_TEE)
                stored = AbsVal(value.interval, value.taint, slot)
                if op is Op.LOCAL_SET:
                    stack.pop()
                else:
                    stack[-1] = stored
                locals_ = locals_[:slot] + (stored,) + locals_[slot + 1:]
        elif op is Op.GLOBAL_GET:
            value = module.globals.get(arg)
            if arg in mutable_globals or value is None:
                stack.append(AbsVal(
                    iv.TOP, context.global_taints.get(str(arg), NO_TAINT)
                ))
            else:
                stack.append(AbsVal(iv.const(int(value))))
        elif op is Op.GLOBAL_SET:
            value = stack.pop()
            result.global_writes.append((str(arg), value.taint))
        elif op in _ACCESS_WIDTH:
            width = _ACCESS_WIDTH[op]
            if op in _STORE_OPS:
                value = stack.pop()
                address = stack.pop()
                _record_write(result, address.interval, width, value.taint,
                              function.name, index, memory_limit)
            else:
                address = stack.pop()
                loaded = Interval(0, 255) if op is Op.LOAD8 else iv.TOP
                stack.append(AbsVal(
                    loaded,
                    _read_taint(context, address.interval, width,
                                memory_limit),
                ))
            _check_access(
                module, function, index, address.interval, width, flag
            )
        elif op is Op.CALL:
            callee = module.functions[str(arg)]
            n_params = callee.n_params
            args = tuple(
                v.untracked() for v in stack[len(stack) - n_params:]
            ) if n_params else ()
            del stack[len(stack) - n_params:]
            known_args = result.call_args.get(str(arg))
            result.call_args[str(arg)] = (
                args if known_args is None else _join_state(known_args, args)
            )
            summary = context.summaries.get(str(arg))
            if summary is not None and summary.returns is not None:
                stack.append(summary.returns.untracked())
            else:
                stack.append(AbsVal(iv.TOP))
        elif op is Op.HOST:
            stack = _transfer_host(
                module, function, index, str(arg), stack, host_facts, flag,
            )
        elif op in _COMPARE_OPS:
            rhs, lhs = stack.pop(), stack.pop()
            interval = iv.compare(op, lhs.interval, rhs.interval)
            pred = None
            if lhs.local is not None:
                pred = (lhs.local, op, rhs.interval)
            elif rhs.local is not None:
                pred = (rhs.local, iv.MIRRORED[op], lhs.interval)
            stack.append(AbsVal(interval, lhs.taint | rhs.taint, pred=pred))
        elif op in _BINARY_OPS:
            rhs, lhs = stack.pop(), stack.pop()
            if op in (Op.DIVS, Op.REMS) and rhs.interval.const == 0:
                flag(index, d.warning(
                    d.DIVISION_BY_ZERO,
                    f"{op.value} with a constant zero divisor always traps",
                    function.name, index,
                ))
            stack.append(AbsVal(
                iv.binary(op, lhs.interval, rhs.interval),
                lhs.taint | rhs.taint,
            ))
        elif op is Op.RET:
            if stack:
                returned = stack[-1].untracked()
                result.returns = (
                    returned if result.returns is None
                    else join_vals(result.returns, returned)
                )
        # JMP, NOP: no stack change.

        out_state = (tuple(stack), locals_)
        for successor in cfg.successors[index]:
            propagate(successor, out_state)

    if result.converged:
        # Post-fixpoint pass over the final joined states: accesses whose
        # address interval provably fits memory never fault, so the
        # compiled tier may skip their runtime checks — constants via
        # safe_accesses (baked into the handler), dynamic-but-bounded
        # ones via inbounds_accesses.
        for index, (stack_in, _locals) in states.items():
            op = function.code[index].op
            width = _ACCESS_WIDTH.get(op)
            if width is None:
                continue
            position = -2 if op in _STORE_OPS else -1
            if len(stack_in) < -position:
                continue
            address = stack_in[position].interval
            if address.is_const:
                if 0 <= address.lo and address.lo + width <= memory_limit:
                    result.safe_accesses[index] = address.lo
            elif address.within(0, memory_limit - width):
                result.inbounds_accesses[index] = (address.lo, address.hi)

    result.host_sites = [
        HostSite(function.name, index, op_name, protocol, intervals, taints)
        for index, (op_name, protocol, intervals, taints)
        in sorted(host_facts.items())
    ]
    return result


def _transfer_host(
    module: Module,
    function: Function,
    index: int,
    name: str,
    stack: list[AbsVal],
    host_facts: dict[int, tuple[str, int | None, tuple, tuple]],
    flag,
) -> list[AbsVal]:
    n_args, n_results = HOST_OPS[name]
    args = stack[len(stack) - n_args:] if n_args else []
    del stack[len(stack) - n_args:]

    protocol = None
    if name in _NET_OPS and args:
        protocol = args[0].interval.const

    effect = HOST_EFFECTS[name]
    lo, hi = effect.result_range
    if name == "net_recv" and protocol is not None:
        # A successful receive delivers at most the receive buffer's
        # capacity minus the header the executor prepends — anything
        # larger is a trap before the program resumes. This bounds
        # sizes derived from the result (an echo server's reply).
        try:
            proto_name = protocol_from_number(protocol).name.lower()
            buffer = module.buffer(f"{proto_name}_recv_buffer", "recv_buffer")
            hi = max(buffer.size - RECV_HEADER_SIZE, 0)
        except SandboxError:
            pass  # unknown protocol or missing buffer: keep the default
    taint: TaintSet = NO_TAINT
    if effect.result_taint != "const":
        taint = frozenset({(effect.result_taint, function.name, index)})
    stack.extend([AbsVal(Interval(lo, hi), taint)] * n_results)
    arg_intervals = tuple(a.interval for a in args)
    arg_taints = tuple(a.taint for a in args)
    known = host_facts.get(index)
    if known is None:
        host_facts[index] = (name, protocol, arg_intervals, arg_taints)
    else:
        _, known_protocol, known_intervals, known_taints = known
        host_facts[index] = (
            name,
            protocol if known_protocol == protocol else None,
            tuple(a.join(b) for a, b in zip(known_intervals, arg_intervals)),
            tuple(a | b for a, b in zip(known_taints, arg_taints)),
        )

    if name == "result_bytes" and len(args) == 2:
        offset, length = args[0].interval, args[1].interval
        always_faults = (
            offset.hi < 0
            or length.hi < 0
            or (offset.lo >= 0 and length.lo >= 0
                and offset.lo + length.lo > module.memory_size)
        )
        if always_faults:
            flag(index, d.error(
                d.MEMORY_OUT_OF_BOUNDS,
                f"result_bytes with offset {offset.render()} and length "
                f"{length.render()} always reads outside memory of "
                f"{module.memory_size} bytes",
                function.name, index,
            ))
    return stack


def _read_taint(
    context: AnalysisContext, address: Interval, width: int, limit: int
) -> TaintSet:
    if context.memory_taint is None:
        return NO_TAINT
    lo = max(address.lo, 0)
    hi = min(address.hi, limit - width) + width
    if hi <= lo:
        return NO_TAINT
    return context.memory_taint.read(lo, hi)


def _record_write(
    result: FunctionAbstract,
    address: Interval,
    width: int,
    taint: TaintSet,
    function: str,
    index: int,
    limit: int,
) -> None:
    if not taint:
        return  # untainted stores never add provenance
    if address.disjoint(0, limit - width):
        return  # certain trap; the store never lands
    lo = max(address.lo, 0)
    hi = min(address.hi, limit - width) + width
    result.mem_writes.append(MemWrite(lo, hi, taint, function, index))


def _check_access(
    module: Module,
    function: Function,
    index: int,
    address: Interval,
    width: int,
    flag,
) -> None:
    limit = module.memory_size - width
    if address.within(0, limit):
        return  # provably safe: no diagnostic, check elidable
    if address.disjoint(0, limit):
        flag(index, d.error(
            d.MEMORY_OUT_OF_BOUNDS,
            f"{width}-byte access at {address.render()} outside memory of "
            f"{module.memory_size} bytes",
            function.name, index,
        ))
        return
    flag(index, d.info(
        d.MEMORY_NOT_DERIVABLE,
        f"{width}-byte access address {address.render()} not statically "
        "bounded (bounds-checked at run time)",
        function.name, index,
    ))
