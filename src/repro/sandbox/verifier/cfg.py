"""Instruction-level control-flow graphs over Debuglet bytecode.

The instruction set has no structured control flow, so the CFG is built
per instruction: each instruction is a node, edges follow fallthrough and
explicit jump targets, and function exit (``RET`` or falling off the end)
is an implicit sink. On top of the raw graph this module computes

- reachability from the entry instruction (dead-code detection),
- exit-reachability (instructions from which the function can still
  terminate — a reachable instruction outside this set proves the
  program can loop forever),
- cyclic strongly connected components (Tarjan), the unit the fuel
  analysis bounds loop trip counts over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sandbox.isa import Instruction, Op
from repro.sandbox.module import Function

_BRANCH_OPS = (Op.JZ, Op.JNZ)


@dataclass
class FunctionCFG:
    """The control-flow graph of one function."""

    function: Function
    successors: list[tuple[int, ...]]
    predecessors: list[list[int]]
    #: instructions whose execution may leave the function (RET / fall-off)
    exits: frozenset[int]
    reachable: frozenset[int]
    exit_reachable: frozenset[int]
    #: cyclic SCCs only (size > 1, or a self-loop), restricted to reachable code
    cyclic_sccs: list[frozenset[int]] = field(default_factory=list)
    #: instruction index -> position in :attr:`cyclic_sccs` (cyclic only)
    scc_of: dict[int, int] = field(default_factory=dict)

    def is_linear_run(self, start: int, length: int) -> bool:
        """True when ``start..start+length`` always executes as one unit:
        each interior instruction is reached only by fallthrough from its
        predecessor. Pattern matchers use this to rule out jumps landing
        mid-pattern."""
        if start < 0 or start + length > len(self.function.code):
            return False
        for index in range(start + 1, start + length):
            if self.predecessors[index] != [index - 1]:
                return False
            if self.function.code[index - 1].op in (Op.JMP, Op.RET):
                return False
        return True


def instruction_successors(code: list[Instruction], index: int) -> tuple[int, ...]:
    """In-range successor indices of ``code[index]`` (exit edges omitted)."""
    instruction = code[index]
    op = instruction.op
    if op is Op.RET:
        return ()
    if op is Op.JMP:
        target = int(instruction.arg)
        return (target,) if 0 <= target < len(code) else ()
    successors: list[int] = []
    if op in _BRANCH_OPS:
        target = int(instruction.arg)
        if 0 <= target < len(code):
            successors.append(target)
    if index + 1 < len(code):
        successors.append(index + 1)
    # A branch whose target equals the fallthrough yields one edge.
    return tuple(dict.fromkeys(successors))


def build_cfg(function: Function) -> FunctionCFG:
    """Construct the CFG with reachability and SCC annotations."""
    code = function.code
    n = len(code)
    successors = [instruction_successors(code, i) for i in range(n)]
    predecessors: list[list[int]] = [[] for _ in range(n)]
    exits: set[int] = set()
    for index in range(n):
        for successor in successors[index]:
            predecessors[successor].append(index)
        op = code[index].op
        if op is Op.RET:
            exits.add(index)
        elif index == n - 1 and op is not Op.JMP:
            exits.add(index)  # falling off the end returns 0
        elif op in _BRANCH_OPS and index + 1 >= n:
            exits.add(index)

    reachable = _forward_reachable(successors, 0) if n else frozenset()
    exit_reachable = _backward_reachable(predecessors, exits & set(range(n))) if n else frozenset()

    cfg = FunctionCFG(
        function=function,
        successors=successors,
        predecessors=predecessors,
        exits=frozenset(exits),
        reachable=frozenset(reachable),
        exit_reachable=frozenset(exit_reachable),
    )
    for scc in tarjan_sccs(successors, reachable):
        if len(scc) > 1 or next(iter(scc)) in successors[next(iter(scc))]:
            position = len(cfg.cyclic_sccs)
            cfg.cyclic_sccs.append(frozenset(scc))
            for node in scc:
                cfg.scc_of[node] = position
    return cfg


def _forward_reachable(successors: list[tuple[int, ...]], start: int) -> set[int]:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for successor in successors[node]:
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return seen


def _backward_reachable(predecessors: list[list[int]], roots: set[int]) -> set[int]:
    seen = set(roots)
    stack = list(roots)
    while stack:
        node = stack.pop()
        for predecessor in predecessors[node]:
            if predecessor not in seen:
                seen.add(predecessor)
                stack.append(predecessor)
    return seen


def tarjan_sccs(
    successors: list[tuple[int, ...]], nodes: set[int] | frozenset[int]
) -> list[set[int]]:
    """Iterative Tarjan over the subgraph induced by ``nodes``."""
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[set[int]] = []
    counter = 0

    for root in sorted(nodes):
        if root in index_of:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = [s for s in successors[node] if s in nodes]
            for position in range(child_pos, len(children)):
                child = children[position]
                if child not in index_of:
                    work[-1] = (node, position + 1)
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if recurse:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                scc: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def has_cycle(successors: list[tuple[int, ...]], nodes: set[int]) -> bool:
    """Does the subgraph induced by ``nodes`` contain a cycle?"""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in nodes}
    for root in nodes:
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, child_pos = stack[-1]
            children = [s for s in successors[node] if s in nodes]
            advanced = False
            for position in range(child_pos, len(children)):
                child = children[position]
                if color[child] == GRAY:
                    return True
                if color[child] == WHITE:
                    stack[-1] = (node, position + 1)
                    color[child] = GRAY
                    stack.append((child, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False
