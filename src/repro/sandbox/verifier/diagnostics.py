"""Diagnostics emitted by the ahead-of-time bytecode verifier.

Every finding carries a stable code (``V1xx`` structure, ``V2xx`` stack,
``V3xx`` fuel, ``V4xx`` memory, ``V5xx`` capabilities), a severity, and —
where it concerns one instruction — the function name and instruction
index, so tooling (the ``repro verify`` CLI, the marketplace contract,
executors) can render or match findings precisely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

# --------------------------------------------------------------- structure
JUMP_OUT_OF_RANGE = "V100"
UNKNOWN_CALL = "V101"
UNREACHABLE_CODE = "V102"
RECURSIVE_CALL = "V103"
CALL_DEPTH_EXCEEDED = "V104"
UNKNOWN_HOST_OP = "V105"
MISSING_ENTRY_POINT = "V106"
BAD_LOCAL_INDEX = "V107"
UNKNOWN_GLOBAL = "V108"
MALFORMED_INSTRUCTION = "V109"

# ------------------------------------------------------------------- stack
STACK_UNDERFLOW = "V200"
STACK_OVERFLOW = "V201"
STACK_DEPTH_MISMATCH = "V202"

# -------------------------------------------------------------------- fuel
FUEL_EXCEEDS_LIMIT = "V300"
FUEL_UNBOUNDED = "V301"
FUEL_NO_EXIT = "V302"

# ------------------------------------------------------------------ memory
MEMORY_OUT_OF_BOUNDS = "V400"
MEMORY_NOT_DERIVABLE = "V401"
DIVISION_BY_ZERO = "V402"

# ------------------------------------------------------------ capabilities
CAPABILITY_UNDECLARED = "V500"
CAPABILITY_NOT_OFFERED = "V501"
UNSUPPORTED_PROTOCOL = "V502"
PROTOCOL_NOT_DERIVABLE = "V503"
CAPABILITY_UNUSED = "V504"

# ----------------------------------------------------- taint / emit policy
EMIT_UNDECLARED_SOURCE = "V600"
EMIT_NOT_DERIVABLE = "V601"
SEND_SIZE_EXCEEDS_BUFFER = "V602"
SEND_SIZE_EXCEEDS_POLICY = "V603"
SEND_PORT_OUT_OF_RANGE = "V604"
SEND_CONTACT_OUT_OF_RANGE = "V605"
PROTOCOL_NOT_ALLOWED = "V606"
EMIT_SOURCE_UNUSED = "V607"

# ------------------------------------------------------ host-effect order
REPLY_WITHOUT_RECV = "V700"
RECV_TIMEOUT_NONPOSITIVE = "V701"
RECV_TIMEOUT_UNBOUNDED = "V702"
MISSING_BUFFER = "V703"


class Severity(enum.Enum):
    """How a diagnostic affects the verdict: only errors fail verification."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, locatable to an instruction when applicable.

    ``path`` carries the dataflow or control-flow witness behind the
    finding — a sequence of ``function@index op`` steps from the source
    of the offending value (or the entry point) to the flagged
    instruction. Empty for findings with no interesting path; rendered
    only by ``repro verify --explain``.
    """

    code: str
    severity: Severity
    message: str
    function: str | None = None
    instruction: int | None = None
    path: tuple[str, ...] = ()

    @property
    def location(self) -> str:
        if self.function is None:
            return "<module>"
        if self.instruction is None:
            return self.function
        return f"{self.function}@{self.instruction}"

    def render(self, explain: bool = False) -> str:
        line = f"[{self.code}] {self.severity.value} {self.location}: {self.message}"
        if explain and self.path:
            steps = "\n".join(f"    {i}. {step}" for i, step in enumerate(self.path, 1))
            line = f"{line}\n  path:\n{steps}"
        return line

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.function,
            "instruction": self.instruction,
            "path": list(self.path),
        }


def error(code: str, message: str, function: str | None = None,
          instruction: int | None = None,
          path: tuple[str, ...] = ()) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, function, instruction, path)


def warning(code: str, message: str, function: str | None = None,
            instruction: int | None = None,
            path: tuple[str, ...] = ()) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, function, instruction, path)


def info(code: str, message: str, function: str | None = None,
         instruction: int | None = None,
         path: tuple[str, ...] = ()) -> Diagnostic:
    return Diagnostic(code, Severity.INFO, message, function, instruction, path)
