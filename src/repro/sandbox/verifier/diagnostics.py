"""Diagnostics emitted by the ahead-of-time bytecode verifier.

Every finding carries a stable code (``V1xx`` structure, ``V2xx`` stack,
``V3xx`` fuel, ``V4xx`` memory, ``V5xx`` capabilities), a severity, and —
where it concerns one instruction — the function name and instruction
index, so tooling (the ``repro verify`` CLI, the marketplace contract,
executors) can render or match findings precisely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

# --------------------------------------------------------------- structure
JUMP_OUT_OF_RANGE = "V100"
UNKNOWN_CALL = "V101"
UNREACHABLE_CODE = "V102"
RECURSIVE_CALL = "V103"
CALL_DEPTH_EXCEEDED = "V104"
UNKNOWN_HOST_OP = "V105"
MISSING_ENTRY_POINT = "V106"
BAD_LOCAL_INDEX = "V107"
UNKNOWN_GLOBAL = "V108"
MALFORMED_INSTRUCTION = "V109"

# ------------------------------------------------------------------- stack
STACK_UNDERFLOW = "V200"
STACK_OVERFLOW = "V201"
STACK_DEPTH_MISMATCH = "V202"

# -------------------------------------------------------------------- fuel
FUEL_EXCEEDS_LIMIT = "V300"
FUEL_UNBOUNDED = "V301"
FUEL_NO_EXIT = "V302"

# ------------------------------------------------------------------ memory
MEMORY_OUT_OF_BOUNDS = "V400"
MEMORY_NOT_DERIVABLE = "V401"
DIVISION_BY_ZERO = "V402"

# ------------------------------------------------------------ capabilities
CAPABILITY_UNDECLARED = "V500"
CAPABILITY_NOT_OFFERED = "V501"
UNSUPPORTED_PROTOCOL = "V502"
PROTOCOL_NOT_DERIVABLE = "V503"
CAPABILITY_UNUSED = "V504"


class Severity(enum.Enum):
    """How a diagnostic affects the verdict: only errors fail verification."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, locatable to an instruction when applicable."""

    code: str
    severity: Severity
    message: str
    function: str | None = None
    instruction: int | None = None

    @property
    def location(self) -> str:
        if self.function is None:
            return "<module>"
        if self.instruction is None:
            return self.function
        return f"{self.function}@{self.instruction}"

    def render(self) -> str:
        return f"[{self.code}] {self.severity.value} {self.location}: {self.message}"

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.function,
            "instruction": self.instruction,
        }


def error(code: str, message: str, function: str | None = None,
          instruction: int | None = None) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, function, instruction)


def warning(code: str, message: str, function: str | None = None,
            instruction: int | None = None) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, function, instruction)


def info(code: str, message: str, function: str | None = None,
         instruction: int | None = None) -> Diagnostic:
    return Diagnostic(code, Severity.INFO, message, function, instruction)
