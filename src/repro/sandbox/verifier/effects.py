"""Host-effect sequencing checks over CFG paths.

Every host op has an inter-call protocol the executor enforces only
dynamically: ``net_reply`` echoes the *last received* packet and is a
silent no-op when nothing was ever received; ``net_recv`` with a
non-positive timeout returns immediately (a busy-poll); a network op
whose protocol has no matching buffer traps on first use. This pass
proves the healthy sequencing ahead of time:

- **V700 reply-without-recv** (error): some CFG path reaches a
  ``net_reply`` without any ``net_recv`` having executed on it — the
  reply can never fire there, which is a program bug the marketplace
  rejects before escrow. The diagnostic carries a shortest witness path.
- **V701** (warning): a ``net_recv`` whose timeout is provably <= 0
  always returns immediately — a fuel-burning poll loop.
- **V702** (info): a ``net_recv`` timeout with no static upper bound.
- **V703** (warning): a network op with a derivable protocol but no
  matching send/receive buffer — a certain trap on first use.

The must-have-received property is a forward all-paths dataflow (join =
AND) with interprocedural summaries: per function, whether *every* path
through it performs a receive (``always_recv``) and whether a reply is
reachable from its entry before any receive (``reply_unguarded``). The
call graph is proven acyclic before this pass, so one bottom-up sweep in
reverse topological order suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SandboxError
from repro.sandbox.hostops import protocol_from_number
from repro.sandbox.isa import Op
from repro.sandbox.module import ENTRY_POINT, Module
from repro.sandbox.verifier import diagnostics as d
from repro.sandbox.verifier.absint import FunctionAbstract
from repro.sandbox.verifier.cfg import FunctionCFG


@dataclass(frozen=True)
class EffectSummary:
    """Receive/reply behaviour of one function, callees folded in."""

    #: every path from entry to any exit performs a net_recv
    always_recv: bool
    #: a net_reply (possibly in a callee) is reachable from entry with no
    #: net_recv executed before it
    reply_unguarded: bool


def check_effects(
    module: Module,
    cfgs: dict[str, FunctionCFG],
    reachable: list[str],
    outcomes: dict[str, FunctionAbstract],
) -> list[d.Diagnostic]:
    """Run all host-effect sequencing checks over reachable functions."""
    diags: list[d.Diagnostic] = []
    summaries: dict[str, EffectSummary] = {}

    for name in _reverse_topological(module, reachable):
        function = module.functions[name]
        cfg = cfgs[name]
        summaries[name] = _must_recv_dataflow(
            module, function, cfg, summaries,
            diags if name == ENTRY_POINT else None,
        )

    # Non-entry unguarded replies are only violations when some caller
    # reaches the call without a prior receive; _must_recv_dataflow on
    # the entry already folds that in via the summaries, so the per-site
    # diagnostics above cover the whole program. Timeout/buffer checks
    # are per-site and context-free:
    for name in reachable:
        for site in outcomes[name].host_sites:
            if site.op == "net_recv" and len(site.arg_intervals) == 2:
                timeout = site.arg_intervals[1]
                if timeout.hi <= 0:
                    diags.append(d.warning(
                        d.RECV_TIMEOUT_NONPOSITIVE,
                        f"net_recv timeout {timeout.render()} is never "
                        "positive: the call always returns immediately "
                        "(a fuel-burning poll)",
                        site.function, site.instruction,
                    ))
                elif timeout.hi >= (1 << 62):
                    diags.append(d.info(
                        d.RECV_TIMEOUT_UNBOUNDED,
                        f"net_recv timeout {timeout.render()} has no "
                        "useful static upper bound",
                        site.function, site.instruction,
                    ))
            if site.op in ("net_send", "net_recv") and site.protocol is not None:
                diag = _check_buffer(module, site)
                if diag is not None:
                    diags.append(diag)
    return diags


def _check_buffer(module: Module, site) -> d.Diagnostic | None:
    try:
        proto = protocol_from_number(site.protocol).name.lower()
    except SandboxError:
        return None  # V502 already covers unsupported protocols
    direction = "send" if site.op == "net_send" else "recv"
    try:
        module.buffer(f"{proto}_{direction}_buffer", f"{direction}_buffer")
    except SandboxError:
        return d.warning(
            d.MISSING_BUFFER,
            f"{site.op} uses protocol {proto!r} but the module declares "
            f"no {proto}_{direction}_buffer (a certain trap on first use)",
            site.function, site.instruction,
        )
    return None


def _reverse_topological(module: Module, reachable: list[str]) -> list[str]:
    """Callees before callers (the call graph is acyclic here)."""
    order: list[str] = []
    seen: set[str] = set()

    def visit(name: str) -> None:
        if name in seen or name not in module.functions:
            return
        seen.add(name)
        for instruction in module.functions[name].code:
            if instruction.op is Op.CALL:
                visit(str(instruction.arg))
        order.append(name)

    for name in reachable:
        visit(name)
    return [name for name in order if name in set(reachable)]


def _must_recv_dataflow(
    module: Module,
    function,
    cfg: FunctionCFG,
    summaries: dict[str, EffectSummary],
    diags: list[d.Diagnostic] | None,
) -> EffectSummary:
    """Forward all-paths "a receive has executed" analysis of one
    function; emits V700 for the entry function (``diags`` given)."""
    code = function.code
    if not code:
        return EffectSummary(always_recv=False, reply_unguarded=False)

    # state[i]: True iff every path from entry to instruction i has
    # performed a net_recv *before* i executes. join = AND.
    state: dict[int, bool] = {0: False}
    worklist = [0]
    reply_unguarded = False
    unguarded_sites: list[tuple[int, str | None]] = []  # (index, callee)

    while worklist:
        index = worklist.pop()
        received = state[index]
        instruction = code[index]
        op, arg = instruction.op, instruction.arg

        if op is Op.HOST:
            if arg == "net_recv":
                received = True
            elif arg == "net_reply" and not state[index]:
                if (index, None) not in unguarded_sites:
                    unguarded_sites.append((index, None))
                reply_unguarded = True
        elif op is Op.CALL:
            summary = summaries.get(str(arg))
            if summary is not None:
                if summary.reply_unguarded and not state[index]:
                    if (index, str(arg)) not in unguarded_sites:
                        unguarded_sites.append((index, str(arg)))
                    reply_unguarded = True
                if summary.always_recv:
                    received = True

        for successor in cfg.successors[index]:
            known = state.get(successor)
            if known is None:
                state[successor] = received
                worklist.append(successor)
            elif known and not received:
                state[successor] = False
                worklist.append(successor)

    reachable_exits = [index for index in cfg.exits if index in state]
    always_recv = bool(reachable_exits) and all(
        _exit_received(code, state, index) for index in reachable_exits
    )

    if diags is not None:
        for index, callee in sorted(unguarded_sites):
            where = (
                "net_reply" if callee is None
                else f"call to {callee!r} (which can reply)"
            )
            diags.append(d.error(
                d.REPLY_WITHOUT_RECV,
                f"{where} is reachable with no net_recv executed on some "
                "path: the reply can never fire there",
                function.name, index,
                path=_witness_path(function, cfg, summaries, index),
            ))
    return EffectSummary(always_recv, reply_unguarded)


def _exit_received(code, state: dict[int, bool], index: int) -> bool:
    """Has a receive happened once the exit instruction completes?"""
    received = state[index]
    instruction = code[index]
    if instruction.op is Op.HOST and instruction.arg == "net_recv":
        return True
    return received


def _witness_path(
    function,
    cfg: FunctionCFG,
    summaries: dict[str, EffectSummary],
    target: int,
) -> tuple[str, ...]:
    """Shortest CFG path entry -> ``target`` avoiding any net_recv (and
    any call guaranteed to receive), rendered for ``--explain``."""
    code = function.code
    parents: dict[int, int] = {0: -1}
    queue = [0]
    position = 0
    while position < len(queue):
        index = queue[position]
        position += 1
        if index == target:
            break
        instruction = code[index]
        if instruction.op is Op.HOST and instruction.arg == "net_recv":
            continue  # a receive on the path would guard the reply
        if instruction.op is Op.CALL:
            summary = summaries.get(str(instruction.arg))
            if summary is not None and summary.always_recv:
                continue
        for successor in cfg.successors[index]:
            if successor not in parents:
                parents[successor] = index
                queue.append(successor)
    if target not in parents:
        return ()
    indices: list[int] = []
    cursor = target
    while cursor != -1:
        indices.append(cursor)
        cursor = parents[cursor]
    indices.reverse()
    interesting = [
        index for index in indices
        if code[index].op in (Op.HOST, Op.CALL, Op.JZ, Op.JNZ)
        or index in (indices[0], indices[-1])
    ]
    steps = tuple(
        f"{function.name}@{index} {code[index]}" for index in interesting
    )
    if len(steps) > 12:
        steps = steps[:6] + ("...",) + steps[-5:]
    return steps
