"""Static facts the compiled execution tier needs, per module.

The threaded-code tier (:mod:`repro.sandbox.compile`) only runs modules
for which the verifier's analyses can *prove* the dynamic checks the
reference interpreter performs per instruction:

- operand-stack discipline (no underflow, depth below the VM ceiling,
  consistent depths at joins) — from :mod:`.stackcheck`;
- bounded call depth and no recursion — the frame-stack analogue;
- well-formed structure (local indices in range, known host ops,
  globals representable as unsigned 64-bit values).

On top of the proofs, this module derives the *block layout* used for
fuel pre-aggregation: basic-block leaders and the exact fuel cost of each
block (the sum of its instructions' :data:`~repro.sandbox.isa.FUEL_COST`),
plus the constant-propagation facts that let individual bounds checks be
elided (:attr:`FunctionFacts.safe_accesses`).

A module for which any proof fails raises :class:`FactsUnavailable`;
the VM then simply stays on the reference tier — the compiled tier is an
optimisation, never a requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SandboxError
from repro.sandbox.hostops import HOST_OPS
from repro.sandbox.isa import FUEL_COST, Op
from repro.sandbox.module import ENTRY_POINT, Function, Module
from repro.sandbox.verifier.absint import analyze_function
from repro.sandbox.verifier.cfg import build_cfg
from repro.sandbox.verifier.diagnostics import Severity
from repro.sandbox.verifier.stackcheck import check_stack, stack_effect

#: ops that terminate a basic block (control may leave the straight line).
_BLOCK_ENDERS = (Op.JMP, Op.JZ, Op.JNZ, Op.CALL, Op.HOST, Op.RET)
_JUMP_OPS = (Op.JMP, Op.JZ, Op.JNZ)


class FactsUnavailable(Exception):
    """The module cannot be proven safe for the compiled tier."""


@dataclass(frozen=True)
class FunctionFacts:
    """Per-function layout and safety facts."""

    name: str
    #: basic-block leader indices, ascending. Every jump target is a
    #: leader, as is the instruction after any block-ending instruction.
    leaders: tuple[int, ...]
    #: leader index -> total fuel of the block starting there.
    block_fuel: dict[int, int]
    #: instruction index -> proven-in-range constant address (loads/stores).
    safe_accesses: dict[int, int]
    #: instruction index -> operand-stack depth on entry (stackcheck).
    depth_in: dict[int, int] = field(default_factory=dict)
    #: instruction index -> proven address interval (lo, hi) for dynamic
    #: loads/stores whose whole range fits in memory; the access keeps its
    #: computed address but skips the bounds check.
    inbounds_accesses: dict[int, tuple[int, int]] = field(default_factory=dict)


@dataclass
class StaticFacts:
    """Everything the translator needs, for every function in the module."""

    functions: dict[str, FunctionFacts]
    #: worst-case absolute value-stack depth across the whole call tree.
    value_stack_peak: int
    #: deepest call chain from the entry point, in frames.
    call_depth: int


def block_leaders(function: Function) -> tuple[int, ...]:
    """Basic-block leaders of ``function`` (index 0, jump targets, and
    successors of block-ending instructions)."""
    code = function.code
    if not code:
        return ()
    leaders = {0}
    for index, instruction in enumerate(code):
        if instruction.op in _JUMP_OPS:
            leaders.add(int(instruction.arg))
        if instruction.op in _BLOCK_ENDERS and index + 1 < len(code):
            leaders.add(index + 1)
    return tuple(sorted(leaders))


def block_fuel(function: Function, leaders: tuple[int, ...]) -> dict[int, int]:
    """Leader -> summed fuel of the block ``[leader, next_leader)``."""
    costs: dict[int, int] = {}
    code = function.code
    for position, leader in enumerate(leaders):
        end = leaders[position + 1] if position + 1 < len(leaders) else len(code)
        costs[leader] = sum(FUEL_COST[code[i].op] for i in range(leader, end))
    return costs


def _check_structure(module: Module, function: Function) -> None:
    n_slots = function.n_params + function.n_locals
    for index, instruction in enumerate(function.code):
        op = instruction.op
        if op in (Op.LOCAL_GET, Op.LOCAL_SET, Op.LOCAL_TEE):
            if not 0 <= int(instruction.arg) < n_slots:
                raise FactsUnavailable(
                    f"{function.name}@{index}: local index {instruction.arg} "
                    f"out of range (function has {n_slots} slots)"
                )
        elif op is Op.HOST and instruction.arg not in HOST_OPS:
            raise FactsUnavailable(
                f"{function.name}@{index}: unknown host op {instruction.arg!r}"
            )


def _call_graph_depth(module: Module) -> int:
    """Deepest call chain from the entry; raises on recursion."""
    callees = {
        name: sorted(
            {i.arg for i in function.code if i.op is Op.CALL}
        )
        for name, function in module.functions.items()
    }
    depth: dict[str, int] = {}
    visiting: set[str] = set()

    def chain(name: str) -> int:
        known = depth.get(name)
        if known is not None:
            return known
        if name in visiting:
            raise FactsUnavailable(f"recursive call through {name!r}")
        visiting.add(name)
        depth[name] = 1 + max((chain(c) for c in callees[name]), default=0)
        visiting.discard(name)
        return depth[name]

    return chain(ENTRY_POINT)


def _value_stack_peak(module: Module, per_function: dict[str, FunctionFacts]) -> int:
    """Worst-case absolute operand-stack depth, summed along call chains.

    ``peak(f)`` is the largest depth reached *relative to f's floor*:
    either an instruction's own exit depth, or — at a call site — the
    depth left under the callee plus the callee's peak. The call graph is
    already proven acyclic, so plain memoised recursion terminates.
    """
    peaks: dict[str, int] = {}

    def peak(name: str) -> int:
        known = peaks.get(name)
        if known is not None:
            return known
        function = module.functions[name]
        facts = per_function[name]
        highest = 0
        for index, entry_depth in facts.depth_in.items():
            instruction = function.code[index]
            pops, pushes = stack_effect(instruction, module)
            highest = max(highest, entry_depth - pops + pushes)
            if instruction.op is Op.CALL:
                callee = module.functions[instruction.arg]
                highest = max(
                    highest,
                    entry_depth - callee.n_params + peak(instruction.arg),
                )
        peaks[name] = highest
        return highest

    return peak(ENTRY_POINT)


def gather_facts(module: Module) -> StaticFacts:
    """Prove the module safe for the compiled tier and lay out its blocks.

    Raises :class:`FactsUnavailable` when any required proof fails; the
    caller falls back to the reference interpreter in that case.
    """
    try:
        module.validate()
    except SandboxError as exc:
        raise FactsUnavailable(f"module fails validation: {exc}") from exc

    for name, value in module.globals.items():
        if not 0 <= int(value) < (1 << 64):
            raise FactsUnavailable(
                f"global {name!r} = {value} is not an unsigned 64-bit value"
            )

    per_function: dict[str, FunctionFacts] = {}
    for name, function in module.functions.items():
        _check_structure(module, function)
        cfg = build_cfg(function)
        stack_diags, depth_in = check_stack(module, function, cfg)
        if any(d.severity is Severity.ERROR for d in stack_diags):
            raise FactsUnavailable(
                f"{name}: operand-stack discipline not provable "
                f"({stack_diags[0].message})"
            )
        abstract = analyze_function(module, function, cfg)
        safe = dict(abstract.safe_accesses) if abstract.converged else {}
        inbounds = dict(abstract.inbounds_accesses) if abstract.converged else {}
        leaders = block_leaders(function)
        per_function[name] = FunctionFacts(
            name=name,
            leaders=leaders,
            block_fuel=block_fuel(function, leaders),
            safe_accesses=safe,
            depth_in=depth_in,
            inbounds_accesses=inbounds,
        )

    call_depth = _call_graph_depth(module)
    from repro.sandbox.vm import VM  # late: vm imports this package lazily

    if call_depth > VM.MAX_STACK_DEPTH:
        raise FactsUnavailable(
            f"worst-case call depth {call_depth} exceeds the frame ceiling "
            f"of {VM.MAX_STACK_DEPTH}"
        )
    value_stack_peak = _value_stack_peak(module, per_function)
    if value_stack_peak > VM.MAX_VALUE_STACK:
        raise FactsUnavailable(
            f"worst-case value-stack depth {value_stack_peak} exceeds the "
            f"ceiling of {VM.MAX_VALUE_STACK}"
        )
    return StaticFacts(
        functions=per_function,
        value_stack_peak=value_stack_peak,
        call_depth=call_depth,
    )
